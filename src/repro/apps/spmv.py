"""Iterative SpMV (CG-style): a fourth bandwidth-sensitive workload.

Not in the paper's evaluation, but squarely in its motivation: sparse
matrix-vector products are the textbook bandwidth-bound kernel (arithmetic
intensity < 1 flop/byte), and iterative solvers re-touch the *same* matrix
blocks every iteration — the reuse pattern where eviction policy choices
(the paper's own-blocks rule vs demand-only LRU) matter most.

The matrix is a synthetic banded+random sparsity pattern drawn from a
named deterministic RNG stream; each chare owns a block row (``readonly``
matrix block), reads the shared ``x`` vector blocks its columns touch, and
writes its slice of ``y``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.api import BuiltRuntime
from repro.errors import ConfigError
from repro.runtime.chare import Chare, NodeGroup
from repro.runtime.entry import entry
from repro.runtime.reduction import Reducer
from repro.sim.rand import RandomStreams
from repro.units import MiB

__all__ = ["SpMVConfig", "SpMVResult", "SpMVChare", "SpMV"]

#: flops per stored nonzero (multiply + add)
FLOPS_PER_NNZ = 2.0
#: bytes per stored nonzero (8B value + 4B column index, CSR-style)
BYTES_PER_NNZ = 12


@dataclasses.dataclass(frozen=True)
class SpMVConfig:
    """Workload shape for an iterated SpMV."""

    #: number of block rows (chares)
    block_rows: int = 64
    #: stored nonzero bytes per matrix block, on average
    block_bytes: int = 8 * MiB
    #: vector slice bytes per block row
    vector_bytes: int = 256 * 1024
    #: how many distinct x-blocks each block row reads (column coupling)
    couplings: int = 3
    iterations: int = 10
    #: banded fraction: couplings drawn near the diagonal vs uniformly
    banded: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_rows <= 0 or self.block_bytes <= 0:
            raise ConfigError("block_rows and block_bytes must be > 0")
        if self.couplings < 1 or self.couplings > self.block_rows:
            raise ConfigError("couplings must be in [1, block_rows]")
        if not 0.0 <= self.banded <= 1.0:
            raise ConfigError("banded must be in [0, 1]")
        if self.iterations <= 0:
            raise ConfigError("iterations must be > 0")

    @property
    def nnz_per_block(self) -> int:
        return self.block_bytes // BYTES_PER_NNZ

    @property
    def flops_per_task(self) -> float:
        return self.nnz_per_block * FLOPS_PER_NNZ

    @property
    def total_matrix_bytes(self) -> int:
        return self.block_rows * self.block_bytes

    def coupling_pattern(self) -> list[tuple[int, ...]]:
        """Which x-blocks each block row reads (deterministic in seed)."""
        rng = RandomStreams(self.seed).stream("spmv-pattern")
        pattern: list[tuple[int, ...]] = []
        n = self.block_rows
        for row in range(n):
            cols = {row}
            while len(cols) < self.couplings:
                if rng.random() < self.banded:
                    offset = int(rng.integers(-2, 3))
                    cols.add((row + offset) % n)
                else:
                    cols.add(int(rng.integers(0, n)))
            pattern.append(tuple(sorted(cols)))
        return pattern


@dataclasses.dataclass
class SpMVResult:
    """Timing of one iterated SpMV run."""

    config: SpMVConfig
    strategy: str
    total_time: float
    iteration_times: list[float]
    tasks_completed: int

    @property
    def mean_iteration_time(self) -> float:
        return (sum(self.iteration_times) / len(self.iteration_times)
                if self.iteration_times else 0.0)


class SpMVVectors(NodeGroup):
    """Node-group cache of the shared x-vector blocks."""

    @entry
    def setup(self, config: SpMVConfig, barrier: Reducer) -> None:
        for i in range(config.block_rows):
            self.share_block(("x", i), config.vector_bytes)
        barrier.contribute()

    def x_block(self, index: int):
        return self.shared[("x", index)]


class SpMVChare(Chare):
    """One block row: y_i = A_i @ x[couplings(i)]."""

    @entry
    def setup(self, config: SpMVConfig, vectors: SpMVVectors,
              couplings: tuple[int, ...], barrier: Reducer) -> None:
        self.A = self.declare_block("A", config.block_bytes)
        self.x_blocks = [vectors.x_block(c) for c in couplings]
        self.y = self.declare_block("y", config.vector_bytes)
        self._tasks_done = 0
        barrier.contribute()

    @entry(prefetch=True, readonly=["A", "x_blocks"], writeonly=["y"])
    def multiply(self, reducer: Reducer) -> _t.Generator:
        cfg: SpMVConfig = self.array.app_config  # type: ignore[union-attr]
        result = yield from self.kernel(
            flops=cfg.flops_per_task,
            reads=[self.A] + list(self.x_blocks), writes=[self.y])
        self._tasks_done += 1
        reducer.contribute(result.duration)


class SpMV:
    """Driver: iterate y = A x with the same blocks every iteration."""

    def __init__(self, built: BuiltRuntime, config: SpMVConfig):
        self.built = built
        self.config = config
        self.runtime = built.runtime
        self.env = built.env
        self.pattern = config.coupling_pattern()

        self.vectors = self.runtime.create_node_group(SpMVVectors)
        vec_barrier = self.runtime.reducer(1, name="spmv-vectors")
        self.runtime.send(self.vectors, "setup", config, vec_barrier)
        self.runtime.run_until(vec_barrier.done)

        self.array = self.runtime.create_array(SpMVChare, config.block_rows,
                                               name="spmv")
        self.array.app_config = config  # type: ignore[attr-defined]
        barrier = self.runtime.reducer(config.block_rows, name="spmv-setup")
        for row in range(config.block_rows):
            self.array.send(row, "setup", config, self.vectors,
                            self.pattern[row], barrier)
        self.runtime.run_until(barrier.done)
        built.manager.finalize_placement()

    def run(self) -> SpMVResult:
        cfg = self.config
        start = self.env.now
        iteration_times: list[float] = []
        for it in range(cfg.iterations):
            t0 = self.env.now
            reducer = self.runtime.reducer(cfg.block_rows,
                                           name=f"spmv-iter{it}")
            self.array.broadcast("multiply", reducer)
            self.runtime.run_until(reducer.done)
            iteration_times.append(self.env.now - t0)
        tasks = sum(c._tasks_done for c in self.array)
        return SpMVResult(config=cfg, strategy=self.built.strategy.name,
                          total_time=self.env.now - start,
                          iteration_times=iteration_times,
                          tasks_completed=tasks)
