"""Jacobi 2-D: a 5-point iterative solver with a convergence criterion.

Not in the paper's evaluation; included as the "trivial code changes"
demonstration — a second stencil-class application adopting the
``[prefetch]`` annotation unchanged — and as an example of *data-dependent*
termination (the reduction carries the residual, and the driver stops when
it drops below tolerance).

The residual sequence is computed functionally on a small numpy mirror of
the grid (one coarse cell per chare), so convergence is real, not scripted.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.api import BuiltRuntime
from repro.errors import ConfigError
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.reduction import Reducer
from repro.units import MiB

__all__ = ["JacobiConfig", "JacobiResult", "JacobiChare", "Jacobi2D"]

FLOPS_PER_ELEMENT = 6.0
ELEMENT_BYTES = 8


@dataclasses.dataclass(frozen=True)
class JacobiConfig:
    """Workload shape for the Jacobi solver."""

    chare_grid: int = 8
    block_bytes: int = 32 * MiB
    tolerance: float = 1e-3
    max_iterations: int = 100
    #: coarse functional mirror: cells per chare side
    mirror_cells: int = 4

    def __post_init__(self) -> None:
        if self.chare_grid <= 0 or self.block_bytes <= 0:
            raise ConfigError("chare_grid and block_bytes must be > 0")
        if self.tolerance <= 0 or self.max_iterations <= 0:
            raise ConfigError("tolerance and max_iterations must be > 0")

    @property
    def n_chares(self) -> int:
        return self.chare_grid * self.chare_grid

    @property
    def flops_per_task(self) -> float:
        return (self.block_bytes / ELEMENT_BYTES) * FLOPS_PER_ELEMENT


@dataclasses.dataclass
class JacobiResult:
    config: JacobiConfig
    strategy: str
    iterations_run: int
    converged: bool
    final_residual: float
    total_time: float
    residual_history: list[float]


class JacobiChare(Chare):
    """One block of the 2-D domain, with a coarse functional mirror."""

    @entry
    def setup(self, config: JacobiConfig, mirror: np.ndarray,
              barrier: Reducer) -> None:
        self.u = self.declare_block("u", config.block_bytes, payload=mirror)
        self.config = config
        barrier.contribute()

    @entry(prefetch=True, readwrite=["u"])
    def sweep(self, neighbours: dict, reducer: Reducer) -> _t.Generator:
        """One Jacobi sweep: simulated time + functional coarse update."""
        cfg = self.config
        result = yield from self.kernel(
            flops=cfg.flops_per_task, reads=[self.u], writes=[self.u])
        # Functional part: 5-point average on the coarse mirror with ghost
        # columns/rows taken from neighbour mirrors (previous iterate).
        old = self.u.payload
        padded = np.pad(old, 1, mode="edge")
        for side, ghost in neighbours.items():
            if ghost is None:
                continue
            if side == "n":
                padded[0, 1:-1] = ghost
            elif side == "s":
                padded[-1, 1:-1] = ghost
            elif side == "w":
                padded[1:-1, 0] = ghost
            elif side == "e":
                padded[1:-1, -1] = ghost
        new = 0.25 * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                      + padded[1:-1, :-2] + padded[1:-1, 2:])
        residual = float(np.max(np.abs(new - old)))
        self.u.payload = new
        reducer.contribute((residual, result.duration))


class Jacobi2D:
    """Driver: sweeps until the global residual drops below tolerance."""

    def __init__(self, built: BuiltRuntime, config: JacobiConfig, *,
                 seed: int = 0):
        self.built = built
        self.config = config
        self.runtime = built.runtime
        self.env = built.env
        g = config.chare_grid
        indices = [(i, j) for i in range(g) for j in range(g)]
        self.array = self.runtime.create_array(JacobiChare, indices,
                                               name="jacobi2d")
        rng = np.random.default_rng(seed)
        barrier = self.runtime.reducer(len(indices), name="jacobi-setup")
        for idx in indices:
            mirror = rng.random((config.mirror_cells, config.mirror_cells))
            self.array.send(idx, "setup", config, mirror, barrier)
        self.runtime.run_until(barrier.done)
        built.manager.finalize_placement()

    def _ghosts_for(self, idx: tuple[int, int]) -> dict:
        """Previous-iterate boundary rows/columns from the 4 neighbours."""
        g = self.config.chare_grid
        i, j = idx
        out: dict[str, np.ndarray | None] = {}
        def edge(ni: int, nj: int, take: str):
            if not (0 <= ni < g and 0 <= nj < g):
                return None
            mirror = self.array[(ni, nj)].u.payload
            return {"s": mirror[-1, :], "n": mirror[0, :],
                    "e": mirror[:, -1], "w": mirror[:, 0]}[take].copy()
        out["n"] = edge(i - 1, j, "s")
        out["s"] = edge(i + 1, j, "n")
        out["w"] = edge(i, j - 1, "e")
        out["e"] = edge(i, j + 1, "w")
        return out

    def run(self) -> JacobiResult:
        cfg = self.config
        start = self.env.now
        history: list[float] = []
        converged = False
        residual = float("inf")
        for it in range(cfg.max_iterations):
            reducer = self.runtime.reducer(
                cfg.n_chares, name=f"jacobi-iter{it}",
                combiner=lambda vals: (max(v[0] for v in vals),
                                       sum(v[1] for v in vals)))
            ghost_snapshots = {idx: self._ghosts_for(idx)
                               for idx in self.array.elements}
            for idx in self.array.elements:
                self.array.send(idx, "sweep", ghost_snapshots[idx], reducer)
            residual, _kernel = self.runtime.run_until(reducer.done)
            history.append(residual)
            if residual < cfg.tolerance:
                converged = True
                break
        return JacobiResult(
            config=cfg, strategy=self.built.strategy.name,
            iterations_run=len(history), converged=converged,
            final_residual=residual, total_time=self.env.now - start,
            residual_history=history)
