"""Blocked matrix multiplication (paper §V-B).

"Matrix multiplication divides the work units into a 2 dimensional array of
chares.  The data is divided such that the entire 2D grid of elements for
input matrices A and B and output matrix C are distributed into blocks of
sub-rows X sub-columns across the 2D array of chares.  A and B input
matrices are readonly blocks and hence can be shared across chares."

Decomposition here: a ``G x G`` chare grid; chare *(i, j)* computes
``C[i,j] = A_i @ B_j`` where ``A_i`` is a row panel (``b x N``) and ``B_j``
a column panel (``N x b``), ``b = N / G``.  Panels are **node-group-shared
read-only blocks** — the reference-counting machinery keeps panels that
concurrent chares use resident, which is why the single-IO-thread strategy
keeps up on this workload (Figure 9): "when a read-only block is being used
by another chare, it is not evicted."

The dgemm itself is modelled after MKL's ``cblas_dgemm``: panel-resident
blocking means each task streams its two panels and its C block once while
doing ``2 b^2 N`` flops.  The paper pins MKL's internal scratch to DDR4 via
``MEMKIND_HBW_NODES=0``; ``mkl_scratch_fraction`` reproduces that extra
DDR4 traffic.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.core.api import BuiltRuntime
from repro.errors import ConfigError
from repro.runtime.chare import Chare, NodeGroup
from repro.runtime.entry import entry
from repro.runtime.loadbalance import block_cyclic_map
from repro.runtime.reduction import Reducer

__all__ = ["MatMulConfig", "MatMulResult", "MatMulChare", "MatMul"]

ELEMENT_BYTES = 8


@dataclasses.dataclass(frozen=True)
class MatMulConfig:
    """Workload shape for one blocked-matmul run.

    Paper Figure 9: total working set (A+B+C) of 24/36/54 GB, reduced
    working set held at ~6 GB by the decomposition.
    """

    #: square matrix dimension
    n: int = 16384
    #: chare grid dimension (G x G chares; panel width b = n / G)
    grid: int = 64
    #: effective traffic multiplier on the managed blocks: MKL's dgemm
    #: packs both panels into internal buffers before compute (one extra
    #: read+write sweep of each), so a task streams its panels about twice
    mkl_pack_factor: float = 2.0
    #: fraction of a task's traffic that is MKL-internal scratch, pinned to
    #: DDR4 as the paper does with MEMKIND_HBW_NODES=0
    mkl_scratch_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.n <= 0 or self.grid <= 0:
            raise ConfigError("n and grid must be > 0")
        if self.n % self.grid:
            raise ConfigError(
                f"matrix dim {self.n} not divisible by grid {self.grid}")
        if not 0.0 <= self.mkl_scratch_fraction < 1.0:
            raise ConfigError("mkl_scratch_fraction must be in [0, 1)")
        if self.mkl_pack_factor <= 0:
            raise ConfigError("mkl_pack_factor must be > 0")

    @property
    def block_dim(self) -> int:
        """Panel width b."""
        return self.n // self.grid

    @property
    def panel_bytes(self) -> int:
        """One row/column panel: b x N doubles."""
        return self.block_dim * self.n * ELEMENT_BYTES

    @property
    def c_block_bytes(self) -> int:
        return self.block_dim * self.block_dim * ELEMENT_BYTES

    @property
    def matrix_bytes(self) -> int:
        return self.n * self.n * ELEMENT_BYTES

    @property
    def total_working_set(self) -> int:
        """A + B + C."""
        return 3 * self.matrix_bytes

    @property
    def flops_per_task(self) -> float:
        """Full-k accumulation for one C block: 2 b^2 N."""
        return 2.0 * self.block_dim * self.block_dim * self.n

    @property
    def task_bytes(self) -> int:
        """Bytes one task streams: two panels + its C block."""
        return 2 * self.panel_bytes + self.c_block_bytes

    @classmethod
    def for_working_set(cls, total_ws: int, *, block_dim: int = 128,
                        **kwargs: _t.Any) -> "MatMulConfig":
        """Pick ``n``/``grid`` so A+B+C ≈ ``total_ws`` with panels of
        ``block_dim`` sub-rows (the paper varies total WS at fixed reduced
        WS; fixed ``block_dim`` keeps per-task intensity constant)."""
        n_target = math.sqrt(total_ws / (3 * ELEMENT_BYTES))
        grid = max(1, round(n_target / block_dim))
        return cls(n=grid * block_dim, grid=grid, **kwargs)


@dataclasses.dataclass
class MatMulResult:
    """Timing of one blocked-matmul run."""

    config: MatMulConfig
    strategy: str
    total_time: float
    kernel_time_total: float
    tasks_completed: int

    @property
    def mean_kernel_time(self) -> float:
        return (self.kernel_time_total / self.tasks_completed
                if self.tasks_completed else 0.0)


class MatMulPanels(NodeGroup):
    """Node-group cache of the read-only A and B panels."""

    @entry
    def setup(self, config: MatMulConfig, barrier: Reducer) -> None:
        for i in range(config.grid):
            self.share_block(("A", i), config.panel_bytes)
            self.share_block(("B", i), config.panel_bytes)
        barrier.contribute()

    def panel(self, which: str, index: int):
        return self.shared[(which, index)]


class MatMulChare(Chare):
    """Chare (i, j): owns C[i,j]; reads shared panels A_i and B_j."""

    @entry
    def setup(self, config: MatMulConfig, panels: MatMulPanels,
              barrier: Reducer) -> None:
        i, j = self.index
        self.A = panels.panel("A", i)
        self.B = panels.panel("B", j)
        self.C = self.declare_block("C", config.c_block_bytes)
        self._kernel_time = 0.0
        self._tasks_done = 0
        barrier.contribute()

    @entry(prefetch=True, readonly=["A", "B"], readwrite=["C"])
    def multiply(self, reducer: Reducer) -> _t.Generator:
        """``cblas_dgemm`` over the panels (the ``[prefetch]`` task)."""
        cfg: MatMulConfig = self.array.app_config  # type: ignore[union-attr]
        result = yield from self.kernel(
            flops=cfg.flops_per_task,
            reads=[self.A, self.B], writes=[self.C],
            traffic_scale=cfg.mkl_pack_factor)
        if cfg.mkl_scratch_fraction > 0.0:
            # MKL-internal scratch pinned to DDR4 (MEMKIND_HBW_NODES=0):
            # extra traffic on the slow pool, outside the managed blocks.
            scratch = cfg.task_bytes * cfg.mkl_scratch_fraction
            machine = self.runtime.machine  # type: ignore[union-attr]
            extra = yield from machine.run_kernel(
                self.runtime.pes[getattr(self, "_exec_pe_id", self.pe_id)].core,
                flops=0.0,
                traffic={machine.ddr: (scratch / 2, scratch / 2)})
            self._kernel_time += extra.duration
        self._kernel_time += result.duration
        self._tasks_done += 1
        reducer.contribute(result.duration)


class MatMul:
    """Driver: builds the panels, the chare grid, and runs the multiply."""

    def __init__(self, built: BuiltRuntime, config: MatMulConfig):
        self.built = built
        self.config = config
        self.runtime = built.runtime
        self.env = built.env
        self.panels = self.runtime.create_node_group(MatMulPanels)
        g = config.grid
        indices = [(i, j) for i in range(g) for j in range(g)]
        # Block-cyclic chare placement: concurrent tasks tile a pr x pc
        # patch, so panels are shared by running tasks and stay refcounted.
        pe_map = block_cyclic_map(indices, len(self.runtime.pes))
        self.array = self.runtime.create_array(MatMulChare, indices,
                                               pe_map=pe_map, name="matmul")
        self.array.app_config = config  # type: ignore[attr-defined]

        # Two-phase setup: the node group must publish the shared panels
        # before any chare looks them up.
        panel_barrier = self.runtime.reducer(1, name="matmul-panels")
        self.runtime.send(self.panels, "setup", config, panel_barrier)
        self.runtime.run_until(panel_barrier.done)
        barrier = self.runtime.reducer(len(indices), name="matmul-setup")
        self.array.broadcast("setup", config, self.panels, barrier)
        self.runtime.run_until(barrier.done)
        built.manager.finalize_placement()

    def run(self) -> MatMulResult:
        start = self.env.now
        reducer = self.runtime.reducer(len(self.array), name="matmul-done")
        self.array.broadcast("multiply", reducer)
        self.runtime.run_until(reducer.done)
        total = self.env.now - start
        kernel_total = sum(c._kernel_time for c in self.array)
        tasks = sum(c._tasks_done for c in self.array)
        return MatMulResult(
            config=self.config, strategy=self.built.strategy.name,
            total_time=total, kernel_time_total=kernel_total,
            tasks_completed=tasks)
