"""Stencil3D: the paper's first evaluation workload (§V-A, Algorithm 2).

A 3-D grid of chares; each chare owns one contiguous grid block
(``readwrite`` dependence of its ``[prefetch]`` compute kernel) and
exchanges ghost faces with up to 6 neighbours each iteration::

    while not converged:
        receive ghosts from all neighbours
        update all grid elements
        send updated ghosts to neighbours

The compute kernel performs ``inner_sweeps`` temporally-tiled sub-sweeps
per iteration ("We perform 20 iterations to mimic tiling patterns that
increase computation to reduce the overhead incurred by data
communication", citing Ramanujam & Sadayappan) — one memory sweep of the
block per task, ``8 * inner_sweeps`` flops per element.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.core.api import BuiltRuntime
from repro.errors import ConfigError
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.reduction import Reducer
from repro.units import GiB, MiB

__all__ = ["StencilConfig", "StencilResult", "StencilChare", "Stencil3D"]

#: flops per grid element per stencil sweep (7-point: 6 adds + 1 mul + misc)
FLOPS_PER_ELEMENT_PER_SWEEP = 8.0
#: double precision
ELEMENT_BYTES = 8


@dataclasses.dataclass(frozen=True)
class StencilConfig:
    """Workload shape for one Stencil3D run.

    The paper's Figure 8 points: ``total_bytes=32 GiB``, ``block_bytes`` of
    32/64/128 MiB (reduced working sets of 2/4/8 GB over 64 PEs), 20
    iterations.
    """

    total_bytes: int = 32 * GiB
    block_bytes: int = 64 * MiB
    iterations: int = 20
    #: temporal tiling depth inside one task
    inner_sweeps: int = 20
    #: effective memory sweeps per task: of the ``inner_sweeps`` temporal
    #: tiles, how many miss the L2 tile and stream the block from memory
    #: ("Stencil3D accesses large amounts of data in quickly executing
    #: loops which makes it bandwidth sensitive")
    sweep_traffic_factor: float = 8.0
    #: fraction of a block's bytes exchanged as ghost faces per iteration
    ghost_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError("sizes must be > 0")
        if self.block_bytes > self.total_bytes:
            raise ConfigError("block larger than the total grid")
        if self.iterations <= 0 or self.inner_sweeps <= 0:
            raise ConfigError("iterations and inner_sweeps must be > 0")
        if self.sweep_traffic_factor <= 0:
            raise ConfigError("sweep_traffic_factor must be > 0")

    @property
    def n_chares(self) -> int:
        return max(1, self.total_bytes // self.block_bytes)

    @property
    def elements_per_block(self) -> int:
        return self.block_bytes // ELEMENT_BYTES

    @property
    def flops_per_task(self) -> float:
        return (self.elements_per_block * FLOPS_PER_ELEMENT_PER_SWEEP
                * self.inner_sweeps)

    def reduced_working_set(self, n_pes: int) -> int:
        """One wave of blocks — what over-decomposition keeps in HBM."""
        return min(self.n_chares, n_pes) * self.block_bytes

    def chare_grid(self) -> tuple[int, int, int]:
        """Near-cubic factorisation of the chare count."""
        n = self.n_chares
        best: tuple[int, int, int] | None = None
        best_surface = math.inf
        for x in range(1, int(round(n ** (1 / 3))) + 2):
            if n % x:
                continue
            rem = n // x
            for y in range(x, int(math.isqrt(rem)) + 1):
                if rem % y:
                    continue
                z = rem // y
                surface = x * y + y * z + x * z
                if surface < best_surface:
                    best_surface = surface
                    best = (x, y, z)
        if best is None:
            best = (1, 1, n)
        return best


@dataclasses.dataclass
class StencilResult:
    """Timing of one Stencil3D run."""

    config: StencilConfig
    strategy: str
    iteration_times: list[float]
    total_time: float
    kernel_time_total: float
    tasks_completed: int

    @property
    def mean_iteration_time(self) -> float:
        return (sum(self.iteration_times) / len(self.iteration_times)
                if self.iteration_times else 0.0)

    @property
    def mean_kernel_time(self) -> float:
        """Mean compute-kernel time per task (Figure 2's metric)."""
        return (self.kernel_time_total / self.tasks_completed
                if self.tasks_completed else 0.0)


class StencilChare(Chare):
    """One block of the 3-D grid."""

    @entry
    def setup(self, block_bytes: int, neighbours: tuple[tuple[int, ...], ...],
              ghost_bytes: int, barrier: Reducer) -> None:
        # CkIOHandle<double> grid — the bandwidth-sensitive dependence.
        self.grid = self.declare_block("grid", block_bytes)
        self.neighbours = neighbours
        self.ghost_bytes = ghost_bytes
        self._ghosts_received = 0
        self._kernel_time = 0.0
        self._tasks_done = 0
        barrier.contribute()

    @entry
    def exchange(self, reducer: Reducer) -> None:
        """Send ghost faces to every neighbour (Algorithm 2's send phase)."""
        if not self.neighbours:
            # Single chare: no communication, go straight to compute.
            self.send("compute_kernel", reducer)
            return
        assert self.array is not None
        for nbr in self.neighbours:
            self.array.send(nbr, "recv_ghost", reducer, nbytes=self.ghost_bytes)

    @entry
    def recv_ghost(self, reducer: Reducer) -> None:
        """Collect ghosts; when all have arrived, trigger the kernel."""
        self._ghosts_received += 1
        if self._ghosts_received == len(self.neighbours):
            self._ghosts_received = 0
            self.send("compute_kernel", reducer)

    @entry(prefetch=True, readwrite=["grid"])
    def compute_kernel(self, reducer: Reducer) -> _t.Generator:
        """The ``[prefetch]``-annotated bandwidth-sensitive task."""
        cfg: StencilConfig = self.array.app_config  # type: ignore[union-attr]
        result = yield from self.kernel(
            flops=cfg.flops_per_task, reads=[self.grid], writes=[self.grid],
            traffic_scale=cfg.sweep_traffic_factor)
        self._kernel_time += result.duration
        self._tasks_done += 1
        reducer.contribute(result.duration)


class Stencil3D:
    """Driver: builds the chare grid and runs the iteration loop."""

    def __init__(self, built: BuiltRuntime, config: StencilConfig):
        self.built = built
        self.config = config
        self.runtime = built.runtime
        self.env = built.env
        gx, gy, gz = config.chare_grid()
        self.grid_dims = (gx, gy, gz)
        indices = [(x, y, z) for x in range(gx) for y in range(gy)
                   for z in range(gz)]
        self.array = self.runtime.create_array(StencilChare, indices,
                                               name="stencil3d")
        self.array.app_config = config  # type: ignore[attr-defined]
        ghost_bytes = int(config.block_bytes * config.ghost_fraction / 6) or 1

        # Setup phase: declare every block, then place them per strategy.
        barrier = self.runtime.reducer(len(indices), name="stencil-setup")
        for idx in indices:
            self.array.send(idx, "setup", config.block_bytes,
                            self._neighbours(idx), ghost_bytes, barrier)
        self.runtime.run_until(barrier.done)
        built.manager.finalize_placement()

    def _neighbours(self, idx: tuple[int, int, int]) -> tuple[tuple[int, ...], ...]:
        gx, gy, gz = self.grid_dims
        x, y, z = idx
        out = []
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                           (0, 0, 1), (0, 0, -1)):
            nx, ny, nz = x + dx, y + dy, z + dz
            if 0 <= nx < gx and 0 <= ny < gy and 0 <= nz < gz:
                out.append((nx, ny, nz))
        return tuple(out)

    def run(self) -> StencilResult:
        """Run the configured number of iterations; returns timings."""
        cfg = self.config
        iteration_times: list[float] = []
        start = self.env.now
        for it in range(cfg.iterations):
            t0 = self.env.now
            reducer = self.runtime.reducer(len(self.array),
                                           name=f"stencil-iter{it}")
            self.array.broadcast("exchange", reducer)
            self.runtime.run_until(reducer.done)
            iteration_times.append(self.env.now - t0)
        total = self.env.now - start
        kernel_total = sum(c._kernel_time for c in self.array)
        tasks = sum(c._tasks_done for c in self.array)
        return StencilResult(
            config=cfg, strategy=self.built.strategy.name,
            iteration_times=iteration_times, total_time=total,
            kernel_time_total=kernel_total, tasks_completed=tasks)
