"""Bandwidth-sensitive HPC application kernels (the paper's evaluation apps).

* :mod:`repro.apps.stencil3d` — 7-point Stencil3D over a 3-D chare grid
  (paper §V-A, Algorithm 2);
* :mod:`repro.apps.matmul` — blocked matrix multiplication with node-level
  sharing of the read-only A/B panels (paper §V-B);
* :mod:`repro.apps.stream_app` — STREAM as a chare application;
* :mod:`repro.apps.jacobi2d` — a 5-point Jacobi solver (extra example);
* :mod:`repro.apps.spmv` — iterated sparse matrix-vector product with
  cross-iteration block reuse (extra example).
"""

from repro.apps.stencil3d import Stencil3D, StencilConfig, StencilResult
from repro.apps.matmul import MatMul, MatMulConfig, MatMulResult
from repro.apps.stream_app import StreamApp, StreamAppConfig
from repro.apps.jacobi2d import Jacobi2D, JacobiConfig
from repro.apps.spmv import SpMV, SpMVConfig, SpMVResult

__all__ = [
    "Stencil3D", "StencilConfig", "StencilResult",
    "MatMul", "MatMulConfig", "MatMulResult",
    "StreamApp", "StreamAppConfig",
    "Jacobi2D", "JacobiConfig",
    "SpMV", "SpMVConfig", "SpMVResult",
]
