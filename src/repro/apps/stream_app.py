"""STREAM as a chare application.

Shows the annotation API on the simplest possible bandwidth-sensitive
workload and backs the Figure 1 bench when run through the full runtime
(rather than the bare-machine :func:`repro.machine.stream.run_stream`).
Each chare owns three vectors (a, b, c) and runs a triad-style kernel.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.api import BuiltRuntime
from repro.errors import ConfigError
from repro.machine.stream import STREAM_KERNELS
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.reduction import Reducer
from repro.units import MiB

__all__ = ["StreamAppConfig", "StreamAppResult", "StreamChare", "StreamApp"]


@dataclasses.dataclass(frozen=True)
class StreamAppConfig:
    """One STREAM-over-chares run."""

    kernel: str = "triad"
    array_bytes: int = 64 * MiB
    chares: int = 64
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.kernel not in STREAM_KERNELS:
            raise ConfigError(f"unknown STREAM kernel {self.kernel!r}")
        if self.array_bytes <= 0 or self.chares <= 0 or self.repeats <= 0:
            raise ConfigError("array_bytes, chares, repeats must be > 0")


@dataclasses.dataclass
class StreamAppResult:
    config: StreamAppConfig
    strategy: str
    elapsed_best: float
    bytes_touched: float

    @property
    def bandwidth(self) -> float:
        return (self.bytes_touched / self.elapsed_best
                if self.elapsed_best > 0 else 0.0)


class StreamChare(Chare):
    """One STREAM worker with its a/b/c vectors."""

    @entry
    def setup(self, config: StreamAppConfig, barrier: Reducer) -> None:
        self.a = self.declare_block("a", config.array_bytes)
        self.b = self.declare_block("b", config.array_bytes)
        self.c = self.declare_block("c", config.array_bytes)
        barrier.contribute()

    @entry(prefetch=True, writeonly=["a"], readonly=["b", "c"])
    def triad(self, reducer: Reducer) -> _t.Generator:
        cfg: StreamAppConfig = self.array.app_config  # type: ignore[union-attr]
        reads, writes = STREAM_KERNELS[cfg.kernel]
        read_blocks = [self.b, self.c][:reads]
        result = yield from self.kernel(
            flops=0.0, reads=read_blocks, writes=[self.a])
        reducer.contribute(result.duration)


class StreamApp:
    """Driver for STREAM over the annotated runtime."""

    def __init__(self, built: BuiltRuntime, config: StreamAppConfig):
        self.built = built
        self.config = config
        self.runtime = built.runtime
        self.env = built.env
        self.array = self.runtime.create_array(StreamChare, config.chares,
                                               name="stream")
        self.array.app_config = config  # type: ignore[attr-defined]
        barrier = self.runtime.reducer(config.chares, name="stream-setup")
        self.array.broadcast("setup", config, barrier)
        self.runtime.run_until(barrier.done)
        built.manager.finalize_placement()

    def run(self) -> StreamAppResult:
        cfg = self.config
        reads, writes = STREAM_KERNELS[cfg.kernel]
        best = float("inf")
        for rep in range(cfg.repeats):
            t0 = self.env.now
            reducer = self.runtime.reducer(cfg.chares,
                                           name=f"stream-rep{rep}")
            self.array.broadcast("triad", reducer)
            self.runtime.run_until(reducer.done)
            best = min(best, self.env.now - t0)
        touched = float((reads + writes) * cfg.array_bytes * cfg.chares)
        return StreamAppResult(config=cfg, strategy=self.built.strategy.name,
                               elapsed_best=best, bytes_touched=touched)
