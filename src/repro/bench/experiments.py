"""One experiment definition per paper figure.

Each function regenerates the data behind a figure of the paper's
evaluation and returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows/series mirror what the paper plots.  Absolute values live in
simulated time; the *shape* claims (who wins, by what factor, where the
crossovers sit) are what EXPERIMENTS.md compares.

All experiments accept a :class:`~repro.bench.harness.Scale`; ``SMALL``
(1/16 capacities and working sets) is the CI default, ``FULL`` is the
paper's literal sizes.
"""

from __future__ import annotations

import typing as _t

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.harness import ExperimentResult, Scale, speedup_table
from repro.core.api import OOCRuntimeBuilder
from repro.machine.knl import build_knl
from repro.machine.stream import run_stream
from repro.mem.block import DataBlock
from repro.sim.environment import Environment
from repro.trace.projections import build_report
from repro.units import GB, GiB, MiB

__all__ = [
    "STRATEGY_SERIES",
    "fig1_stream_bandwidth",
    "fig2_stencil_fits_in_hbm",
    "fig5_projections_wait",
    "fig6_sync_vs_async",
    "fig7_memcpy_cost",
    "fig8_stencil_speedup",
    "fig9_matmul_speedup",
]

#: strategies plotted in Figures 8-9, with the paper's series labels
STRATEGY_SERIES = {
    "ddr-only": "DDR4only",
    "single-io": "Single IO thread",
    "no-io": "No IO thread",
    "multi-io": "Multiple IO threads",
}


def _builder(strategy: str, scale: Scale, *, trace: bool = False,
             **kwargs: _t.Any) -> OOCRuntimeBuilder:
    return OOCRuntimeBuilder(
        strategy,
        cores=64,
        mcdram_capacity=scale.mcdram,
        ddr_capacity=scale.ddr,
        trace=trace,
        **kwargs)


# ---------------------------------------------------------------------------
# Figure 1 — STREAM bandwidth, DDR4 vs MCDRAM
# ---------------------------------------------------------------------------

def fig1_stream_bandwidth(*, threads: int = 64,
                          array_bytes: int = 64 * MiB) -> ExperimentResult:
    """STREAM copy/scale/add/triad on both memory nodes (GB/s)."""
    env = Environment()
    node = build_knl(env)
    series: dict[str, dict[str, float]] = {}
    for kernel in ("copy", "scale", "add", "triad"):
        row: dict[str, float] = {}
        for device in ("ddr4", "mcdram"):
            result = run_stream(node, device, kernel=kernel,
                                threads=threads, array_bytes=array_bytes)
            row[device] = result.bandwidth / GB
        series[kernel] = row
    ratios = {k: row["mcdram"] / row["ddr4"] for k, row in series.items()}
    return ExperimentResult(
        figure="Fig1",
        description="STREAM bandwidth per memory node "
                    f"({threads} threads)",
        series=series, unit="GB/s",
        notes={"mcdram_to_ddr4_ratio": {k: round(v, 2)
                                        for k, v in ratios.items()}})


# ---------------------------------------------------------------------------
# Figure 2 — Stencil3D when the working set fits in HBM
# ---------------------------------------------------------------------------

def fig2_stencil_fits_in_hbm(scale: Scale = Scale.SMALL,
                             iterations: int = 5) -> ExperimentResult:
    """Total and compute-kernel time, HBM-only vs DDR4-only placement.

    The paper observes ~3x faster kernels from HBM; the motivation for the
    whole prefetch design.
    """
    total = scale.size(8 * GiB)       # fits in the (scaled) 16 GiB HBM
    block = scale.size(128 * MiB)
    series: dict[str, dict[str, float]] = {"total time": {},
                                           "compute kernel time": {}}
    for strategy, label in (("hbm-only", "HBM"), ("ddr-only", "DDR4")):
        built = _builder(strategy, scale).build()
        cfg = StencilConfig(total_bytes=total, block_bytes=block,
                            iterations=iterations)
        app = Stencil3D(built, cfg)
        result = app.run()
        series["total time"][label] = result.total_time
        series["compute kernel time"][label] = result.mean_kernel_time
    ratio = (series["compute kernel time"]["DDR4"]
             / series["compute kernel time"]["HBM"])
    return ExperimentResult(
        figure="Fig2",
        description="Stencil3D on HBM vs DDR4, working set fits in HBM",
        series=series, unit="s",
        notes={"kernel_slowdown_on_ddr4": round(ratio, 2)})


# ---------------------------------------------------------------------------
# Figures 5 & 6 — Projections: wait time and sync-vs-async overhead
# ---------------------------------------------------------------------------

def _traced_stencil(strategy: str, scale: Scale,
                    iterations: int = 3) -> tuple:
    built = _builder(strategy, scale, trace=True).build()
    cfg = StencilConfig(total_bytes=scale.size(32 * GiB),
                        block_bytes=scale.size(64 * MiB),
                        iterations=iterations)
    app = Stencil3D(built, cfg)
    result = app.run()
    report = build_report(built.runtime.tracer)
    return built, result, report


def fig5_projections_wait(scale: Scale = Scale.SMALL) -> ExperimentResult:
    """Worker wait fraction: single IO thread vs multiple IO threads.

    Figure 5's message: the 'red' (wait) portion dominates with a single
    IO thread and nearly disappears with per-PE IO threads.
    """
    series: dict[str, dict[str, float]] = {}
    for strategy, label in (("single-io", "Single IO thread"),
                            ("multi-io", "Multiple IO threads")):
        _built, _result, report = _traced_stencil(strategy, scale)
        series.setdefault("wait fraction", {})[label] = \
            report.mean_wait_fraction()
        series.setdefault("utilization", {})[label] = \
            report.mean_utilization()
    return ExperimentResult(
        figure="Fig5",
        description="Projections wait fraction, Stencil3D out-of-core",
        series=series, unit="fraction of wall time")


def fig6_sync_vs_async(scale: Scale = Scale.SMALL) -> ExperimentResult:
    """Per-task synchronous pre-processing time: no-IO vs multi-IO.

    Figure 6's message: the synchronous strategy inserts ~20 ms of fetch
    before each kernel; the asynchronous one hides it.
    """
    series: dict[str, dict[str, float]] = {"preprocess per task": {}}
    notes: dict[str, _t.Any] = {}
    for strategy, label in (("no-io", "Synchronous (no IO thread)"),
                            ("multi-io", "Asynchronous (multi IO threads)")):
        built, result, report = _traced_stencil(strategy, scale)
        tasks_per_pe = {f"pe{pe.id}": pe.tasks_executed
                        for pe in built.runtime.pes}
        series["preprocess per task"][label] = \
            report.mean_preprocess_per_task(tasks_per_pe)
        notes[f"{strategy}_total_time_s"] = round(result.total_time, 4)
    return ExperimentResult(
        figure="Fig6",
        description="Synchronous fetch overhead per task, Stencil3D",
        series=series, unit="s/task", notes=notes)


# ---------------------------------------------------------------------------
# Figure 7 — memcpy migration cost under 64-thread stress
# ---------------------------------------------------------------------------

def fig7_memcpy_cost(scale: Scale = Scale.SMALL,
                     block_gb: _t.Sequence[float] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
                     threads: int = 64) -> ExperimentResult:
    """Average per-thread memcpy time for DDR->HBM and HBM->DDR moves.

    64 threads concurrently migrate equal slices of ``block_gb`` GB of
    data, as §IV-D does to 'stress the bandwidth'.
    """
    series: dict[str, dict[str, float]] = {}
    for gb in block_gb:
        total_bytes = scale.size(gb * GB)
        per_thread = max(total_bytes // threads, 1)
        row: dict[str, float] = {}
        for direction in ("ddr-to-hbm", "hbm-to-ddr"):
            env = Environment()
            node = build_knl(env, mcdram_capacity=scale.mcdram,
                             ddr_capacity=scale.ddr)
            src = node.ddr if direction == "ddr-to-hbm" else node.hbm
            dst = node.hbm if direction == "ddr-to-hbm" else node.ddr
            blocks = []
            for i in range(threads):
                block = DataBlock(f"mig{i}", per_thread)
                node.registry.register(block)
                node.topology.place_block(block, src)
                blocks.append(block)
            done = [env.process(node.mover.move(b, dst), name=f"mv{i}")
                    for i, b in enumerate(blocks)]
            env.run(env.all_of(done))
            row[direction] = env.now / 1.0  # all threads run concurrently
        series[f"{gb}GB"] = row
    return ExperimentResult(
        figure="Fig7",
        description=f"memcpy migration cost, {threads} concurrent threads "
                    f"(sizes scaled 1/{scale.factor})",
        series=series, unit="s")


# ---------------------------------------------------------------------------
# Figure 8 — Stencil3D speedup vs Naive
# ---------------------------------------------------------------------------

def fig8_stencil_speedup(scale: Scale = Scale.SMALL,
                         iterations: int = 5,
                         reduced_ws_gb: _t.Sequence[int] = (2, 4, 8),
                         ) -> ExperimentResult:
    """Application speedup over the Naive baseline, Stencil3D.

    Total working set 32 GB; reduced working set (one 64-chare wave) of
    2/4/8 GB via block sizes of 32/64/128 MiB.  Paper shape: single-IO
    *slower* than Naive; no-IO better; multi-IO best at ~2x.
    """
    total = scale.size(32 * GiB)
    times: dict[str, dict[str, float]] = {}
    notes: dict[str, _t.Any] = {}
    for rws in reduced_ws_gb:
        block = scale.size(rws * GiB) // 64
        label = f"{rws}GB"
        times[label] = {}
        for strategy in ("naive",) + tuple(STRATEGY_SERIES):
            built = _builder(strategy, scale).build()
            cfg = StencilConfig(total_bytes=total, block_bytes=block,
                                iterations=iterations)
            app = Stencil3D(built, cfg)
            result = app.run()
            times[label][strategy] = result.total_time
        notes[f"naive_time_{label}_s"] = round(times[label]["naive"], 4)
    speedups = speedup_table(times, baseline="naive")
    series = {
        x: {STRATEGY_SERIES.get(k, k): v for k, v in row.items()
            if k != "naive"}
        for x, row in speedups.items()
    }
    return ExperimentResult(
        figure="Fig8",
        description="Stencil3D speedup vs Naive baseline "
                    f"(total WS 32GB/{scale.factor}, {iterations} iters)",
        series=series, unit="speedup", notes=notes)


# ---------------------------------------------------------------------------
# Figure 9 — MatMul speedup vs Naive
# ---------------------------------------------------------------------------

def fig9_matmul_speedup(scale: Scale = Scale.SMALL,
                        total_ws_gb: _t.Sequence[int] = (24, 36, 54),
                        block_dim: int = 96) -> ExperimentResult:
    """Application speedup over the Naive baseline, blocked MatMul.

    Total working set (A+B+C) of 24/36/54 GB.  Paper shape: all prefetch
    strategies comparable (read-only panel reuse), speedup growing with
    the total working set; DDR4-only below 1.
    """
    times: dict[str, dict[str, float]] = {}
    notes: dict[str, _t.Any] = {}
    for ws in total_ws_gb:
        label = f"{ws}GB"
        times[label] = {}
        for strategy in ("naive",) + tuple(STRATEGY_SERIES):
            built = _builder(strategy, scale).build()
            cfg = MatMulConfig.for_working_set(scale.size(ws * GiB),
                                               block_dim=block_dim)
            app = MatMul(built, cfg)
            result = app.run()
            times[label][strategy] = result.total_time
        notes[f"naive_time_{label}_s"] = round(times[label]["naive"], 4)
    speedups = speedup_table(times, baseline="naive")
    series = {
        x: {STRATEGY_SERIES.get(k, k): v for k, v in row.items()
            if k != "naive"}
        for x, row in speedups.items()
    }
    return ExperimentResult(
        figure="Fig9",
        description="MatMul speedup vs Naive baseline "
                    f"(total WS scaled 1/{scale.factor})",
        series=series, unit="speedup", notes=notes)
