"""One experiment definition per paper figure.

Each figure is declared as a :class:`~repro.bench.harness.FigurePlan`:
an enumeration of :class:`~repro.exec.spec.RunSpec` simulation runs
(one per strategy x working-set point) plus an ``assemble`` function
that folds the runs' result dicts into an
:class:`~repro.bench.harness.ExperimentResult` whose rows/series mirror
what the paper plots.  The classic ``figN_*()`` functions still return
the assembled result directly — they execute their plan through the
current :mod:`repro.exec.context`, so ``repro experiments -j 8`` fans
the same runs out over a process pool and caches them without touching
any figure's output.

Enumeration is canonical by construction: spec params serialize with
sorted keys, sweeps iterate explicit tuples, and no ordering depends on
``PYTHONHASHSEED`` — so cache keys and sweep order are identical across
runs and Python versions.

All experiments accept a :class:`~repro.bench.harness.Scale`; ``SMALL``
(1/16 capacities and working sets) is the CI default, ``FULL`` is the
paper's literal sizes.  Absolute values live in simulated time; the
*shape* claims (who wins, by what factor, where the crossovers sit) are
what EXPERIMENTS.md compares.
"""

from __future__ import annotations

import typing as _t

from repro.bench.harness import (ExperimentResult, FigurePlan, Scale,
                                 run_plan, speedup_table)
from repro.exec.spec import RunSpec
from repro.units import GB, GiB, MiB

__all__ = [
    "STRATEGY_SERIES",
    "PLANS",
    "fig1_plan", "fig2_plan", "fig5_plan", "fig6_plan", "fig7_plan",
    "fig8_plan", "fig9_plan", "guided_plan", "guided_placement",
    "fig1_stream_bandwidth",
    "fig2_stencil_fits_in_hbm",
    "fig5_projections_wait",
    "fig6_sync_vs_async",
    "fig7_memcpy_cost",
    "fig8_stencil_speedup",
    "fig9_matmul_speedup",
]

#: strategies plotted in Figures 8-9, with the paper's series labels
STRATEGY_SERIES = {
    "ddr-only": "DDR4only",
    "single-io": "Single IO thread",
    "no-io": "No IO thread",
    "multi-io": "Multiple IO threads",
}


def _machine(strategy: str, scale: Scale, *, trace: bool = False,
             cores: int = 64) -> dict[str, _t.Any]:
    """The common machine params of one figure run (canonical subset)."""
    return {"strategy": strategy, "cores": cores,
            "mcdram": scale.mcdram, "ddr": scale.ddr, "trace": trace}


# ---------------------------------------------------------------------------
# Figure 1 — STREAM bandwidth, DDR4 vs MCDRAM
# ---------------------------------------------------------------------------

_FIG1_KERNELS = ("copy", "scale", "add", "triad")
_FIG1_DEVICES = ("ddr4", "mcdram")


def fig1_plan(scale: Scale = Scale.SMALL, *, threads: int = 64,
              array_bytes: int = 64 * MiB) -> FigurePlan:
    """STREAM copy/scale/add/triad on both memory nodes (GB/s)."""
    del scale  # Figure 1 measures raw node bandwidth; capacity-free
    specs = [
        RunSpec("stream",
                {"device": device, "kernel": kernel, "threads": threads,
                 "array_bytes": array_bytes},
                cost=0.1, label=f"fig1/{kernel}/{device}")
        for kernel in _FIG1_KERNELS
        for device in _FIG1_DEVICES
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        series: dict[str, dict[str, float]] = {}
        it = iter(results)
        for kernel in _FIG1_KERNELS:
            row = {device: next(it)["bandwidth"] / GB
                   for device in _FIG1_DEVICES}
            series[kernel] = row
        ratios = {k: row["mcdram"] / row["ddr4"]
                  for k, row in series.items()}
        return ExperimentResult(
            figure="Fig1",
            description="STREAM bandwidth per memory node "
                        f"({threads} threads)",
            series=series, unit="GB/s",
            notes={"mcdram_to_ddr4_ratio": {k: round(v, 2)
                                            for k, v in ratios.items()}})

    return FigurePlan("Fig1", specs, assemble)


def fig1_stream_bandwidth(*, threads: int = 64,
                          array_bytes: int = 64 * MiB) -> ExperimentResult:
    """STREAM copy/scale/add/triad on both memory nodes (GB/s)."""
    return run_plan(fig1_plan(threads=threads, array_bytes=array_bytes))


# ---------------------------------------------------------------------------
# Figure 2 — Stencil3D when the working set fits in HBM
# ---------------------------------------------------------------------------

_FIG2_SERIES = (("hbm-only", "HBM"), ("ddr-only", "DDR4"))


def fig2_plan(scale: Scale = Scale.SMALL,
              iterations: int = 5) -> FigurePlan:
    """Total and compute-kernel time, HBM-only vs DDR4-only placement."""
    total = scale.size(8 * GiB)       # fits in the (scaled) 16 GiB HBM
    block = scale.size(128 * MiB)
    specs = [
        RunSpec("stencil",
                {**_machine(strategy, scale), "total": total,
                 "block": block, "iterations": iterations},
                cost=2.0 * total / GiB,
                label=f"fig2/stencil/{strategy}")
        for strategy, _label in _FIG2_SERIES
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        series: dict[str, dict[str, float]] = {"total time": {},
                                               "compute kernel time": {}}
        for (_strategy, label), res in zip(_FIG2_SERIES, results):
            series["total time"][label] = res["total_time"]
            series["compute kernel time"][label] = res["mean_kernel_time"]
        ratio = (series["compute kernel time"]["DDR4"]
                 / series["compute kernel time"]["HBM"])
        return ExperimentResult(
            figure="Fig2",
            description="Stencil3D on HBM vs DDR4, working set fits in HBM",
            series=series, unit="s",
            notes={"kernel_slowdown_on_ddr4": round(ratio, 2)})

    return FigurePlan("Fig2", specs, assemble)


def fig2_stencil_fits_in_hbm(scale: Scale = Scale.SMALL,
                             iterations: int = 5) -> ExperimentResult:
    """Total and compute-kernel time, HBM-only vs DDR4-only placement.

    The paper observes ~3x faster kernels from HBM; the motivation for the
    whole prefetch design.
    """
    return run_plan(fig2_plan(scale, iterations))


# ---------------------------------------------------------------------------
# Figures 5 & 6 — Projections: wait time and sync-vs-async overhead
# ---------------------------------------------------------------------------

def _traced_stencil_spec(strategy: str, scale: Scale, *, figure: str,
                         iterations: int = 3) -> RunSpec:
    """The out-of-core traced Stencil3D run Figures 5 and 6 both use.

    The spec identity excludes the figure name, so the shared multi-io
    run dedups to a single execution (and one cache entry) when both
    figures run in one sweep.
    """
    total = scale.size(32 * GiB)
    return RunSpec(
        "stencil",
        {**_machine(strategy, scale, trace=True), "total": total,
         "block": scale.size(64 * MiB), "iterations": iterations},
        cost=4.0 * total / GiB,
        label=f"{figure}/traced-stencil/{strategy}")


def fig5_plan(scale: Scale = Scale.SMALL) -> FigurePlan:
    """Worker wait fraction: single IO thread vs multiple IO threads."""
    pairs = (("single-io", "Single IO thread"),
             ("multi-io", "Multiple IO threads"))
    specs = [_traced_stencil_spec(strategy, scale, figure="fig5")
             for strategy, _label in pairs]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        series: dict[str, dict[str, float]] = {}
        for (_strategy, label), res in zip(pairs, results):
            series.setdefault("wait fraction", {})[label] = \
                res["wait_fraction"]
            series.setdefault("utilization", {})[label] = \
                res["utilization"]
        return ExperimentResult(
            figure="Fig5",
            description="Projections wait fraction, Stencil3D out-of-core",
            series=series, unit="fraction of wall time")

    return FigurePlan("Fig5", specs, assemble)


def fig5_projections_wait(scale: Scale = Scale.SMALL) -> ExperimentResult:
    """Worker wait fraction: single IO thread vs multiple IO threads.

    Figure 5's message: the 'red' (wait) portion dominates with a single
    IO thread and nearly disappears with per-PE IO threads.
    """
    return run_plan(fig5_plan(scale))


def fig6_plan(scale: Scale = Scale.SMALL) -> FigurePlan:
    """Per-task synchronous pre-processing time: no-IO vs multi-IO."""
    pairs = (("no-io", "Synchronous (no IO thread)"),
             ("multi-io", "Asynchronous (multi IO threads)"))
    specs = [_traced_stencil_spec(strategy, scale, figure="fig6")
             for strategy, _label in pairs]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        series: dict[str, dict[str, float]] = {"preprocess per task": {}}
        notes: dict[str, _t.Any] = {}
        for (strategy, label), res in zip(pairs, results):
            series["preprocess per task"][label] = \
                res["preprocess_per_task"]
            notes[f"{strategy}_total_time_s"] = round(res["total_time"], 4)
        return ExperimentResult(
            figure="Fig6",
            description="Synchronous fetch overhead per task, Stencil3D",
            series=series, unit="s/task", notes=notes)

    return FigurePlan("Fig6", specs, assemble)


def fig6_sync_vs_async(scale: Scale = Scale.SMALL) -> ExperimentResult:
    """Per-task synchronous pre-processing time: no-IO vs multi-IO.

    Figure 6's message: the synchronous strategy inserts ~20 ms of fetch
    before each kernel; the asynchronous one hides it.
    """
    return run_plan(fig6_plan(scale))


# ---------------------------------------------------------------------------
# Figure 7 — memcpy migration cost under 64-thread stress
# ---------------------------------------------------------------------------

_FIG7_DIRECTIONS = ("ddr-to-hbm", "hbm-to-ddr")


def fig7_plan(scale: Scale = Scale.SMALL,
              block_gb: _t.Sequence[float] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
              threads: int = 64) -> FigurePlan:
    """Average per-thread memcpy time for DDR->HBM and HBM->DDR moves."""
    block_gb = tuple(block_gb)
    specs = [
        RunSpec("memcpy",
                {"direction": direction,
                 "total_bytes": scale.size(gb * GB), "threads": threads,
                 "mcdram": scale.mcdram, "ddr": scale.ddr},
                cost=0.2 * gb,
                label=f"fig7/memcpy/{gb}GB/{direction}")
        for gb in block_gb
        for direction in _FIG7_DIRECTIONS
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        series: dict[str, dict[str, float]] = {}
        it = iter(results)
        for gb in block_gb:
            series[f"{gb}GB"] = {direction: next(it)["elapsed"]
                                 for direction in _FIG7_DIRECTIONS}
        return ExperimentResult(
            figure="Fig7",
            description=f"memcpy migration cost, {threads} concurrent "
                        f"threads (sizes scaled 1/{scale.factor})",
            series=series, unit="s")

    return FigurePlan("Fig7", specs, assemble)


def fig7_memcpy_cost(scale: Scale = Scale.SMALL,
                     block_gb: _t.Sequence[float] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
                     threads: int = 64) -> ExperimentResult:
    """Average per-thread memcpy time for DDR->HBM and HBM->DDR moves.

    64 threads concurrently migrate equal slices of ``block_gb`` GB of
    data, as §IV-D does to 'stress the bandwidth'.
    """
    return run_plan(fig7_plan(scale, block_gb, threads))


# ---------------------------------------------------------------------------
# Figure 8 — Stencil3D speedup vs Naive
# ---------------------------------------------------------------------------

def fig8_plan(scale: Scale = Scale.SMALL, iterations: int = 5,
              reduced_ws_gb: _t.Sequence[int] = (2, 4, 8)) -> FigurePlan:
    """Application speedup over the Naive baseline, Stencil3D."""
    reduced_ws_gb = tuple(reduced_ws_gb)
    total = scale.size(32 * GiB)
    strategies = ("naive",) + tuple(STRATEGY_SERIES)
    specs = [
        RunSpec("stencil",
                {**_machine(strategy, scale), "total": total,
                 "block": scale.size(rws * GiB) // 64,
                 "iterations": iterations},
                cost=8.0 * total / GiB * iterations / 5,
                label=f"fig8/stencil/{rws}GB/{strategy}")
        for rws in reduced_ws_gb
        for strategy in strategies
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        times: dict[str, dict[str, float]] = {}
        notes: dict[str, _t.Any] = {}
        it = iter(results)
        for rws in reduced_ws_gb:
            label = f"{rws}GB"
            times[label] = {strategy: next(it)["total_time"]
                            for strategy in strategies}
            notes[f"naive_time_{label}_s"] = round(times[label]["naive"], 4)
        speedups = speedup_table(times, baseline="naive")
        series = {
            x: {STRATEGY_SERIES.get(k, k): v for k, v in row.items()
                if k != "naive"}
            for x, row in speedups.items()
        }
        return ExperimentResult(
            figure="Fig8",
            description="Stencil3D speedup vs Naive baseline "
                        f"(total WS 32GB/{scale.factor}, {iterations} iters)",
            series=series, unit="speedup", notes=notes)

    return FigurePlan("Fig8", specs, assemble)


def fig8_stencil_speedup(scale: Scale = Scale.SMALL,
                         iterations: int = 5,
                         reduced_ws_gb: _t.Sequence[int] = (2, 4, 8),
                         ) -> ExperimentResult:
    """Application speedup over the Naive baseline, Stencil3D.

    Total working set 32 GB; reduced working set (one 64-chare wave) of
    2/4/8 GB via block sizes of 32/64/128 MiB.  Paper shape: single-IO
    *slower* than Naive; no-IO better; multi-IO best at ~2x.
    """
    return run_plan(fig8_plan(scale, iterations, reduced_ws_gb))


# ---------------------------------------------------------------------------
# Figure 9 — MatMul speedup vs Naive
# ---------------------------------------------------------------------------

def fig9_plan(scale: Scale = Scale.SMALL,
              total_ws_gb: _t.Sequence[int] = (24, 36, 54),
              block_dim: int = 96) -> FigurePlan:
    """Application speedup over the Naive baseline, blocked MatMul."""
    total_ws_gb = tuple(total_ws_gb)
    strategies = ("naive",) + tuple(STRATEGY_SERIES)
    specs = [
        RunSpec("matmul",
                {"strategy": strategy, "cores": 64,
                 "mcdram": scale.mcdram, "ddr": scale.ddr,
                 "working_set": scale.size(ws * GiB),
                 "block_dim": block_dim},
                # task count grows ~ grid^3 = (ws^1/2)^3: strongly
                # superlinear, so the 54GB points must dispatch first
                cost=20.0 * (scale.size(ws * GiB) / GiB) ** 1.5,
                label=f"fig9/matmul/{ws}GB/{strategy}")
        for ws in total_ws_gb
        for strategy in strategies
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        times: dict[str, dict[str, float]] = {}
        notes: dict[str, _t.Any] = {}
        it = iter(results)
        for ws in total_ws_gb:
            label = f"{ws}GB"
            times[label] = {strategy: next(it)["total_time"]
                            for strategy in strategies}
            notes[f"naive_time_{label}_s"] = round(times[label]["naive"], 4)
        speedups = speedup_table(times, baseline="naive")
        series = {
            x: {STRATEGY_SERIES.get(k, k): v for k, v in row.items()
                if k != "naive"}
            for x, row in speedups.items()
        }
        return ExperimentResult(
            figure="Fig9",
            description="MatMul speedup vs Naive baseline "
                        f"(total WS scaled 1/{scale.factor})",
            series=series, unit="speedup", notes=notes)

    return FigurePlan("Fig9", specs, assemble)


def fig9_matmul_speedup(scale: Scale = Scale.SMALL,
                        total_ws_gb: _t.Sequence[int] = (24, 36, 54),
                        block_dim: int = 96) -> ExperimentResult:
    """Application speedup over the Naive baseline, blocked MatMul.

    Total working set (A+B+C) of 24/36/54 GB.  Paper shape: all prefetch
    strategies comparable (read-only panel reuse), speedup growing with
    the total working set; DDR4-only below 1.
    """
    return run_plan(fig9_plan(scale, total_ws_gb, block_dim))


# ---------------------------------------------------------------------------
# Guided — bwlint static guidance vs the paper's policies
# ---------------------------------------------------------------------------

#: series labels for the guided-placement comparison (hbm-only is
#: excluded: it refuses overflow working sets by design)
_GUIDED_STRATEGIES = ("naive", "ddr-only", "single-io", "no-io",
                      "multi-io", "static-guided", "phase-guided")


def guided_plan(scale: Scale = Scale.SMALL,
                iterations: int = 3) -> FigurePlan:
    """Stencil3D + SpMV makespans under compiler-guided placement.

    The ``static-guided`` strategy places blocks purely from the
    guidance file :func:`repro.lint.guidance.build_guidance` infers from
    application source; every other series is a paper policy.  Times are
    reported normalized to ``naive`` (above 1 = faster than naive), so
    the claim under test — static guidance never loses to arrival-order
    static placement — reads directly off the table.
    """
    # both working sets overflow the HBM tier (16 GB full-scale), so the
    # placement order under test actually decides who runs from DDR
    stencil_total = scale.size(24 * GiB)
    spmv_rows = 64
    spmv_block = scale.size(12 * GiB) // spmv_rows
    specs = [
        RunSpec("stencil",
                {**_machine(strategy, scale), "total": stencil_total,
                 "block": stencil_total // 64,
                 "iterations": iterations},
                cost=4.0, label=f"guided/stencil/{strategy}")
        for strategy in _GUIDED_STRATEGIES
    ] + [
        RunSpec("spmv",
                {**_machine(strategy, scale), "block_rows": spmv_rows,
                 "block_bytes": spmv_block,
                 "vector_bytes": max(spmv_block // 32, 4096),
                 "couplings": 3, "iterations": iterations, "seed": 0},
                cost=2.0, label=f"guided/spmv/{strategy}")
        for strategy in _GUIDED_STRATEGIES
    ]

    def assemble(results: _t.Sequence[_t.Mapping]) -> ExperimentResult:
        times: dict[str, dict[str, float]] = {}
        notes: dict[str, _t.Any] = {}
        it = iter(results)
        for app in ("stencil3d", "spmv"):
            times[app] = {strategy: next(it)["total_time"]
                          for strategy in _GUIDED_STRATEGIES}
            notes[f"naive_time_{app}_s"] = round(times[app]["naive"], 4)
            notes[f"guided_vs_naive_{app}"] = round(
                times[app]["naive"] / times[app]["static-guided"], 4)
            notes[f"phase_vs_static_{app}"] = round(
                times[app]["static-guided"] / times[app]["phase-guided"], 4)
        series = speedup_table(times, baseline="naive")
        return ExperimentResult(
            figure="Guided",
            description="Compiler-guided static placement vs paper "
                        f"policies (speedup over naive, {iterations} "
                        "iters)",
            series=series, unit="speedup", notes=notes)

    return FigurePlan("Guided", specs, assemble)


def guided_placement(scale: Scale = Scale.SMALL,
                     iterations: int = 3) -> ExperimentResult:
    """Stencil3D + SpMV under bwlint guidance vs the paper's policies."""
    return run_plan(guided_plan(scale, iterations))


#: figure name -> plan factory taking a Scale (the CLI's sweep registry)
PLANS: dict[str, _t.Callable[[Scale], FigurePlan]] = {
    "fig1": fig1_plan,
    "fig2": fig2_plan,
    "fig5": fig5_plan,
    "fig6": fig6_plan,
    "fig7": fig7_plan,
    "fig8": fig8_plan,
    "fig9": fig9_plan,
    "guided": guided_plan,
}
