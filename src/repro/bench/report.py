"""Table rendering for experiment results."""

from __future__ import annotations

import typing as _t

from repro.bench.harness import ExperimentResult

__all__ = ["format_table", "render_experiment"]


def format_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence[_t.Any]]) -> str:
    """Render a plain-text table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for n, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Render one experiment as the paper-style series table."""
    names = result.series_names()
    headers = [result.figure] + names
    rows = []
    for x_label, by_series in result.series.items():
        rows.append([x_label] + [by_series.get(name, float("nan"))
                                 for name in names])
    body = format_table(headers, rows)
    title = f"{result.figure}: {result.description} [{result.unit}]"
    notes = ""
    if result.notes:
        notes = "\n" + "\n".join(f"  note: {k} = {v}"
                                 for k, v in sorted(result.notes.items()))
    return f"{title}\n{body}{notes}"
