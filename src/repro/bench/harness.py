"""Shared experiment plumbing.

Experiments run at a configurable :class:`Scale`.  The paper's testbed
moves tens of GB per run; simulating that at full size is exact but slow in
CI, so capacities *and* working sets shrink together — every ratio the
results depend on (WS : HBM : DDR capacity, bandwidth ratios, per-task
arithmetic intensity) is scale-invariant.  ``Scale.FULL`` reproduces the
paper's literal sizes.

Each figure is a :class:`FigurePlan`: a list of declarative
:class:`~repro.exec.spec.RunSpec` simulation runs plus an ``assemble``
function that folds their result dicts into an
:class:`ExperimentResult`.  :func:`run_plan` executes a plan through
the current :mod:`repro.exec.context` — serially by default, or fanned
out over a process pool with content-addressed caching when the CLI
(or a test) installs a parallel context.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.units import GiB

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.exec.spec import RunSpec

__all__ = ["Scale", "ExperimentResult", "FigurePlan", "run_plan",
           "run_trial", "speedup_table"]


class Scale(enum.Enum):
    """Capacity scale factor for experiment runs."""

    #: 1/32 of the paper's sizes — for chare-heavy workloads (MatMul)
    TINY = 32
    #: 1/16 of the paper's sizes — seconds per run; the CI default
    SMALL = 16
    #: 1/4 of the paper's sizes
    MEDIUM = 4
    #: the paper's literal sizes
    FULL = 1

    @property
    def factor(self) -> int:
        return self.value

    def size(self, full_bytes: float) -> int:
        """Scale a paper-quoted size down to this run scale."""
        return int(full_bytes / self.value)

    @property
    def mcdram(self) -> int:
        return self.size(16 * GiB)

    @property
    def ddr(self) -> int:
        return self.size(96 * GiB)


@dataclasses.dataclass
class ExperimentResult:
    """One experiment's regenerated data, paper-comparable."""

    figure: str
    description: str
    #: x-axis label -> series label -> value
    series: dict[str, dict[str, float]]
    #: unit of the values ("speedup", "GB/s", "s", ...)
    unit: str
    #: free-form extras (overheads, counters) for EXPERIMENTS.md
    notes: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def series_names(self) -> list[str]:
        names: list[str] = []
        for row in self.series.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names


class FigurePlan(_t.NamedTuple):
    """One figure as data: its runs, and how to fold them into a result.

    ``specs`` enumerates every simulation run the figure needs;
    ``assemble`` receives the runs' result dicts *in spec order* and
    builds the :class:`ExperimentResult`.  Keeping enumeration separate
    from assembly is what lets the exec engine batch, dedup, cache and
    parallelize runs across figures without changing any figure's
    output.
    """

    figure: str
    specs: "list[RunSpec]"
    assemble: _t.Callable[[_t.Sequence[_t.Mapping[str, _t.Any]]],
                          ExperimentResult]


def run_plan(plan: FigurePlan) -> ExperimentResult:
    """Execute a plan under the current execution context and assemble."""
    from repro.exec.context import execute

    return plan.assemble(execute(plan.specs))


def run_trial(build_fn: _t.Callable[[], _t.Any],
              run_fn: _t.Callable[[_t.Any], float]) -> float:
    """Build + run one trial, returning the figure-of-merit."""
    ctx = build_fn()
    return run_fn(ctx)


def speedup_table(times: _t.Mapping[str, _t.Mapping[str, float]],
                  baseline: str = "naive") -> dict[str, dict[str, float]]:
    """Convert absolute times into the paper's speedup-vs-baseline rows."""
    out: dict[str, dict[str, float]] = {}
    for x_label, by_strategy in times.items():
        base = by_strategy[baseline]
        out[x_label] = {name: base / t if t > 0 else float("inf")
                        for name, t in by_strategy.items()}
    return out
