"""Benchmark harness: experiment definitions for every paper table/figure.

Each ``fig*`` function in :mod:`repro.bench.experiments` regenerates one
figure's data series; :mod:`repro.bench.report` renders them as the rows
the paper plots.  The pytest-benchmark wrappers live in ``benchmarks/``.
"""

from repro.bench.harness import (
    ExperimentResult,
    Scale,
    run_trial,
    speedup_table,
)
from repro.bench.experiments import (
    fig1_stream_bandwidth,
    fig2_stencil_fits_in_hbm,
    fig5_projections_wait,
    fig6_sync_vs_async,
    fig7_memcpy_cost,
    fig8_stencil_speedup,
    fig9_matmul_speedup,
)
from repro.bench.report import format_table, render_experiment
from repro.bench.regression import (
    best_wall_time,
    read_bench,
    write_bench,
)

__all__ = [
    "ExperimentResult", "Scale", "run_trial", "speedup_table",
    "fig1_stream_bandwidth", "fig2_stencil_fits_in_hbm",
    "fig5_projections_wait", "fig6_sync_vs_async", "fig7_memcpy_cost",
    "fig8_stencil_speedup", "fig9_matmul_speedup",
    "format_table", "render_experiment",
    "best_wall_time", "read_bench", "write_bench",
]
