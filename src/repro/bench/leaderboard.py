"""Strategy leaderboard: every placement strategy × every application.

``repro leaderboard`` sweeps the full strategy registry over the four
chare applications (Stencil3D, blocked MatMul, iterated SpMV, STREAM)
at working sets that fit the scaled HBM tier — ``hbm-only`` refuses
overflow working sets by design, so the fit is what makes the sweep
square.  Each (app, strategy) cell runs N seeded schedule replicates
through the :mod:`repro.exec` engine (content-cached, fan-out capable)
and aggregates into mean ± 95% CI via :mod:`repro.obs.report`.

The ranking folds the per-app sweeps into one score per strategy: its
*geometric-mean slowdown* versus the per-app best strategy, computed
replicate-by-replicate so the summary row carries a CI too.  Geomean —
not arithmetic — so one app cannot dominate by its absolute scale, and
a strategy must be good everywhere to rank first.
"""

from __future__ import annotations

import math
import typing as _t

from repro.bench.harness import ExperimentResult, FigurePlan, Scale
from repro.core.strategies import STRATEGIES
from repro.exec.spec import RunSpec
from repro.obs import html as _h
from repro.obs.report import SweepFigure
from repro.obs.stats import summarize
from repro.units import GiB, MiB

__all__ = ["LEADERBOARD_APPS", "leaderboard_plans", "rank_figures",
           "render_leaderboard"]

#: the apps swept, in table order
LEADERBOARD_APPS: tuple[str, ...] = ("stencil", "matmul", "spmv", "stream")


def _machine(strategy: str, scale: Scale) -> dict[str, _t.Any]:
    return {"strategy": strategy, "cores": 64,
            "mcdram": scale.mcdram, "ddr": scale.ddr}


def _app_specs(app: str, scale: Scale, strategies: _t.Sequence[str],
               iterations: int) -> "list[RunSpec]":
    """One spec per strategy for ``app``, working set inside scaled HBM."""
    # all working sets are 8 GiB at full scale (HBM is 16 GiB there), so
    # every strategy — including hbm-only, which refuses overflow — runs
    if app == "stencil":
        total = scale.size(8 * GiB)
        return [RunSpec("stencil",
                        {**_machine(s, scale), "total": total,
                         "block": scale.size(128 * MiB),
                         "iterations": iterations},
                        cost=2.0 * total / GiB,
                        label=f"leaderboard/stencil/{s}")
                for s in strategies]
    if app == "matmul":
        ws = scale.size(8 * GiB)
        return [RunSpec("matmul",
                        {**_machine(s, scale), "working_set": ws,
                         "block_dim": 96},
                        cost=20.0 * (ws / GiB) ** 1.5,
                        label=f"leaderboard/matmul/{s}")
                for s in strategies]
    if app == "spmv":
        block = scale.size(8 * GiB) // 32
        return [RunSpec("spmv",
                        {**_machine(s, scale), "block_rows": 32,
                         "block_bytes": block,
                         "vector_bytes": max(block // 32, 4096),
                         "couplings": 3, "iterations": iterations,
                         "seed": 0},
                        cost=2.0, label=f"leaderboard/spmv/{s}")
                for s in strategies]
    if app == "stream":
        # 64 chares x 3 vectors: 12 GiB at full scale, inside HBM
        return [RunSpec("stream_app",
                        {**_machine(s, scale), "kernel": "triad",
                         "array_bytes": scale.size(64 * MiB),
                         "chares": 64, "repeats": 2},
                        cost=1.0, label=f"leaderboard/stream/{s}")
                for s in strategies]
    raise ValueError(f"unknown leaderboard app {app!r}; "
                     f"choose from {LEADERBOARD_APPS}")


def leaderboard_plans(scale: Scale = Scale.SMALL, *,
                      apps: _t.Sequence[str] | None = None,
                      strategies: _t.Sequence[str] | None = None,
                      iterations: int = 3) -> list[FigurePlan]:
    """One :class:`FigurePlan` per app, series = makespan per strategy.

    The plans plug straight into the :mod:`repro.obs.report` replicate
    machinery (``replicate_specs`` / ``assemble_sweep``), so the
    leaderboard gets CIs and Welch baselines for free.
    """
    apps = tuple(apps) if apps is not None else LEADERBOARD_APPS
    strategies = tuple(strategies) if strategies is not None \
        else tuple(sorted(STRATEGIES))
    plans: list[FigurePlan] = []
    for app in apps:
        specs = _app_specs(app, scale, strategies, iterations)

        def assemble(results: _t.Sequence[_t.Mapping], *, _app: str = app,
                     _strategies: tuple[str, ...] = strategies,
                     ) -> ExperimentResult:
            row = {s: float(res["total_time"])
                   for s, res in zip(_strategies, results)}
            return ExperimentResult(
                figure=f"leaderboard/{_app}",
                description=f"{_app} makespan per placement strategy",
                series={_app: row}, unit="s")

        plans.append(FigurePlan(f"leaderboard/{app}", specs, assemble))
    return plans


def rank_figures(figures: _t.Sequence[SweepFigure]) -> SweepFigure:
    """Fold per-app sweeps into one ranked geomean-slowdown summary.

    For each replicate r the slowdown of a strategy on an app is its
    makespan divided by the fastest strategy's makespan *in that same
    replicate* (so schedule luck never crosses replicates); the score is
    the geometric mean over apps.  Strategies missing from any app are
    scored over the apps they did run.  Rows come back rank-ordered.
    """
    if not figures:
        raise ValueError("rank_figures needs at least one sweep figure")
    replicates = figures[0].replicates
    # strategy -> list over replicates of list of per-app slowdowns
    slow: dict[str, list[list[float]]] = {}
    for fig in figures:
        for row in fig.values.values():
            for r in range(replicates):
                best = min(vals[r] for vals in row.values())
                for label, vals in row.items():
                    per_rep = slow.setdefault(
                        label, [[] for _ in range(replicates)])
                    per_rep[r].append(vals[r] / best if best > 0 else 1.0)
    scores = {
        label: [math.exp(sum(map(math.log, apps_r)) / len(apps_r))
                for apps_r in per_rep]
        for label, per_rep in slow.items()
    }
    ranked = sorted(scores, key=lambda label: summarize(scores[label]).mean)
    values = {label: {"slowdown": scores[label]} for label in ranked}
    stats = {label: {"slowdown": summarize(scores[label])}
             for label in ranked}
    return SweepFigure(
        figure="leaderboard",
        description="geometric-mean slowdown vs per-app best (rank order)",
        unit="x", replicates=replicates, baseline=None,
        values=values, stats=stats,
        tests={label: {"slowdown": None} for label in ranked})


def render_leaderboard(summary: SweepFigure,
                       figures: _t.Sequence[SweepFigure]) -> str:
    """The ranked plain-text table: one row per strategy, one app column."""
    apps = [next(iter(fig.stats)) for fig in figures]
    head = (f"{'rank':>4}  {'strategy':<14} {'geomean':>14}  "
            + "  ".join(f"{app:>12}" for app in apps))
    lines = [f"== repro leaderboard: {len(summary.stats)} strategies x "
             f"{len(apps)} app(s), {summary.replicates} replicate(s) ==",
             head, "-" * len(head)]
    for rank, (label, row) in enumerate(summary.stats.items(), start=1):
        sample = row["slowdown"]
        # identical replicates leave float-noise CIs; render those as 0
        ci95 = 0.0 if sample.ci95 < abs(sample.mean) * 1e-9 else sample.ci95
        ci = f" ±{_h.fmt(ci95)}" if sample.n > 1 else ""
        cells = []
        for fig, app in zip(figures, apps):
            cell = fig.stats[app].get(label)
            if cell is None:
                cells.append(f"{'—':>12}")
                continue
            test = fig.tests.get(app, {}).get(label)
            mark = test.marker() if test is not None else ""
            cells.append(f"{_h.fmt(cell.mean):>11}s{mark}")
        geo = f"{_h.fmt(sample.mean)}x{ci}"
        lines.append(f"{rank:>4}  {label:<14} {geo:>14}  " + "  ".join(cells))
    if any(fig.baseline for fig in figures):
        base = next(fig.baseline for fig in figures if fig.baseline)
        lines.append(f"   (* = significant vs baseline {base} "
                     "at 95%, Welch)")
    lines.append("   (app cells: makespan mean over replicates; geomean "
                 "ranks across apps)")
    return "\n".join(lines)
