"""Perf-regression recording: ``BENCH_<name>.json`` files.

The ROADMAP wants every PR to leave a wall-clock trajectory behind, not
just correctness green.  The convention is small and tool-agnostic:

* a benchmark module (e.g. ``benchmarks/bench_simcore.py``) measures a
  handful of named scenarios and calls :func:`write_bench` with a flat
  ``{scenario: {metric: value}}`` mapping;
* the result is written to ``BENCH_<name>.json`` at the repository root
  (next to ``pyproject.toml``), committed alongside the change;
* the next PR re-runs the benchmark and eyeballs/asserts against the
  committed numbers via :func:`read_bench`.

File format (one JSON object)::

    {
      "bench": "simcore",
      "schema": 1,
      "created": "2026-08-06T12:00:00+00:00",
      "python": "3.12.3",
      "metrics": {
        "contention_64pe": {"full_s": 1.9, "incremental_s": 0.21,
                             "speedup": 9.0, ...},
        ...
      }
    }

Wall-clock numbers are machine-dependent; *ratios* (speedups, operation
counts) are the comparable part, which is why scenarios should record both.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import time
import typing as _t
from pathlib import Path

__all__ = ["repo_root", "bench_path", "write_bench", "read_bench",
           "best_wall_time"]

#: bump when the file layout changes incompatibly
SCHEMA_VERSION = 1


def repo_root(start: "Path | None" = None) -> Path:
    """The repository root: nearest ancestor holding ``pyproject.toml``."""
    here = (start or Path(__file__)).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    # Fallback for installed trees: current working directory.
    return Path.cwd()


def bench_path(name: str, directory: "Path | None" = None) -> Path:
    """Where ``BENCH_<name>.json`` lives."""
    base = directory if directory is not None else repo_root()
    return base / f"BENCH_{name}.json"


def write_bench(name: str, metrics: _t.Mapping[str, _t.Mapping[str, float]],
                *, directory: "Path | None" = None,
                metrics_digest: _t.Mapping[str, float] | None = None) -> Path:
    """Record one benchmark run; returns the path written.

    ``metrics_digest`` — typically :func:`repro.metrics.export.digest` of
    the run's registry — rides along under its own key, so the perf
    trajectory carries bandwidth/latency context (bytes moved, fetch
    p95s), not just wall-time.
    """
    path = bench_path(name, directory)
    payload = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"),
        "python": platform.python_version(),
        "metrics": {scenario: dict(values)
                    for scenario, values in metrics.items()},
    }
    if metrics_digest is not None:
        payload["metrics_digest"] = dict(metrics_digest)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_bench(name: str, *, directory: "Path | None" = None) -> dict | None:
    """Load a previously recorded run, or ``None`` if absent/corrupt."""
    path = bench_path(name, directory)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) and "metrics" in data else None


def best_wall_time(fn: _t.Callable[[], _t.Any], *, repeats: int = 3
                   ) -> tuple[float, _t.Any]:
    """Best-of-``repeats`` wall time of ``fn()`` and its (last) result.

    Best-of mirrors STREAM/timeit convention: the minimum is the least
    noise-contaminated estimate of the true cost.
    """
    best = float("inf")
    result: _t.Any = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result
