"""The flight recorder: periodic registry snapshots on the sim clock.

A :class:`FlightRecorder` spawns one simulated process that flattens the
registry every ``cadence`` simulated seconds into a ring buffer (old
snapshots fall off — it is a *flight* recorder, not an archive).  The
snapshot stream drives:

* the end-of-run report and JSON/Prometheus exports
  (:mod:`repro.metrics.export`);
* Chrome-trace counter ("C") events merged into
  :func:`repro.trace.export.to_json`, so Perfetto shows queue depth and
  HBM occupancy alongside task intervals;
* live run narration (``repro metrics --watch``) via the ``on_snapshot``
  callback, which receives each new snapshot and its predecessor.

Call :meth:`stop` before :meth:`repro.runtime.runtime.CharmRuntime.shutdown`
— the recorder process re-arms a timeout forever and would keep an
unbounded ``env.run()`` spinning.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.errors import SimulationError
from repro.metrics.registry import MetricsRegistry
from repro.sim.environment import Environment

__all__ = ["Snapshot", "FlightRecorder"]


class Snapshot(_t.NamedTuple):
    """One flattened registry state at one simulated instant."""

    time: float
    values: dict[str, float]

    def get(self, series: str, default: float = 0.0) -> float:
        return self.values.get(series, default)

    def sum_prefix(self, prefix: str) -> float:
        """Sum every series whose name starts with ``prefix`` (label-blind)."""
        return sum(v for k, v in self.values.items() if k.startswith(prefix))


#: callback signature: (new snapshot, previous snapshot or None)
OnSnapshot = _t.Callable[[Snapshot, "Snapshot | None"], None]


class FlightRecorder:
    """Snapshots ``registry`` every ``cadence`` sim-seconds into a ring."""

    def __init__(self, env: Environment, registry: MetricsRegistry, *,
                 cadence: float = 0.05, capacity: int = 1024,
                 on_snapshot: OnSnapshot | None = None):
        if cadence <= 0:
            raise SimulationError(f"cadence must be > 0, got {cadence}")
        if capacity < 2:
            raise SimulationError("capacity must hold at least 2 snapshots")
        self.env = env
        self.registry = registry
        self.cadence = cadence
        self.on_snapshot = on_snapshot
        self.snapshots: deque[Snapshot] = deque(maxlen=capacity)
        self.snapshots_taken = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self._process: _t.Any = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Take the t=0 snapshot and spawn the cadence process."""
        if self._process is not None:
            raise SimulationError("flight recorder already started")
        self.started_at = self.env.now
        self.snapshot()
        self._process = self.env.process(self._main(), name="flight-recorder")
        return self

    def _main(self) -> _t.Generator:
        while True:
            yield self.env.timeout(self.cadence)
            self.snapshot()

    def stop(self) -> None:
        """Final snapshot, then retire the cadence process (idempotent)."""
        if self.stopped_at is not None:
            return
        self.stopped_at = self.env.now
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("flight recorder stopped")
        self.snapshot()

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Take one snapshot now (also usable between cadence ticks)."""
        previous = self.snapshots[-1] if self.snapshots else None
        snap = Snapshot(self.env.now, self.registry.flatten())
        self.snapshots.append(snap)
        self.snapshots_taken += 1
        if self.on_snapshot is not None:
            self.on_snapshot(snap, previous)
        return snap

    def series(self, series: str) -> list[tuple[float, float]]:
        """``(time, value)`` points of one flat series across the ring."""
        return [(snap.time, snap.values[series]) for snap in self.snapshots
                if series in snap.values]

    def sum_series(self, prefix: str) -> list[tuple[float, float]]:
        """``(time, sum-over-labels)`` points for one metric family."""
        return [(snap.time, snap.sum_prefix(prefix))
                for snap in self.snapshots]

    def deltas(self) -> _t.Iterator[tuple[Snapshot, Snapshot]]:
        """Consecutive ``(previous, current)`` snapshot pairs."""
        snaps = list(self.snapshots)
        return zip(snaps, snaps[1:])

    def __len__(self) -> int:
        return len(self.snapshots)
