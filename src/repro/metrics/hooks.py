"""Metrics hook slot — the only metrics module the hot paths import.

Mirrors :mod:`repro.lint.hooks`: instrumented call sites (the data mover,
allocators, strategies, the OOC manager) guard every update with::

    from repro.metrics import hooks as _mx
    ...
    if _mx.registry is not None:
        _mx.registry.counter("repro_moves_total").inc()

so the cost with metrics disabled is one module-global load and an
``is not None`` test — measured in ``benchmarks/bench_metrics.py`` and far
below the noise floor of the sim core.  This module is dependency-free on
purpose: importing it must never pull the rest of :mod:`repro.metrics`
(or anything else) into the hot modules.
"""

from __future__ import annotations

import typing as _t

__all__ = ["registry", "install", "uninstall"]

#: the active :class:`repro.metrics.registry.MetricsRegistry`, or None when
#: metrics are off — the default
registry: _t.Any = None


def install(reg: _t.Any) -> None:
    """Make ``reg`` the active registry; only one may be active."""
    global registry
    if registry is not None and registry is not reg:
        raise RuntimeError("a metrics registry is already installed")
    registry = reg


def uninstall(reg: _t.Any = None) -> None:
    """Remove the active registry (idempotent).

    Passing the registry makes removal safe against double-uninstall races
    in tests: only the currently-installed registry is removed.
    """
    global registry
    if reg is None or registry is reg:
        registry = None
