"""Metrics hook slot — the only metrics module the hot paths import.

Mirrors :mod:`repro.lint.hooks`: instrumented call sites (the data mover,
allocators, strategies, the OOC manager) guard every update with::

    from repro.metrics import hooks as _mx
    ...
    if _mx.registry is not None:
        _mx.registry.counter("repro_moves_total").inc()

so the cost with metrics disabled is one module-global load and an
``is not None`` test — measured in ``benchmarks/bench_metrics.py`` and far
below the noise floor of the sim core.  Unlike the sanitizer slot this one
is *exclusive*: call sites consume return values (``registry.counter(...)``
hands back an instrument), which cannot fan out to several registries, so
only one registry may be installed at a time.  It coexists freely with the
sanitizer/race slots, which are separate module globals.

This module stays dependency-light on purpose: it imports only
:mod:`repro.hooks` (itself dependency-free), never the rest of
:mod:`repro.metrics`, so importing it from hot modules is cheap.
"""

from __future__ import annotations

import typing as _t

from repro.hooks import HookSlot

__all__ = ["registry", "install", "uninstall"]

#: the active :class:`repro.metrics.registry.MetricsRegistry`, or None when
#: metrics are off — the default
registry: _t.Any = None

_slot = HookSlot(__name__, "registry", exclusive=True, kind="metrics registry")


def install(reg: _t.Any) -> None:
    """Make ``reg`` the active registry; only one may be active."""
    _slot.install(reg)


def uninstall(reg: _t.Any = None) -> None:
    """Remove the active registry (idempotent).

    Passing the registry makes removal safe against double-uninstall races
    in tests: only the currently-installed registry is removed.
    """
    _slot.uninstall(reg)
