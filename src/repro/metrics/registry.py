"""The instrument registry: memoized typed children, flat snapshots.

One :class:`MetricsRegistry` is active per run (installed into
:mod:`repro.metrics.hooks` by :class:`~repro.metrics.session.MetricsSession`
or by hand).  Instruments are memoized by ``(name, labels)``, so hot-path
code can call ``registry.counter("repro_moves_total", src=..., dst=...)``
on every event and always get the same child back.

``base_labels`` (typically ``{strategy, app}``) are stamped onto every
instrument, giving the ``{pe, tier, strategy, app}`` label discipline the
exporters rely on without threading context through every call site.
"""

from __future__ import annotations

import re
import typing as _t

from repro.metrics.instruments import (Counter, Gauge, Histogram,
                                       PolledGauge, Timer, _Instrument)

__all__ = ["MetricsRegistry"]

#: Prometheus metric-name grammar (we forbid colons: those are for rules)
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


class MetricsRegistry:
    """Owns every instrument of one run.

    ``clock`` feeds the gauges' time-weighted means and the timers; wire it
    to the simulation clock (``lambda: env.now``) so means and latencies
    are in *simulated* seconds, matching the tracer and the paper's
    figures.
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None,
                 **base_labels: str):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.base_labels = {k: str(v) for k, v in base_labels.items()}
        self._instruments: dict[tuple[str, LabelKey], _Instrument] = {}
        # hot-path memo keyed by the *caller's* raw kwargs (per call site the
        # label order is stable), skipping the merge+sort of _key() on every
        # event — this is what keeps the enabled overhead small-multiple
        self._fast: dict[tuple, _t.Any] = {}
        self.created_at = self.clock()

    # -- child lookup -------------------------------------------------------

    def _key(self, name: str, labels: dict[str, str]) -> tuple[str, LabelKey]:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        merged = {**self.base_labels, **{k: str(v) for k, v in labels.items()}}
        return name, tuple(sorted(merged.items()))

    def _get_or_create(self, cls: type, name: str, labels: dict[str, str],
                       description: str, **kwargs: _t.Any) -> _t.Any:
        key = self._key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], description, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls) or \
                (cls is Gauge and isinstance(instrument, PolledGauge)):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}")
        return instrument

    def counter(self, name: str, description: str = "",
                **labels: str) -> Counter:
        key = (Counter, name, tuple(labels.items()))
        instrument = self._fast.get(key)
        if instrument is None:
            instrument = self._get_or_create(Counter, name, labels,
                                             description)
            self._fast[key] = instrument
        return instrument

    def gauge(self, name: str, description: str = "", **labels: str) -> Gauge:
        key = (Gauge, name, tuple(labels.items()))
        instrument = self._fast.get(key)
        if instrument is None:
            instrument = self._get_or_create(Gauge, name, labels, description,
                                             clock=self.clock)
            self._fast[key] = instrument
        return instrument

    def observe(self, name: str, fn: _t.Callable[[], float],
                description: str = "", **labels: str) -> PolledGauge:
        """Register a *polled* gauge: ``fn()`` is sampled at snapshot time.

        Zero hot-path cost — the way to track queue depths, tier occupancy
        and PE time accounting.
        """
        key = self._key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = PolledGauge(name, fn, key[1], description,
                                     clock=self.clock)
            self._instruments[key] = instrument
        elif not isinstance(instrument, PolledGauge):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested PolledGauge")
        return instrument

    def histogram(self, name: str, description: str = "",
                  boundaries: _t.Sequence[float] | None = None,
                  **labels: str) -> Histogram:
        key = (Histogram, name, tuple(labels.items()))
        instrument = self._fast.get(key)
        if instrument is None:
            instrument = self._get_or_create(Histogram, name, labels,
                                             description,
                                             boundaries=boundaries)
            self._fast[key] = instrument
        return instrument

    def timer(self, name: str, description: str = "",
              boundaries: _t.Sequence[float] | None = None,
              **labels: str) -> Timer:
        return self._get_or_create(Timer, name, labels, description,
                                   clock=self.clock, boundaries=boundaries)

    # -- collection ---------------------------------------------------------

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, name: str, **labels: str) -> _Instrument | None:
        """Look up an existing instrument without creating it."""
        return self._instruments.get(self._key(name, labels))

    def sample_polled(self) -> None:
        """Evaluate every polled gauge (one pass, snapshot cadence)."""
        for instrument in self._instruments.values():
            if isinstance(instrument, PolledGauge):
                instrument.sample()

    def total(self, name: str) -> float:
        """Sum of one counter/gauge family across all label sets."""
        return sum(inst.value for inst in self._instruments.values()
                   if inst.name == name and isinstance(inst, (Counter, Gauge)))

    def flatten(self, *, sample: bool = True) -> dict[str, float]:
        """One flat ``{series: value}`` mapping — the snapshot payload.

        Counters and gauges contribute their value; histograms and timers
        contribute ``_count`` and ``_sum`` series (cheap to delta between
        snapshots; percentiles are end-of-run report material).
        """
        if sample:
            self.sample_polled()
        flat: dict[str, float] = {}
        for instrument in self.instruments():
            if isinstance(instrument, (Counter, Gauge)):
                flat[instrument.series] = instrument.value
            else:
                hist = instrument.histogram \
                    if isinstance(instrument, Timer) else instrument
                base = instrument.name
                suffix = instrument.label_suffix
                flat[f"{base}_count{suffix}"] = float(hist.count)
                flat[f"{base}_sum{suffix}"] = hist.sum
        return flat

    def __len__(self) -> int:
        return len(self._instruments)
