"""Typed instruments: Counter, Gauge, Histogram, Timer.

Every instrument is identified by a Prometheus-compatible name plus a
(small) label set — ``{pe, tier, strategy, app, reason, ...}`` — and is
owned by a :class:`~repro.metrics.registry.MetricsRegistry`, which hands
out memoized children so hot paths pay one dict lookup per update when
metrics are enabled (and one ``is not None`` test when they are not; see
:mod:`repro.metrics.hooks`).

Gauges are *simulation-clock aware*: they integrate ``value * dt`` over
sim time so the flight-recorder report can show time-weighted means (mean
queue depth, mean HBM occupancy) and high-water marks, not just the final
value.
"""

from __future__ import annotations

import math
import typing as _t

__all__ = ["Counter", "Gauge", "PolledGauge", "Histogram", "Timer",
           "DEFAULT_LATENCY_BOUNDS", "Clock"]

#: callable returning the current (simulated) time in seconds
Clock = _t.Callable[[], float]

#: log-spaced bucket boundaries for simulated latencies (seconds); spans
#: queue-lock costs (~1us) through multi-second out-of-core moves
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class _Instrument:
    """Shared identity: name + sorted label pairs."""

    __slots__ = ("name", "labels", "description")
    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 description: str = ""):
        self.name = name
        self.labels = labels
        self.description = description

    @property
    def label_suffix(self) -> str:
        """``{k="v",...}`` rendering, empty string when unlabelled."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"

    @property
    def series(self) -> str:
        """Flat series key: ``name{k="v",...}``."""
        return self.name + self.label_suffix

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.series}>"


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 description: str = ""):
        super().__init__(name, labels, description)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self.value += amount


class Gauge(_Instrument):
    """Point-in-time value with high/low-water marks and a time-weighted
    mean over the simulated clock."""

    __slots__ = ("clock", "value", "high_water", "low_water",
                 "_integral", "_since", "_created", "updates")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 description: str = "", clock: Clock | None = None):
        super().__init__(name, labels, description)
        self.clock = clock if clock is not None else (lambda: 0.0)
        now = self.clock()
        self.value = 0.0
        self.high_water = 0.0
        self.low_water = 0.0
        self._integral = 0.0   # integral of value over [created, since]
        self._since = now      # when `value` last changed
        self._created = now
        self.updates = 0

    def set(self, value: float) -> None:
        now = self.clock()
        self._integral += self.value * (now - self._since)
        self._since = now
        self.value = value
        self.updates += 1
        if value > self.high_water:
            self.high_water = value
        if value < self.low_water:
            self.low_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def time_weighted_mean(self, now: float | None = None) -> float:
        """Mean of the gauge over sim time since creation."""
        if now is None:
            now = self.clock()
        span = now - self._created
        if span <= 0:
            return self.value
        return (self._integral + self.value * (now - self._since)) / span


class PolledGauge(Gauge):
    """Gauge backed by a callable, evaluated at snapshot/collect time.

    The zero-hot-path-cost way to track queue depths, tier occupancy and
    PE time accounting: nothing happens until the flight recorder (or an
    exporter) calls :meth:`sample`.
    """

    __slots__ = ("fn",)

    def __init__(self, name: str, fn: _t.Callable[[], float],
                 labels: tuple[tuple[str, str], ...] = (),
                 description: str = "", clock: Clock | None = None):
        super().__init__(name, labels, description, clock=clock)
        self.fn = fn

    def sample(self) -> float:
        self.set(float(self.fn()))
        return self.value


class Histogram(_Instrument):
    """Fixed-boundary bucket histogram with interpolated percentiles."""

    __slots__ = ("boundaries", "bucket_counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 description: str = "",
                 boundaries: _t.Sequence[float] | None = None):
        super().__init__(name, labels, description)
        bounds = tuple(boundaries) if boundaries is not None \
            else DEFAULT_LATENCY_BOUNDS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing")
        self.boundaries = bounds
        #: one count per boundary plus the +Inf overflow bucket
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        # linear scan: boundary lists are short and observations are on
        # simulated (not wall-clock) critical paths
        i = 0
        bounds = self.boundaries
        n = len(bounds)
        while i < n and value > bounds[i]:
            i += 1
        self.bucket_counts[i] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in-bucket.

        Returns NaN with no observations; the overflow bucket reports the
        observed maximum (the honest upper bound we have).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if i >= len(self.boundaries):       # +Inf bucket
                    return self.max
                lo = self.boundaries[i - 1] if i > 0 else 0.0
                hi = self.boundaries[i]
                frac = (target - cumulative) / bucket_count
                return lo + (hi - lo) * frac
            cumulative += bucket_count
        return self.max  # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan


class Timer(_Instrument):
    """Span helper over a latency :class:`Histogram`.

    Generator-friendly (simulated processes cannot use ``with`` across
    ``yield``)::

        mark = timer.start()
        ... yield things ...
        timer.stop(mark)
    """

    __slots__ = ("clock", "histogram")
    kind = "timer"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 description: str = "", clock: Clock | None = None,
                 boundaries: _t.Sequence[float] | None = None):
        super().__init__(name, labels, description)
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.histogram = Histogram(name, labels, description,
                                   boundaries=boundaries)

    def start(self) -> float:
        return self.clock()

    def stop(self, mark: float) -> float:
        """Record the span opened at ``mark``; returns its duration."""
        duration = self.clock() - mark
        self.histogram.observe(duration)
        return duration
