"""One-call wiring: registry + binding + hook slot + flight recorder.

The drivers' (CLI, benches, tests) entire metrics lifecycle::

    session = MetricsSession(built, app="stencil", cadence=0.02)
    result = app.run()
    session.finish()
    print(render_report(session.registry, session.recorder))

``MetricsSession`` is also a context manager; ``finish`` is idempotent and
always uninstalls the hook slot, so a crashed run cannot leak a registry
into the next one.
"""

from __future__ import annotations

import typing as _t

from repro.metrics import hooks as _hooks
from repro.metrics.bind import bind_built_runtime
from repro.metrics.recorder import FlightRecorder, OnSnapshot
from repro.metrics.registry import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import BuiltRuntime

__all__ = ["MetricsSession"]


class MetricsSession:
    """Installed, bound and recording from construction until ``finish``."""

    def __init__(self, built: "BuiltRuntime", *, app: str = "",
                 cadence: float = 0.05, capacity: int = 1024,
                 on_snapshot: OnSnapshot | None = None):
        self.built = built
        self.registry = MetricsRegistry(
            clock=lambda: built.env.now,
            strategy=built.manager.strategy.name, app=app)
        bind_built_runtime(self.registry, built)
        self.recorder = FlightRecorder(
            built.env, self.registry, cadence=cadence, capacity=capacity,
            on_snapshot=on_snapshot)
        _hooks.install(self.registry)
        self.recorder.start()
        self._finished = False

    def finish(self) -> FlightRecorder:
        """Final snapshot, stop the recorder, release the hook slot."""
        if not self._finished:
            self._finished = True
            try:
                self.recorder.stop()
            finally:
                _hooks.uninstall(self.registry)
        return self.recorder

    def __enter__(self) -> "MetricsSession":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.finish()
