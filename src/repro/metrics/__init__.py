"""repro.metrics: the runtime telemetry subsystem.

A simulation-clock-aware metrics layer over the OOC runtime:

* typed instruments (:class:`Counter`, :class:`Gauge` with time-weighted
  mean and high-water marks, fixed-boundary :class:`Histogram` with
  p50/p95/p99, :class:`Timer` spans), labelled ``{pe, tier, strategy,
  app, ...}`` and memoized per label set;
* a hook slot (:mod:`repro.metrics.hooks`) mirroring the sanitizer's:
  hot paths pay one ``is not None`` test when metrics are off;
* polled gauges (:func:`bind_built_runtime`) for queue depths, tier
  occupancy and PE time accounting — zero cost until sampled;
* a :class:`FlightRecorder` snapshotting the registry on a sim-time
  cadence into a ring buffer;
* exporters: Prometheus text exposition, JSON, a human-readable run
  report, Chrome-trace counter series for Perfetto, and live narration
  lines for ``repro metrics --watch``.

See README "Observability" for the instrument table and CLI usage.
"""

from repro.metrics import hooks
from repro.metrics.bind import bind_built_runtime
from repro.metrics.export import (counter_series, digest, narration_line,
                                  render_report, to_json, to_prometheus,
                                  validate_exposition)
from repro.metrics.instruments import (DEFAULT_LATENCY_BOUNDS, Counter,
                                       Gauge, Histogram, PolledGauge, Timer)
from repro.metrics.recorder import FlightRecorder, Snapshot
from repro.metrics.registry import MetricsRegistry
from repro.metrics.session import MetricsSession

__all__ = [
    "hooks",
    "Counter", "Gauge", "PolledGauge", "Histogram", "Timer",
    "DEFAULT_LATENCY_BOUNDS",
    "MetricsRegistry", "FlightRecorder", "Snapshot", "MetricsSession",
    "bind_built_runtime",
    "to_prometheus", "to_json", "digest", "render_report",
    "counter_series", "narration_line", "validate_exposition",
]
