"""Wire a registry to a built runtime stack via polled gauges.

The hot paths push counters/histograms through the
:mod:`repro.metrics.hooks` slot; everything that can be *read* instead of
*pushed* — queue depths, tier occupancy, PE time accounting, manager task
counts — is registered here as a polled gauge, sampled only when the
flight recorder (or an exporter) takes a snapshot.  That keeps the
steady-state cost of those signals at exactly zero.
"""

from __future__ import annotations

import typing as _t

from repro.metrics.registry import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import BuiltRuntime

__all__ = ["bind_built_runtime"]


def bind_built_runtime(registry: MetricsRegistry,
                       built: "BuiltRuntime") -> MetricsRegistry:
    """Register polled gauges over ``built``'s devices, PEs and manager."""
    manager = built.manager
    mover = built.machine.mover

    # -- memory tiers ------------------------------------------------------
    for device in (manager.hbm, manager.ddr):
        alloc = device.allocator
        registry.observe("repro_mem_used_bytes", lambda d=device: d.used,
                         "bytes resident on the tier", tier=device.name)
        registry.observe("repro_mem_free_bytes", lambda d=device: d.available,
                         "bytes free on the tier", tier=device.name)
        registry.observe("repro_mem_high_water_bytes",
                         lambda a=alloc: a.peak_used,
                         "allocator high-water mark", tier=device.name)
        registry.observe("repro_mem_alloc_calls",
                         lambda a=alloc: a.alloc_calls,
                         "allocator allocate() calls", tier=device.name)
        registry.observe("repro_mem_alloc_failures",
                         lambda a=alloc: a.failed_allocs,
                         "failed allocations on the tier", tier=device.name)
        registry.observe("repro_mem_read_bytes",
                         lambda d=device: d.bytes_read,
                         "bytes read off the tier", tier=device.name)
        registry.observe("repro_mem_written_bytes",
                         lambda d=device: d.bytes_written,
                         "bytes written to the tier", tier=device.name)

    # -- HBM tracker -------------------------------------------------------
    tracker = manager.tracker
    registry.observe("repro_hbm_reserved_bytes", lambda: tracker.reserved,
                     "in-flight fetch reservations")
    registry.observe("repro_hbm_budget_bytes", lambda: tracker.budget,
                     "HBM capacity available to the OOC scheduler")
    registry.observe("repro_hbm_rejected_fits", lambda: tracker.rejected_fits,
                     "can_fit probes answered no")

    # -- data mover --------------------------------------------------------
    registry.observe("repro_mover_moves_completed",
                     lambda: mover.moves_completed, "completed block moves")
    registry.observe("repro_mover_bytes_moved", lambda: mover.bytes_moved,
                     "total bytes moved between tiers")

    # -- manager task counts ----------------------------------------------
    registry.observe("repro_tasks_intercepted",
                     lambda: manager.tasks_intercepted,
                     "[prefetch] messages intercepted")
    registry.observe("repro_tasks_readied", lambda: manager.tasks_readied,
                     "tasks handed to run queues with data resident")
    registry.observe("repro_tasks_completed", lambda: manager.tasks_completed,
                     "tasks that finished post-processing")

    # -- PEs: queue depths + busy/idle/blocked accounting ------------------
    for pe in built.runtime.pes:
        label = str(pe.id)
        registry.observe("repro_pe_wait_depth",
                         lambda p=pe: len(p.wait_queue),
                         "tasks parked awaiting prefetch", pe=label)
        registry.observe("repro_pe_run_depth",
                         lambda p=pe: len(p.run_queue),
                         "converse run-queue depth", pe=label)
        registry.observe("repro_pe_busy_seconds", lambda p=pe: p.busy_time,
                         "time executing entry methods", pe=label)
        registry.observe("repro_pe_blocked_seconds",
                         lambda p=pe: p.overhead_time,
                         "time blocked in pre/post-processing", pe=label)
        registry.observe("repro_pe_idle_seconds", lambda p=pe: p.idle_time,
                         "scheduler time neither busy nor blocked", pe=label)
    return registry
