"""Exporters: Prometheus text exposition, JSON, run report, narration.

Everything renders from a :class:`~repro.metrics.registry.MetricsRegistry`
(plus, optionally, a :class:`~repro.metrics.recorder.FlightRecorder` for
the time dimension).  Nothing here runs on a hot path.
"""

from __future__ import annotations

import json
import math
import re
import typing as _t

from repro.metrics.instruments import (Counter, Gauge, Histogram,
                                       PolledGauge, Timer)
from repro.metrics.recorder import FlightRecorder, Snapshot
from repro.metrics.registry import MetricsRegistry
from repro.units import format_size, format_time

__all__ = ["to_prometheus", "to_json", "digest", "render_report",
           "counter_series", "narration_line", "validate_exposition"]


# -- Prometheus text exposition -------------------------------------------------

def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: _t.Iterable[tuple[str, str]],
            extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*pairs, *extra]
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in items) + "}"


def _fmt(value: float) -> str:
    if value != value:                      # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (format version 0.0.4).

    Counters get the conventional ``_total`` suffix when the instrument
    name does not already carry one; histograms and timers expand into
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()

    def header(name: str, kind: str, description: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if description:
            lines.append(f"# HELP {name} {_escape(description)}")
        lines.append(f"# TYPE {name} {kind}")

    for inst in registry.instruments():
        if isinstance(inst, Counter):
            name = inst.name if inst.name.endswith("_total") \
                else inst.name + "_total"
            header(name, "counter", inst.description)
            lines.append(f"{name}{_labels(inst.labels)} {_fmt(inst.value)}")
        elif isinstance(inst, (PolledGauge, Gauge)):
            header(inst.name, "gauge", inst.description)
            lines.append(
                f"{inst.name}{_labels(inst.labels)} {_fmt(inst.value)}")
        elif isinstance(inst, (Histogram, Timer)):
            hist = inst.histogram if isinstance(inst, Timer) else inst
            header(inst.name, "histogram", inst.description)
            cumulative = 0
            for bound, count in zip(hist.boundaries, hist.bucket_counts):
                cumulative += count
                le = (("le", _fmt(bound)),)
                lines.append(f"{inst.name}_bucket"
                             f"{_labels(inst.labels, le)} {cumulative}")
            lines.append(f"{inst.name}_bucket"
                         f"{_labels(inst.labels, (('le', '+Inf'),))} "
                         f"{hist.count}")
            lines.append(
                f"{inst.name}_sum{_labels(inst.labels)} {_fmt(hist.sum)}")
            lines.append(
                f"{inst.name}_count{_labels(inst.labels)} {hist.count}")
    return "\n".join(lines) + "\n"


#: one exposition line: name{labels} value  (no timestamps emitted)
_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)$")
_PROM_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]*( .*)?$")


def validate_exposition(text: str) -> list[str]:
    """Line-format check of Prometheus output; returns the bad lines."""
    bad = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT_RE.match(line):
                bad.append(line)
        elif not _PROM_SAMPLE_RE.match(line):
            bad.append(line)
    return bad


# -- JSON -----------------------------------------------------------------------

def to_json(registry: MetricsRegistry,
            recorder: FlightRecorder | None = None, *,
            indent: int | None = None) -> str:
    """Machine-readable dump: instruments plus (optionally) snapshots."""
    instruments = []
    for inst in registry.instruments():
        record: dict[str, _t.Any] = {
            "name": inst.name,
            "kind": inst.kind,
            "labels": dict(inst.labels),
        }
        if isinstance(inst, Counter):
            record["value"] = inst.value
        elif isinstance(inst, Gauge):            # PolledGauge included
            record.update(value=inst.value, high_water=inst.high_water,
                          mean=inst.time_weighted_mean())
        elif isinstance(inst, (Histogram, Timer)):
            hist = inst.histogram if isinstance(inst, Timer) else inst
            record.update(
                count=hist.count, sum=hist.sum,
                min=None if hist.count == 0 else hist.min,
                max=None if hist.count == 0 else hist.max,
                p50=None if hist.count == 0 else hist.p50,
                p95=None if hist.count == 0 else hist.p95,
                p99=None if hist.count == 0 else hist.p99)
        instruments.append(record)
    payload: dict[str, _t.Any] = {"schema": 1, "instruments": instruments}
    if recorder is not None:
        payload["snapshots"] = [
            {"time": snap.time, "values": snap.values}
            for snap in recorder.snapshots]
        payload["cadence"] = recorder.cadence
        payload["snapshots_taken"] = recorder.snapshots_taken
    return json.dumps(payload, indent=indent, sort_keys=True)


# -- compact digest (for BENCH_*.json) -------------------------------------------

def digest(registry: MetricsRegistry) -> dict[str, float]:
    """Compact numeric digest for perf-regression files.

    Counters collapse to per-family totals; gauges report high-water
    marks; histograms report count/p50/p95/p99 per family (labels summed
    away or, for percentiles, taken over the merged family observations
    via the widest child).

    Every value is coerced to ``float`` — byte-valued instruments hold
    ints, and a mixed int/float digest serializes inconsistently across
    BENCH_*.json snapshots (``12.0`` vs ``12``), breaking trend diffs.
    """
    out: dict[str, float] = {}
    families: dict[str, list] = {}
    for inst in registry.instruments():
        families.setdefault(inst.name, []).append(inst)
    for name, insts in sorted(families.items()):
        first = insts[0]
        if isinstance(first, Counter):
            out[name] = float(sum(i.value for i in insts))
        elif isinstance(first, Gauge):
            out[name + "_hwm"] = float(max(i.high_water for i in insts))
        elif isinstance(first, (Histogram, Timer)):
            hists = [i.histogram if isinstance(i, Timer) else i
                     for i in insts]
            total = sum(h.count for h in hists)
            out[name + "_count"] = float(total)
            if total:
                busiest = max(hists, key=lambda h: h.count)
                out[name + "_p50"] = float(busiest.p50)
                out[name + "_p95"] = float(busiest.p95)
                out[name + "_p99"] = float(busiest.p99)
    return out


# -- Chrome-trace counter series --------------------------------------------------

#: flat-series families exported as Perfetto counter tracks by default
DEFAULT_COUNTER_FAMILIES = (
    "repro_hbm_used_bytes",
    "repro_mem_used_bytes",
    "repro_pe_wait_depth",
    "repro_pe_run_depth",
    "repro_moves_inflight",
)


def counter_series(recorder: FlightRecorder,
                   families: _t.Sequence[str] = DEFAULT_COUNTER_FAMILIES,
                   ) -> dict[str, list[tuple[float, float]]]:
    """Per-family ``(time, value)`` series summed across labels.

    The result plugs straight into :func:`repro.trace.export.to_json`'s
    ``counters`` argument, merging queue depth and occupancy tracks into
    the Chrome trace.
    """
    out: dict[str, list[tuple[float, float]]] = {}
    for family in families:
        points = []
        for snap in recorder.snapshots:
            total = 0.0
            hit = False
            for key, value in snap.values.items():
                if key == family or key.startswith(family + "{"):
                    total += value
                    hit = True
            if hit:
                points.append((snap.time, total))
        if points:
            out[family] = points
    return out


# -- live narration ----------------------------------------------------------------

def _family_total(snap: Snapshot, family: str) -> float:
    return sum(v for k, v in snap.values.items()
               if k == family or k.startswith(family + "{"))


def narration_line(snap: Snapshot, previous: Snapshot | None, *,
                   hbm_capacity: int | None = None,
                   hbm_tier: str | None = None) -> str:
    """One human-readable delta line for ``repro metrics --watch``.

    ``hbm_tier`` names the fast tier's device (e.g. ``"mcdram"``) so the
    occupancy column can read the *polled* per-tier gauge, which is
    sampled at snapshot time; without it the pushed
    ``repro_hbm_used_bytes`` gauge (updated at move completions) is used.
    """
    def total(family: str) -> float:
        return _family_total(snap, family)

    def delta(family: str) -> str:
        if previous is None:
            return ""
        change = total(family) - _family_total(previous, family)
        return f"(+{change:g})" if change > 0 else ""

    hbm = 0.0
    if hbm_tier is not None:
        hbm = sum(v for k, v in snap.values.items()
                  if k.startswith("repro_mem_used_bytes")
                  and f'tier="{hbm_tier}"' in k)
    if hbm == 0.0:
        hbm = total("repro_hbm_used_bytes")
    occupancy = f"{hbm / hbm_capacity:4.0%}" if hbm_capacity \
        else format_size(int(hbm))
    parts = [
        f"[{format_time(snap.time):>9s}]",
        f"hbm={occupancy}",
        f"waitq={total('repro_pe_wait_depth'):g}",
        f"runq={total('repro_pe_run_depth'):g}",
        f"inflight={total('repro_moves_inflight'):g}",
        f"fetches={total('repro_prefetch_issued_total'):g}"
        f"{delta('repro_prefetch_issued_total')}",
        f"hits={total('repro_prefetch_hits_total'):g}"
        f"{delta('repro_prefetch_hits_total')}",
        f"evictions={total('repro_evictions_total'):g}"
        f"{delta('repro_evictions_total')}",
        f"moved={format_size(int(total('repro_moved_bytes_total')))}",
    ]
    return " ".join(parts)


# -- end-of-run report --------------------------------------------------------------

def _value_str(name: str, value: float) -> str:
    if value != value:
        return "nan"
    if "bytes" in name:
        return format_size(int(value))
    if "seconds" in name and 0 < abs(value) < 1e4:
        return format_time(value)
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def render_report(registry: MetricsRegistry,
                  recorder: FlightRecorder | None = None, *,
                  title: str = "run") -> str:
    """The human-readable flight-recorder report printed at end of run."""
    lines = [f"== flight recorder report: {title} =="]
    if registry.base_labels:
        pairs = ", ".join(f"{k}={v}"
                          for k, v in sorted(registry.base_labels.items()))
        lines.append(f"   labels: {pairs}")
    if recorder is not None:
        span_start = recorder.snapshots[0].time if recorder.snapshots else 0.0
        span_end = recorder.snapshots[-1].time if recorder.snapshots else 0.0
        lines.append(
            f"   snapshots: {len(recorder.snapshots)} kept "
            f"({recorder.snapshots_taken} taken) over "
            f"[{format_time(span_start)} .. {format_time(span_end)}], "
            f"cadence {format_time(recorder.cadence)}")

    counters = [i for i in registry.instruments() if isinstance(i, Counter)]
    gauges = [i for i in registry.instruments()
              if isinstance(i, Gauge) and not isinstance(i, PolledGauge)]
    polled = [i for i in registry.instruments() if isinstance(i, PolledGauge)]
    histograms = [i for i in registry.instruments()
                  if isinstance(i, (Histogram, Timer))]

    def strip_base(inst: _t.Any) -> str:
        own = [(k, v) for k, v in inst.labels
               if registry.base_labels.get(k) != v]
        if not own:
            return inst.name
        return inst.name + "{" + ",".join(f"{k}={v}" for k, v in own) + "}"

    if counters:
        lines.append("-- counters --")
        for inst in counters:
            lines.append(f"  {strip_base(inst):52s} "
                         f"{_value_str(inst.name, inst.value):>12s}")
    if gauges or polled:
        lines.append("-- gauges (last / high-water / time-weighted mean) --")
        for inst in [*gauges, *polled]:
            mean = inst.time_weighted_mean()
            lines.append(
                f"  {strip_base(inst):52s} "
                f"{_value_str(inst.name, inst.value):>12s} / "
                f"{_value_str(inst.name, inst.high_water):>12s} / "
                f"{_value_str(inst.name, mean):>12s}")
    if histograms:
        lines.append("-- histograms (count / p50 / p95 / p99) --")
        for inst in histograms:
            hist = inst.histogram if isinstance(inst, Timer) else inst
            if hist.count == 0:
                lines.append(f"  {strip_base(inst):52s} {'0':>8s}")
                continue
            lines.append(
                f"  {strip_base(inst):52s} {hist.count:>8d} / "
                f"{_value_str(inst.name, hist.p50):>10s} / "
                f"{_value_str(inst.name, hist.p95):>10s} / "
                f"{_value_str(inst.name, hist.p99):>10s}")
    return "\n".join(lines)
