"""Typed trace records."""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["TraceCategory", "TraceEvent"]


class TraceCategory(enum.Enum):
    """What a PE (or IO thread) was doing during an interval.

    The Projections colour legend of Figures 5-6 maps onto these:
    *compute kernel* bars are ``EXECUTE``; the "red portion... wait time
    caused due to delays from scheduling tasks, data prefetch, eviction and
    locking of queues and data blocks" is PE idle time plus the overhead
    categories.
    """

    #: entry-method execution (the useful work)
    EXECUTE = "execute"
    #: synchronous data fetch in a task's pre-processing step (no-IO strategy)
    PREPROCESS_FETCH = "preprocess_fetch"
    #: synchronous eviction in a task's post-processing step
    POSTPROCESS_EVICT = "postprocess_evict"
    #: an IO thread fetching a block into HBM
    IO_FETCH = "io_fetch"
    #: an IO thread (or worker) evicting a block to DDR
    IO_EVICT = "io_evict"
    #: waiting to acquire a queue or block lock
    LOCK_WAIT = "lock_wait"
    #: converse scheduling bookkeeping
    SCHEDULING = "scheduling"


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One closed interval on one PE/IO-thread lane."""

    lane: str            # "pe3" or "io3"
    category: TraceCategory
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"trace event ends before it starts ({self.start}..{self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start
