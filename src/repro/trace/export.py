"""Trace export: JSON (Chrome-trace-like) and CSV.

The JSON export optionally merges *counter series* — ``(time, value)``
points from the metrics flight recorder (see
:func:`repro.metrics.export.counter_series`) — as Chrome ``"C"`` events,
so Perfetto renders queue depth and HBM occupancy tracks alongside the
task intervals.  It also optionally merges *causal spans* from
:class:`repro.obs.spans.SpanTracer`: each span becomes a complete ("X")
slice on its own process row (pid 1, so flat intervals and causal spans
never overdraw), and every causal edge becomes a flow-event pair
(``"s"`` at the cause's end, ``"f"`` with ``bp: "e"`` at the effect's
start) so Perfetto draws arrows from senders to executions and from
fetches to the tasks they fed.
"""

from __future__ import annotations

import csv
import io
import json
import typing as _t

from repro.trace.tracer import Tracer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Span

__all__ = ["to_json", "to_csv", "span_events"]

#: one counter track: series name -> [(time_s, value), ...]
CounterSeries = _t.Mapping[str, _t.Sequence[tuple[float, float]]]


def span_events(spans: "_t.Sequence[Span]") -> list[dict[str, _t.Any]]:
    """Chrome ``trace_event`` records for a causal span list.

    Span slices carry ``args.sid`` / ``args.parent`` / ``args.causes``
    (and ``args.task`` / ``args.block`` when bound), so the DAG survives
    a JSON round trip; each causal edge adds one ``"s"``/``"f"`` flow
    pair binding the enclosing slices on pid 1.
    """
    by_sid = {span.sid: span for span in spans}
    records: list[dict[str, _t.Any]] = []
    for span in spans:
        args: dict[str, _t.Any] = {"sid": span.sid, "parent": span.parent,
                                   "causes": list(span.causes)}
        if span.tid is not None:
            args["task"] = span.tid
        if span.block:
            args["block"] = span.block
        records.append({
            "name": span.label or span.category.value,
            "cat": "span." + span.category.value,
            "ph": "X",
            "pid": 1,
            "tid": span.lane,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": args,
        })
    flow_id = 0
    for span in spans:
        for cause in span.causes:
            src = by_sid.get(cause)
            if src is None:      # cause never closed (crashed run)
                continue
            flow_id += 1
            records.append({
                "name": "cause", "cat": "flow", "ph": "s", "id": flow_id,
                "pid": 1, "tid": src.lane,
                "ts": min(src.end, span.start) * 1e6,
            })
            records.append({
                "name": "cause", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow_id, "pid": 1, "tid": span.lane,
                "ts": span.start * 1e6,
            })
    return records


def to_json(tracer: Tracer, *, indent: int | None = None,
            counters: CounterSeries | None = None,
            spans: "_t.Sequence[Span] | None" = None) -> str:
    """Serialise events in a Chrome ``trace_event``-compatible layout.

    Each interval becomes a complete ("X") event with microsecond
    timestamps, so the output loads in ``chrome://tracing`` / Perfetto.
    ``counters`` adds one counter ("C") track per series; ``spans`` adds
    the causal span slices and their flow arrows (see
    :func:`span_events`).
    """
    records: list[dict[str, _t.Any]] = [
        {
            "name": ev.label or ev.category.value,
            "cat": ev.category.value,
            "ph": "X",
            "pid": 0,
            "tid": ev.lane,
            "ts": ev.start * 1e6,
            "dur": ev.duration * 1e6,
        }
        for ev in tracer.events
    ]
    if counters:
        for name in sorted(counters):
            for when, value in counters[name]:
                records.append({
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "pid": 0,
                    "ts": when * 1e6,
                    "args": {"value": value},
                })
    if spans:
        records.extend(span_events(spans))
    return json.dumps({"traceEvents": records}, indent=indent)


def to_csv(tracer: Tracer) -> str:
    """Serialise events as CSV: lane, category, start, end, duration, label."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["lane", "category", "start_s", "end_s", "duration_s", "label"])
    for ev in tracer.events:
        writer.writerow([ev.lane, ev.category.value,
                         f"{ev.start:.9f}", f"{ev.end:.9f}",
                         f"{ev.duration:.9f}", ev.label])
    return buffer.getvalue()
