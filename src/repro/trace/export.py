"""Trace export: JSON (Chrome-trace-like) and CSV."""

from __future__ import annotations

import csv
import io
import json

from repro.trace.tracer import Tracer

__all__ = ["to_json", "to_csv"]


def to_json(tracer: Tracer, *, indent: int | None = None) -> str:
    """Serialise events in a Chrome ``trace_event``-compatible layout.

    Each interval becomes a complete ("X") event with microsecond
    timestamps, so the output loads in ``chrome://tracing`` / Perfetto.
    """
    records = [
        {
            "name": ev.label or ev.category.value,
            "cat": ev.category.value,
            "ph": "X",
            "pid": 0,
            "tid": ev.lane,
            "ts": ev.start * 1e6,
            "dur": ev.duration * 1e6,
        }
        for ev in tracer.events
    ]
    return json.dumps({"traceEvents": records}, indent=indent)


def to_csv(tracer: Tracer) -> str:
    """Serialise events as CSV: lane, category, start, end, duration, label."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["lane", "category", "start_s", "end_s", "duration_s", "label"])
    for ev in tracer.events:
        writer.writerow([ev.lane, ev.category.value,
                         f"{ev.start:.9f}", f"{ev.end:.9f}",
                         f"{ev.duration:.9f}", ev.label])
    return buffer.getvalue()
