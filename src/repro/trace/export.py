"""Trace export: JSON (Chrome-trace-like) and CSV.

The JSON export optionally merges *counter series* — ``(time, value)``
points from the metrics flight recorder (see
:func:`repro.metrics.export.counter_series`) — as Chrome ``"C"`` events,
so Perfetto renders queue depth and HBM occupancy tracks alongside the
task intervals.
"""

from __future__ import annotations

import csv
import io
import json
import typing as _t

from repro.trace.tracer import Tracer

__all__ = ["to_json", "to_csv"]

#: one counter track: series name -> [(time_s, value), ...]
CounterSeries = _t.Mapping[str, _t.Sequence[tuple[float, float]]]


def to_json(tracer: Tracer, *, indent: int | None = None,
            counters: CounterSeries | None = None) -> str:
    """Serialise events in a Chrome ``trace_event``-compatible layout.

    Each interval becomes a complete ("X") event with microsecond
    timestamps, so the output loads in ``chrome://tracing`` / Perfetto.
    ``counters`` adds one counter ("C") track per series.
    """
    records: list[dict[str, _t.Any]] = [
        {
            "name": ev.label or ev.category.value,
            "cat": ev.category.value,
            "ph": "X",
            "pid": 0,
            "tid": ev.lane,
            "ts": ev.start * 1e6,
            "dur": ev.duration * 1e6,
        }
        for ev in tracer.events
    ]
    if counters:
        for name in sorted(counters):
            for when, value in counters[name]:
                records.append({
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "pid": 0,
                    "ts": when * 1e6,
                    "args": {"value": value},
                })
    return json.dumps({"traceEvents": records}, indent=indent)


def to_csv(tracer: Tracer) -> str:
    """Serialise events as CSV: lane, category, start, end, duration, label."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["lane", "category", "start_s", "end_s", "duration_s", "label"])
    for ev in tracer.events:
        writer.writerow([ev.lane, ev.category.value,
                         f"{ev.start:.9f}", f"{ev.end:.9f}",
                         f"{ev.duration:.9f}", ev.label])
    return buffer.getvalue()
