"""Timeline aggregation: the numbers behind Projections screenshots.

Figures 5 and 6 of the paper are Projections timelines whose message is
quantitative: the *wait* (red) fraction is much larger with a single IO
thread than with per-PE IO threads, and the synchronous strategy inserts
~20 ms of pre-processing before each compute kernel that the asynchronous
strategy hides.  :func:`build_report` computes exactly those quantities.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t

from repro.trace.events import TraceCategory
from repro.trace.tracer import Tracer

__all__ = ["PETimeline", "ProjectionsReport", "build_report"]


@dataclasses.dataclass
class PETimeline:
    """Aggregated interval times for one lane over a window."""

    lane: str
    window: float
    execute: float = 0.0
    preprocess_fetch: float = 0.0
    postprocess_evict: float = 0.0
    io_fetch: float = 0.0
    io_evict: float = 0.0
    lock_wait: float = 0.0
    scheduling: float = 0.0

    @property
    def overhead(self) -> float:
        """Synchronous fetch/evict + lock + scheduling time on this lane."""
        return (self.preprocess_fetch + self.postprocess_evict
                + self.lock_wait + self.scheduling)

    @property
    def accounted(self) -> float:
        return self.execute + self.overhead + self.io_fetch + self.io_evict

    @property
    def idle(self) -> float:
        """The Projections 'red': window time not doing anything useful."""
        return max(0.0, self.window - self.execute - self.overhead
                   - self.io_fetch - self.io_evict)

    @property
    def utilization(self) -> float:
        return self.execute / self.window if self.window > 0 else 0.0

    @property
    def wait_fraction(self) -> float:
        """idle + overhead as a fraction of the window (the 'red portion')."""
        if self.window <= 0:
            return 0.0
        return (self.idle + self.overhead) / self.window


_CATEGORY_FIELDS = {
    TraceCategory.EXECUTE: "execute",
    TraceCategory.PREPROCESS_FETCH: "preprocess_fetch",
    TraceCategory.POSTPROCESS_EVICT: "postprocess_evict",
    TraceCategory.IO_FETCH: "io_fetch",
    TraceCategory.IO_EVICT: "io_evict",
    TraceCategory.LOCK_WAIT: "lock_wait",
    TraceCategory.SCHEDULING: "scheduling",
}


@dataclasses.dataclass
class ProjectionsReport:
    """The whole-run view Figures 5-6 are read from."""

    window: float
    lanes: dict[str, PETimeline]

    @property
    def worker_lanes(self) -> list[PETimeline]:
        return [tl for name, tl in sorted(self.lanes.items())
                if name.startswith("pe")]

    @property
    def io_lanes(self) -> list[PETimeline]:
        return [tl for name, tl in sorted(self.lanes.items())
                if name.startswith("io")]

    def mean_utilization(self) -> float:
        workers = self.worker_lanes
        if not workers:
            return 0.0
        return statistics.fmean(tl.utilization for tl in workers)

    def mean_wait_fraction(self) -> float:
        """Mean 'red fraction' over worker PEs — the Figure 5 comparator."""
        workers = self.worker_lanes
        if not workers:
            return 0.0
        return statistics.fmean(tl.wait_fraction for tl in workers)

    def mean_preprocess_per_task(self, tasks_per_pe: _t.Mapping[str, int]) -> float:
        """Mean synchronous pre-processing time per task — Figure 6's ~20 ms."""
        totals, counts = 0.0, 0
        for name, tl in self.lanes.items():
            n = tasks_per_pe.get(name, 0)
            if n > 0:
                totals += tl.preprocess_fetch
                counts += n
        return totals / counts if counts else 0.0

    def summary_rows(self) -> list[dict[str, float | str]]:
        rows: list[dict[str, float | str]] = []
        for name, tl in sorted(self.lanes.items()):
            rows.append({
                "lane": name,
                "window_s": tl.window,
                "execute_s": tl.execute,
                "overhead_s": tl.overhead,
                "io_s": tl.io_fetch + tl.io_evict,
                "idle_s": tl.idle,
                "utilization": tl.utilization,
                "wait_fraction": tl.wait_fraction,
            })
        return rows


def build_report(tracer: Tracer, *, start: float = 0.0,
                 end: float | None = None) -> ProjectionsReport:
    """Aggregate a tracer's events over ``[start, end]`` into a report.

    Events are clipped to the window, so a report over one iteration of an
    application is as valid as a whole-run report.
    """
    if end is None:
        end = max((ev.end for ev in tracer.events), default=start)
    window = max(0.0, end - start)
    lanes: dict[str, PETimeline] = {}
    for ev in tracer.events:
        clipped_start = max(ev.start, start)
        clipped_end = min(ev.end, end)
        if clipped_end <= clipped_start:
            continue
        tl = lanes.setdefault(ev.lane, PETimeline(lane=ev.lane, window=window))
        field = _CATEGORY_FIELDS[ev.category]
        setattr(tl, field, getattr(tl, field) + (clipped_end - clipped_start))
    return ProjectionsReport(window=window, lanes=lanes)
