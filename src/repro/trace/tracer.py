"""Trace collection."""

from __future__ import annotations

import contextlib
import typing as _t

from repro.sim.environment import Environment
from repro.trace.events import TraceCategory, TraceEvent

__all__ = ["Tracer"]


class Tracer:
    """Collects :class:`TraceEvent` intervals during a simulation run.

    Tracing can be disabled (``enabled=False``) for large benchmark sweeps;
    aggregate counters on PEs and the OOC manager remain available either
    way.
    """

    def __init__(self, env: Environment, enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, lane: str, category: TraceCategory, start: float,
               end: float, label: str = "") -> None:
        if self.enabled:
            self.events.append(TraceEvent(lane, category, start, end, label))

    @contextlib.contextmanager
    def span_absent(self) -> _t.Iterator[None]:  # pragma: no cover - trivial
        yield

    def interval(self, lane: str, category: TraceCategory, label: str = ""):
        """Context-manager-like helper for generator code.

        Usage (inside simulated processes, where ``yield`` happens between
        ``begin`` and the ``finish`` call)::

            mark = tracer.begin()
            ... yield things ...
            tracer.finish(mark, lane, category, label)
        """
        raise NotImplementedError("use begin()/finish() inside processes")

    def begin(self) -> float:
        """Start-of-interval timestamp."""
        return self.env.now

    def finish(self, started_at: float, lane: str, category: TraceCategory,
               label: str = "") -> float:
        """Close an interval opened with :meth:`begin`; returns duration."""
        end = self.env.now
        self.record(lane, category, started_at, end, label)
        return end - started_at

    # -- queries ------------------------------------------------------------

    def lanes(self) -> list[str]:
        return sorted({ev.lane for ev in self.events})

    def events_for(self, lane: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.lane == lane]

    def total_time(self, category: TraceCategory,
                   lane: str | None = None) -> float:
        return sum(ev.duration for ev in self.events
                   if ev.category is category
                   and (lane is None or ev.lane == lane))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
