"""HBM occupancy timeline: how full the fast tier is over a run.

The paper's IO scheduler "keeps track of the HBM memory in use out of the
total 16GB"; this module renders that ledger over time — the one-line
answer to "was HBM actually full?" when a strategy underperforms.
"""

from __future__ import annotations

import typing as _t

from repro.units import format_size, format_time

__all__ = ["occupancy_stats", "render_occupancy"]

#: sparkline glyphs, empty -> full
_GLYPHS = " .:-=+*#%@"


def occupancy_stats(log: _t.Sequence[tuple[float, int]],
                    capacity: int) -> dict[str, float]:
    """Peak/mean occupancy fractions from a ``(time, used)`` log.

    The mean is time-weighted over the span of the log.
    """
    if not log:
        return {"peak": 0.0, "mean": 0.0, "samples": 0}
    # every returned statistic is a *fraction of capacity*, including the
    # degenerate single-sample / zero-span cases (regression: a one-entry
    # log must not leak a raw byte count out as the mean)
    peak = max(used for _, used in log) / capacity
    if len(log) == 1:
        mean = log[0][1] / capacity
    else:
        area = 0.0
        for (t0, used), (t1, _next) in zip(log, log[1:]):
            area += used * (t1 - t0)
        span = log[-1][0] - log[0][0]
        mean = (area / span if span > 0 else log[-1][1]) / capacity
    return {"peak": peak, "mean": mean, "samples": len(log)}


def render_occupancy(log: _t.Sequence[tuple[float, int]], capacity: int,
                     *, width: int = 80) -> str:
    """One-line sparkline of HBM usage over the logged window."""
    if not log:
        return "(no occupancy samples)"
    start, end = log[0][0], log[-1][0]
    span = max(end - start, 1e-12)
    buckets: list[int] = [0] * width
    counts: list[int] = [0] * width
    for when, used in log:
        b = min(int((when - start) / span * width), width - 1)
        buckets[b] += used
        counts[b] += 1
    last = 0
    cells = []
    for total, n in zip(buckets, counts):
        if n:
            last = total // n
        level = min(int(last / capacity * (len(_GLYPHS) - 1)),
                    len(_GLYPHS) - 1)
        cells.append(_GLYPHS[level])
    stats = occupancy_stats(log, capacity)
    return (f"hbm |{''.join(cells)}| "
            f"peak={stats['peak']:.0%} mean={stats['mean']:.0%} "
            f"({format_time(start)}..{format_time(end)}, "
            f"cap {format_size(capacity)})")
