"""ASCII rendering of timelines — terminal-friendly Projections.

``render_timeline`` draws one character row per lane; each column is a time
bucket coloured by the dominant category in that bucket:

* ``#`` execute, ``f`` sync fetch, ``e`` evict, ``F``/``E`` IO-thread
  fetch/evict, ``l`` lock wait, ``s`` scheduling, ``.`` idle.

``render_usage_bars`` draws per-lane utilisation bars (the summary view).
"""

from __future__ import annotations

import typing as _t

from repro.trace.events import TraceCategory
from repro.trace.projections import ProjectionsReport
from repro.trace.tracer import Tracer
from repro.units import format_time

__all__ = ["render_timeline", "render_usage_bars"]

_GLYPHS = {
    TraceCategory.EXECUTE: "#",
    TraceCategory.PREPROCESS_FETCH: "f",
    TraceCategory.POSTPROCESS_EVICT: "e",
    TraceCategory.IO_FETCH: "F",
    TraceCategory.IO_EVICT: "E",
    TraceCategory.LOCK_WAIT: "l",
    TraceCategory.SCHEDULING: "s",
}

IDLE_GLYPH = "."


def render_timeline(tracer: Tracer, *, width: int = 100,
                    start: float = 0.0, end: float | None = None,
                    lanes: _t.Sequence[str] | None = None) -> str:
    """Render lane rows over ``width`` time buckets."""
    if end is None:
        end = max((ev.end for ev in tracer.events), default=start)
    span = end - start
    lane_names = list(lanes) if lanes is not None else tracer.lanes()
    if span <= 0 or not lane_names:
        return "(empty timeline)"
    bucket = span / width
    lines = [f"timeline {format_time(start)} .. {format_time(end)} "
             f"({format_time(bucket)}/char)"]
    name_width = max(len(n) for n in lane_names)
    for lane in lane_names:
        # For each bucket pick the category covering the most time in it.
        coverage = [dict() for _ in range(width)]  # type: list[dict]
        for ev in tracer.events_for(lane):
            lo = max(ev.start, start)
            hi = min(ev.end, end)
            if hi <= lo:
                continue
            first = int((lo - start) / bucket)
            last = min(int((hi - start) / bucket), width - 1)
            for b in range(first, last + 1):
                b_lo = start + b * bucket
                b_hi = b_lo + bucket
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    cov = coverage[b]
                    cov[ev.category] = cov.get(ev.category, 0.0) + overlap
        row = []
        for cov in coverage:
            if not cov:
                row.append(IDLE_GLYPH)
            else:
                top = max(cov, key=lambda c: cov[c])
                row.append(_GLYPHS[top])
        lines.append(f"{lane:<{name_width}} |{''.join(row)}|")
    legend = "  ".join(f"{g}={c.value}" for c, g in _GLYPHS.items())
    lines.append(f"legend: {legend}  {IDLE_GLYPH}=idle")
    return "\n".join(lines)


def render_usage_bars(report: ProjectionsReport, *, width: int = 50) -> str:
    """Per-lane stacked usage bars: ``#`` execute, ``+`` overhead+IO, ``.`` idle."""
    lines = [f"window: {format_time(report.window)}"]
    names = sorted(report.lanes)
    if not names:
        return "(no lanes)"
    name_width = max(len(n) for n in names)
    for name in names:
        tl = report.lanes[name]
        if tl.window <= 0:
            continue
        exec_cols = int(round(width * tl.execute / tl.window))
        over_cols = int(round(width * (tl.overhead + tl.io_fetch + tl.io_evict)
                              / tl.window))
        exec_cols = min(exec_cols, width)
        over_cols = min(over_cols, width - exec_cols)
        idle_cols = width - exec_cols - over_cols
        bar = "#" * exec_cols + "+" * over_cols + "." * idle_cols
        lines.append(f"{name:<{name_width}} |{bar}| "
                     f"util={tl.utilization:5.1%} wait={tl.wait_fraction:5.1%}")
    lines.append("legend: #=execute  +=overhead/io  .=idle")
    return "\n".join(lines)
