"""Projections-style tracing and timeline analysis.

The paper uses Projections (the Charm++ performance visualiser) to show
where PEs spend their time — Figure 5 (wait time under single vs multiple
IO threads) and Figure 6 (synchronous fetch overhead vs asynchronous).
This package records the same information from the simulation: typed,
per-PE time intervals, aggregated into utilisation/wait breakdowns, an
ASCII timeline renderer, and JSON/CSV export.
"""

from repro.trace.events import TraceCategory, TraceEvent
from repro.trace.tracer import Tracer
from repro.trace.projections import PETimeline, ProjectionsReport, build_report
from repro.trace.render import render_timeline, render_usage_bars
from repro.trace.export import to_csv, to_json
from repro.trace.occupancy import occupancy_stats, render_occupancy

__all__ = [
    "TraceCategory", "TraceEvent",
    "Tracer",
    "PETimeline", "ProjectionsReport", "build_report",
    "render_timeline", "render_usage_bars",
    "to_csv", "to_json",
    "occupancy_stats", "render_occupancy",
]
