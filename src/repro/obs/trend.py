"""BENCH trend dashboard: history append + sparkline page.

Every PR leaves ``BENCH_<name>.json`` records at the repository root
(see :mod:`repro.bench.regression`); each file is a snapshot that the
next commit overwrites.  ``repro trend append`` folds the current
snapshots into one ``bench_history.jsonl`` line keyed by commit, and
``repro trend render`` turns the accumulated lines into a standalone
HTML page of sparklines — the perf trajectory ROADMAP asks every PR to
leave behind, readable without checking out old commits.

History lines are append-only JSON objects::

    {"commit": "<sha>", "created": "<max created of the BENCH files>",
     "benches": {"simcore": {...BENCH_simcore.json...}, ...}}

``created`` is derived from the BENCH files, never from the runtime
clock, so appending and rendering are deterministic given the inputs
(and re-appending the same commit is a no-op — CI re-runs stay
idempotent).
"""

from __future__ import annotations

import json
import typing as _t
from pathlib import Path

from repro.bench.regression import repo_root
from repro.obs import html as _h

__all__ = ["DEFAULT_TREND_METRICS", "collect_bench_files", "append_history",
           "load_history", "render_trend_html"]

#: dotted paths (bench.scenario.metric) plotted by default, with labels
DEFAULT_TREND_METRICS: tuple[tuple[str, str], ...] = (
    ("simcore.event_churn.ops_per_s", "sim-core event churn (ops/s)"),
    ("simcore.contention_64pe.speedup", "incremental-solve speedup (x)"),
    ("simcore.steady_phases.speedup", "solver memo speedup (x)"),
    ("leaderboard.tiny_sweep.cells_per_s",
     "leaderboard sweep throughput (cells/s)"),
    ("exec.fig2_tiny_sweep.warm_cache_x", "exec warm-cache speedup (x)"),
    ("metrics.stencil_1gib_multi_io.disabled_x",
     "metrics hooks disabled overhead (x)"),
    ("metrics.stencil_1gib_multi_io.enabled_x",
     "metrics session enabled overhead (x)"),
    ("race.stencil_1gib_multi_io.disabled_x",
     "racesan hooks disabled overhead (x)"),
    ("obs.stencil_1gib_multi_io.disabled_x",
     "span tracer disabled overhead (x)"),
    ("obs.stencil_1gib_multi_io.enabled_x",
     "span tracer enabled overhead (x)"),
    ("lint.full_tree.files_per_s", "bwlint throughput (files/s)"),
)


def history_path(directory: "Path | None" = None) -> Path:
    base = directory if directory is not None else repo_root()
    return base / "bench_history.jsonl"


def collect_bench_files(directory: "Path | None" = None) -> dict[str, dict]:
    """Load every ``BENCH_*.json`` at the repo root, keyed by bench name."""
    base = directory if directory is not None else repo_root()
    benches: dict[str, dict] = {}
    for path in sorted(base.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(data, dict) and "metrics" in data:
            benches[data.get("bench", path.stem[len("BENCH_"):])] = data
    return benches


def load_history(path: "Path | None" = None) -> list[dict]:
    """Parse history lines, oldest first; tolerates a trailing junk line."""
    target = path if path is not None else history_path()
    records: list[dict] = []
    try:
        text = target.read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "benches" in record:
            records.append(record)
    return records


def append_history(commit: str, *, directory: "Path | None" = None,
                   path: "Path | None" = None) -> dict | None:
    """Append one history record for ``commit`` from the current BENCH files.

    Returns the record written, or None when the commit is already
    recorded (idempotent re-runs) or no BENCH files exist.
    """
    benches = collect_bench_files(directory)
    if not benches:
        return None
    target = path if path is not None else history_path(directory)
    if any(record.get("commit") == commit
           for record in load_history(target)):
        return None
    created = max((bench.get("created", "") for bench in benches.values()),
                  default="")
    record = {"commit": commit, "created": created, "benches": benches}
    with target.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def _lookup(record: _t.Mapping, dotted: str) -> float | None:
    bench, scenario, metric = dotted.split(".", 2)
    try:
        value = record["benches"][bench]["metrics"][scenario][metric]
    except (KeyError, TypeError):
        return None
    return float(value) if isinstance(value, (int, float)) else None


def render_trend_html(records: _t.Sequence[_t.Mapping], *,
                      metrics: _t.Sequence[tuple[str, str]] =
                      DEFAULT_TREND_METRICS) -> str:
    """Sparkline-per-metric page over the history records (oldest first)."""
    rows = []
    for dotted, label in metrics:
        points = [(record.get("commit", "?"), _lookup(record, dotted))
                  for record in records]
        known = [(commit, value) for commit, value in points
                 if value is not None]
        if not known:
            continue
        values = [value for _commit, value in known]
        first, last = values[0], values[-1]
        delta = (last / first - 1.0) * 100 if first else 0.0
        arrow = "▲" if delta > 0.5 else ("▼" if delta < -0.5 else "—")
        rows.append(
            "<tr>"
            f'<td class="x">{_h.esc(label)}<br>'
            f'<span class="note">{_h.esc(dotted)}</span></td>'
            f"<td>{_h.sparkline(values)}</td>"
            f"<td>{_h.esc(_h.fmt(last))}</td>"
            f"<td>{_h.esc(arrow)} {delta:+.1f}%</td>"
            f"<td>{len(known)}</td>"
            f'<td class="x"><span class="note">'
            f"{_h.esc(known[-1][0][:12])}</span></td>"
            "</tr>")
    if rows:
        body = ('<table><tr><th class="x">metric</th><th>trajectory</th>'
                "<th>latest</th><th>vs first</th><th>points</th>"
                '<th class="x">last commit</th></tr>'
                + "".join(rows) + "</table>")
    else:
        body = "<p>No bench history yet.</p>"
    subtitle = (f"{len(records)} recorded commit(s); wall-clock metrics are "
                "machine-dependent — read the ratios, not the absolutes")
    return _h.page("repro bench trend", body, subtitle=subtitle)
