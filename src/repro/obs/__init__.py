"""``repro.obs`` — causal observability over the runtime's hook slots.

Four layers, each consuming the one below:

* :mod:`repro.obs.spans` — :class:`SpanTracer` builds a causal span DAG
  from the obs hook slot (execute/fetch/evict/queue-op call sites) plus
  the race hook slot's ordering sources (the same happens-before edges
  racesan derives its vector clocks from);
* :mod:`repro.obs.critpath` — :func:`critical_path` walks a finished
  run's DAG and decomposes the makespan into
  compute/fetch/evict/lock-wait/scheduling, conservatively (the buckets
  telescope to exactly the makespan);
* :mod:`repro.obs.report` — the replicate experiment suite behind
  ``repro report`` (N seeded schedule replicates, mean ± 95% CI, Welch
  tests vs a baseline series, one self-contained HTML file);
* :mod:`repro.obs.trend` — the ``bench_history.jsonl`` append +
  sparkline dashboard behind ``repro trend``.

Only :mod:`repro.obs.hooks` is imported by hot-path modules; everything
else loads lazily so observability costs one ``is not None`` test per
call site unless a tracer is installed.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "Span", "SpanTracer",
    "BUCKETS", "Chain", "CritPathReport", "PathStep", "critical_path",
    "Sample", "Welch", "summarize", "welch",
    "SweepFigure", "replicate_specs", "assemble_sweep",
    "render_report_html",
    "append_history", "collect_bench_files", "load_history",
    "render_trend_html",
]

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.critpath import (BUCKETS, Chain, CritPathReport,
                                    PathStep, critical_path)
    from repro.obs.report import (SweepFigure, assemble_sweep,
                                  render_report_html, replicate_specs)
    from repro.obs.spans import Span, SpanTracer
    from repro.obs.stats import Sample, Welch, summarize, welch
    from repro.obs.trend import (append_history, collect_bench_files,
                                 load_history, render_trend_html)

#: lazy attribute -> defining submodule (keeps hook-site imports cheap)
_LAZY = {
    "Span": "repro.obs.spans",
    "SpanTracer": "repro.obs.spans",
    "BUCKETS": "repro.obs.critpath",
    "Chain": "repro.obs.critpath",
    "CritPathReport": "repro.obs.critpath",
    "PathStep": "repro.obs.critpath",
    "critical_path": "repro.obs.critpath",
    "Sample": "repro.obs.stats",
    "Welch": "repro.obs.stats",
    "summarize": "repro.obs.stats",
    "welch": "repro.obs.stats",
    "SweepFigure": "repro.obs.report",
    "replicate_specs": "repro.obs.report",
    "assemble_sweep": "repro.obs.report",
    "render_report_html": "repro.obs.report",
    "append_history": "repro.obs.trend",
    "collect_bench_files": "repro.obs.trend",
    "load_history": "repro.obs.trend",
    "render_trend_html": "repro.obs.trend",
}


def __getattr__(name: str) -> _t.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
