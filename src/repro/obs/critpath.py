"""Critical-path profiling over a finished run's span DAG.

:func:`critical_path` walks backward from the last-ending span,
attributing every instant of the makespan to exactly one span (or to a
*scheduling gap* when nothing on the path covers it).  At each step the
predecessor is whichever candidate — a causal parent or the previous
span on the current lane — covers the latest instant before the current
frontier; ties resolve deterministically by (coverage, start, lane,
sid), so the same run always yields the same path.

The decomposition is **conservative by construction**: the per-bucket
contributions telescope to exactly ``end - start`` (the quantitative
replacement for eyeballing the "red portion" of the paper's Figures
5–6).  Buckets::

    compute     EXECUTE                       (entry-method kernels)
    fetch       IO_FETCH, PREPROCESS_FETCH    (DDR -> HBM moves)
    evict       IO_EVICT, POSTPROCESS_EVICT   (HBM -> DDR moves)
    lock_wait   LOCK_WAIT
    scheduling  SCHEDULING (queue-lock charges) plus every gap the walk
                cannot attribute to a span — run-queue delays, idle waits

A *chain* is a maximal gap-free stretch of the path: consecutive spans
each enabled by the one before it.  The top-K longest chains name the
entry methods and blocks on the path — the first places to attack when
a strategy underperforms.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing as _t

from repro.trace.events import TraceCategory
from repro.units import format_time

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Span

__all__ = ["BUCKETS", "PathStep", "Chain", "CritPathReport",
           "critical_path"]

#: decomposition buckets, in render order
BUCKETS = ("compute", "fetch", "evict", "lock_wait", "scheduling")

_BUCKET_OF = {
    TraceCategory.EXECUTE: "compute",
    TraceCategory.IO_FETCH: "fetch",
    TraceCategory.PREPROCESS_FETCH: "fetch",
    TraceCategory.IO_EVICT: "evict",
    TraceCategory.POSTPROCESS_EVICT: "evict",
    TraceCategory.LOCK_WAIT: "lock_wait",
    TraceCategory.SCHEDULING: "scheduling",
}


@dataclasses.dataclass(slots=True)
class PathStep:
    """One attributed stretch of the critical path (``span=None``: gap)."""

    span: "Span | None"
    lane: str
    bucket: str
    begin: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.begin

    @property
    def label(self) -> str:
        if self.span is None:
            return "(wait)"
        return self.span.label or self.span.category.value


@dataclasses.dataclass(slots=True)
class Chain:
    """A maximal gap-free causal stretch of the path, earliest first."""

    steps: list[PathStep]

    @property
    def duration(self) -> float:
        return sum(step.duration for step in self.steps)

    def render(self, *, max_labels: int = 6) -> str:
        labels = [step.label for step in self.steps]
        shown = labels[:max_labels]
        tail = f" … (+{len(labels) - max_labels} more)" \
            if len(labels) > max_labels else ""
        lanes = sorted({step.lane for step in self.steps})
        return (f"{format_time(self.duration)} on {','.join(lanes)}: "
                + " -> ".join(shown) + tail)


@dataclasses.dataclass
class CritPathReport:
    """Makespan decomposition along one critical path."""

    start: float
    end: float
    #: bucket -> attributed seconds; sums to ``end - start``
    contributions: dict[str, float]
    #: lane -> bucket -> attributed seconds (gaps charge the waiting lane)
    by_lane: dict[str, dict[str, float]]
    #: the full path, earliest step first
    steps: list[PathStep]
    #: gap-free stretches, longest first
    chains: list[Chain]

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def share(self, bucket: str) -> float:
        return self.contributions.get(bucket, 0.0) / self.makespan \
            if self.makespan > 0 else 0.0

    def render(self, *, top_chains: int = 5, title: str = "") -> str:
        head = f"== critical path{': ' + title if title else ''} =="
        lines = [head,
                 f"   makespan {format_time(self.makespan)} "
                 f"({len(self.steps)} step(s) on the path)"]
        for bucket in BUCKETS:
            value = self.contributions.get(bucket, 0.0)
            lines.append(f"   {bucket.replace('_', '-'):10s} "
                         f"{format_time(value):>12s}  {self.share(bucket):6.1%}")
        if self.by_lane:
            lines.append("-- per-lane contributions "
                         "(fetch = ddr->hbm, evict = hbm->ddr) --")
            for lane in sorted(self.by_lane):
                row = self.by_lane[lane]
                cells = "  ".join(
                    f"{bucket.replace('_', '-')}={format_time(row[bucket])}"
                    for bucket in BUCKETS if row.get(bucket, 0.0) > 0)
                lines.append(f"   {lane:6s} {cells}")
        shown = self.chains[:top_chains]
        if shown:
            lines.append(f"-- top {len(shown)} longest chains --")
            for i, chain in enumerate(shown, 1):
                lines.append(f"   {i}. {chain.render()}")
        return "\n".join(lines)


def _empty_report(start: float, end: float) -> CritPathReport:
    return CritPathReport(start, end,
                          {bucket: 0.0 for bucket in BUCKETS}, {}, [], [])


def critical_path(spans: "_t.Sequence[Span]", *,
                  start: float | None = None,
                  end: float | None = None) -> CritPathReport:
    """Walk the span DAG backward and decompose ``[start, end]``.

    Defaults to the envelope of the recorded spans; pass an explicit
    window to profile one phase (e.g. from the app's measured run start).
    """
    if not spans:
        return _empty_report(start or 0.0, end or 0.0)
    t_end = max(s.end for s in spans) if end is None else end
    t_start = min(s.start for s in spans) if start is None else start
    if t_end <= t_start:
        return _empty_report(t_start, t_end)

    by_sid = {span.sid: span for span in spans}
    lane_spans: dict[str, list[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.end, s.sid)):
        lane_spans.setdefault(span.lane, []).append(span)
    lane_starts = {lane: [s.start for s in row]
                   for lane, row in lane_spans.items()}

    def lane_prev(lane: str, t: float, exclude: "Span") -> "Span | None":
        """Latest span on ``lane`` starting before ``t`` (not ``exclude``)."""
        row = lane_spans.get(lane)
        if not row:
            return None
        i = bisect.bisect_left(lane_starts[lane], t)
        while i > 0:
            i -= 1
            if row[i] is not exclude:
                return row[i]
        return None

    def coverage_key(span: "Span", t: float) -> tuple:
        return (min(span.end, t), span.start, span.lane, span.sid)

    candidates = [s for s in spans if s.start < t_end]
    if not candidates:
        report = _empty_report(t_start, t_end)
        report.contributions["scheduling"] = t_end - t_start
        return report
    cur: "Span | None" = max(candidates, key=lambda s: coverage_key(s, t_end))

    contributions = {bucket: 0.0 for bucket in BUCKETS}
    by_lane: dict[str, dict[str, float]] = {}
    steps: list[PathStep] = []

    def charge(lane: str, bucket: str, begin: float, stop: float,
               span: "Span | None") -> None:
        contributions[bucket] += stop - begin
        row = by_lane.setdefault(lane, dict.fromkeys(BUCKETS, 0.0))
        row[bucket] += stop - begin
        steps.append(PathStep(span, lane, bucket, begin, stop))

    t = t_end
    head_cover = min(cur.end, t_end)
    if head_cover < t_end:    # explicit end beyond the last span
        charge(cur.lane, "scheduling", head_cover, t_end, None)
        t = head_cover
    while cur is not None and t > t_start:
        top = min(cur.end, t)
        bottom = max(cur.start, t_start)
        if top > bottom:
            charge(cur.lane, _BUCKET_OF[cur.category], bottom, top, cur)
            t = bottom
        if t <= t_start:
            break
        cands: list[Span] = []
        for cause in cur.causes:
            parent = by_sid.get(cause)
            if parent is not None and parent.start < t:
                cands.append(parent)
        prev = lane_prev(cur.lane, t, cur)
        if prev is not None:
            cands.append(prev)
        if not cands:
            charge(cur.lane, "scheduling", t_start, t, None)
            t = t_start
            break
        nxt = max(cands, key=lambda s: coverage_key(s, t))
        cover = min(nxt.end, t)
        if cover < t:
            charge(cur.lane, "scheduling", cover, t, None)
            t = cover
        cur = nxt

    steps.reverse()
    chains: list[Chain] = []
    run: list[PathStep] = []
    for step in steps:
        if step.span is None:
            if run:
                chains.append(Chain(run))
            run = []
        else:
            run.append(step)
    if run:
        chains.append(Chain(run))
    chains.sort(key=lambda c: (-c.duration,
                               c.steps[0].begin if c.steps else 0.0))
    return CritPathReport(t_start, t_end, contributions, by_lane,
                          steps, chains)
