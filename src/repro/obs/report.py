"""Self-reporting experiment suite: replicates, stats, one HTML file.

``repro report`` runs any :class:`~repro.bench.harness.FigurePlan` N
times — replicate 0 is the plan's own specs verbatim (sharing cache
entries with plain ``repro experiments`` runs), replicate r > 0 re-runs
every spec with ``params["replicate"] = r``, which the executors map to
a seeded same-instant tie-breaker.  Each replicate is therefore a
legitimate alternative schedule of the same workload, and the spread
across replicates measures schedule sensitivity, not noise.

:func:`replicate_specs` enumerates the fan-out (replicate-major, so the
engine's cost-ordered dispatch still sees whole plans together);
:func:`assemble_sweep` folds the flat result list back through each
plan's ``assemble`` per replicate and aggregates every series cell into
a :class:`~repro.obs.stats.Sample` plus a Welch t-test against a named
baseline series.  :func:`render_report_html` emits one self-contained
HTML file (inline SVG + tables, no external assets, no timestamps) —
re-running against a warm cache reproduces it byte for byte.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.obs import html as _h
from repro.obs.stats import Sample, Welch, summarize, welch

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.bench.harness import FigurePlan
    from repro.exec.spec import RunSpec

__all__ = ["SweepFigure", "replicate_specs", "assemble_sweep",
           "render_report_html"]


@dataclasses.dataclass
class SweepFigure:
    """One figure's replicate-aggregated series."""

    figure: str
    description: str
    unit: str
    replicates: int
    #: baseline series label the t-tests compare against (None: no tests)
    baseline: str | None
    #: x label -> series label -> per-replicate values, replicate order
    values: dict[str, dict[str, list[float]]]
    #: x label -> series label -> aggregate
    stats: dict[str, dict[str, Sample]]
    #: x label -> series label -> Welch vs baseline (baseline maps to None)
    tests: dict[str, dict[str, Welch | None]]

    def series_names(self) -> list[str]:
        names: list[str] = []
        for row in self.stats.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def render(self) -> str:
        """Plain-text summary table for the CLI."""
        lines = [f"== {self.figure}: {self.description} ==",
                 f"   unit={self.unit}  replicates={self.replicates}"
                 + (f"  baseline={self.baseline}" if self.baseline else "")]
        for x, row in self.stats.items():
            cells = []
            for label, sample in row.items():
                test = self.tests.get(x, {}).get(label)
                mark = test.marker() if test is not None else ""
                ci = f" ±{_h.fmt(sample.ci95)}" if sample.n > 1 else ""
                cells.append(f"{label}={_h.fmt(sample.mean)}{ci}{mark}")
            lines.append(f"   {x:12s} " + "  ".join(cells))
        if self.baseline:
            lines.append("   (* = significant vs baseline at 95%, Welch)")
        return "\n".join(lines)


def replicate_specs(plans: "_t.Sequence[FigurePlan]",
                    replicates: int) -> "list[RunSpec]":
    """Enumerate every run of an N-replicate sweep, replicate-major.

    Replicate 0 keeps each spec's original params — identical identity,
    so its cache entries are shared with non-replicated sweeps of the
    same figures.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    specs: "list[RunSpec]" = []
    for r in range(replicates):
        for plan in plans:
            for spec in plan.specs:
                if r == 0:
                    specs.append(spec)
                else:
                    specs.append(dataclasses.replace(
                        spec, params={**dict(spec.params), "replicate": r},
                        label=f"{spec.label or spec.kind} [r{r}]"))
    return specs


def assemble_sweep(plans: "_t.Sequence[FigurePlan]", replicates: int,
                   results: _t.Sequence[_t.Mapping[str, _t.Any]], *,
                   baseline: str | None = None) -> list[SweepFigure]:
    """Fold flat replicate-major results into per-figure aggregates.

    ``results`` must parallel :func:`replicate_specs` order.  ``baseline``
    names a *series label* (e.g. ``"Single IO thread"``); series that
    carry it get a Welch test against it per x point.
    """
    stride = sum(len(plan.specs) for plan in plans)
    if len(results) != stride * replicates:
        raise ValueError(f"expected {stride * replicates} results, "
                         f"got {len(results)}")
    figures: list[SweepFigure] = []
    offset = 0
    for plan in plans:
        width = len(plan.specs)
        values: dict[str, dict[str, list[float]]] = {}
        first = None
        for r in range(replicates):
            lo = r * stride + offset
            exp = plan.assemble(results[lo:lo + width])
            if first is None:
                first = exp
            for x, row in exp.series.items():
                cell = values.setdefault(x, {})
                for label, value in row.items():
                    cell.setdefault(label, []).append(float(value))
        offset += width
        assert first is not None
        stats = {x: {label: summarize(vals) for label, vals in row.items()}
                 for x, row in values.items()}
        base = baseline if any(baseline in row for row in values.values()) \
            else None
        tests: dict[str, dict[str, Welch | None]] = {}
        for x, row in values.items():
            cell: dict[str, Welch | None] = {}
            for label, vals in row.items():
                if base is not None and label != base and base in row:
                    cell[label] = welch(vals, row[base])
                else:
                    cell[label] = None
            tests[x] = cell
        figures.append(SweepFigure(
            figure=first.figure, description=first.description,
            unit=first.unit, replicates=replicates, baseline=base,
            values=values, stats=stats, tests=tests))
    return figures


def _figure_section(fig: SweepFigure) -> str:
    xs = list(fig.stats)
    labels = fig.series_names()

    def value_of(x: str, label: str) -> tuple[float, float] | None:
        sample = fig.stats.get(x, {}).get(label)
        return None if sample is None else (sample.mean, sample.ci95)

    head = "".join(f"<th>{_h.esc(label)}</th>" for label in labels)
    rows = []
    for x in xs:
        cells = []
        for label in labels:
            sample = fig.stats[x].get(label)
            if sample is None:
                cells.append("<td>—</td>")
                continue
            test = fig.tests.get(x, {}).get(label)
            mark = '<span class="sig">*</span>' \
                if test is not None and test.significant else ""
            ci = f" ± {_h.esc(_h.fmt(sample.ci95))}" if sample.n > 1 else ""
            cells.append(f"<td>{_h.esc(_h.fmt(sample.mean))}{ci}{mark}</td>")
        rows.append(f'<tr><td class="x">{_h.esc(x)}</td>'
                    + "".join(cells) + "</tr>")
    legend = (f'<p class="note"><span class="sig">*</span> significant vs '
              f"baseline <b>{_h.esc(fig.baseline)}</b> at 95% "
              "(Welch&#8217;s t-test)</p>") if fig.baseline else ""
    return (f"<h2>{_h.esc(fig.figure)} — {_h.esc(fig.description)}</h2>"
            f'<p class="note">unit: {_h.esc(fig.unit)} · '
            f"replicates: {fig.replicates} · mean ± 95% CI</p>"
            + _h.bar_chart(xs, labels, value_of, unit=fig.unit)
            + f'<table><tr><th class="x"></th>{head}</tr>'
            + "".join(rows) + "</table>" + legend)


def render_report_html(figures: _t.Sequence[SweepFigure], *,
                       title: str = "repro experiment report") -> str:
    """One self-contained HTML page for a whole sweep."""
    reps = max((fig.replicates for fig in figures), default=0)
    subtitle = (f"{len(figures)} figure(s), {reps} seeded schedule "
                "replicate(s) per configuration; error bars are 95% "
                "confidence intervals across replicates")
    body = "".join(_figure_section(fig) for fig in figures)
    return _h.page(title, body, subtitle=subtitle)
