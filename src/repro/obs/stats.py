"""Small-sample statistics for the replicate suite (stdlib only).

The experiment suite runs N seeded replicates per configuration and
reports mean ± 95% confidence interval, plus a Welch two-sample t-test
against a named baseline series.  SciPy is not a dependency, so the
t critical values come from a fixed two-sided 95% table (df 1..30, then
the normal limit) — the same numbers every intro-stats appendix prints.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

__all__ = ["Sample", "summarize", "t_critical", "welch"]

#: two-sided 95% Student-t critical values, df 1..30
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical(df: float) -> float:
    """Two-sided 95% t critical value; normal limit past df 30."""
    if df < 1:
        return _T95[0]
    if df >= 31:
        return 1.960
    return _T95[int(df) - 1]


@dataclasses.dataclass(slots=True)
class Sample:
    """Mean/CI summary of one series of replicate values."""

    n: int
    mean: float
    std: float        # sample standard deviation (ddof=1); 0 when n < 2
    ci95: float       # 95% CI half-width; 0 when n < 2

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95


def summarize(values: _t.Sequence[float]) -> Sample:
    """Mean, sample std and 95% CI half-width of ``values``."""
    n = len(values)
    if n == 0:
        return Sample(0, 0.0, 0.0, 0.0)
    mean = math.fsum(values) / n
    if n < 2:
        return Sample(n, mean, 0.0, 0.0)
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    ci95 = t_critical(n - 1) * std / math.sqrt(n)
    return Sample(n, mean, std, ci95)


@dataclasses.dataclass(slots=True)
class Welch:
    """Welch two-sample t-test result (unequal variances)."""

    t: float
    df: float
    significant: bool    # |t| exceeds the 95% critical value

    def marker(self) -> str:
        return "*" if self.significant else ""


def welch(a: _t.Sequence[float], b: _t.Sequence[float]) -> Welch | None:
    """Welch's t-test of ``a`` vs ``b``; None when either side is empty.

    Degenerate zero-variance sides: equal means test not-significant,
    different means test significant (the samples are deterministic).
    """
    sa, sb = summarize(a), summarize(b)
    if sa.n == 0 or sb.n == 0:
        return None
    va = (sa.std ** 2) / sa.n
    vb = (sb.std ** 2) / sb.n
    if va + vb == 0.0:
        same = math.isclose(sa.mean, sb.mean, rel_tol=1e-12, abs_tol=0.0) \
            or sa.mean == sb.mean
        return Welch(0.0 if same else math.inf,
                     float(max(sa.n + sb.n - 2, 1)), not same)
    t = (sa.mean - sb.mean) / math.sqrt(va + vb)
    # Welch–Satterthwaite effective degrees of freedom
    df_num = (va + vb) ** 2
    df_den = 0.0
    if sa.n > 1:
        df_den += va ** 2 / (sa.n - 1)
    if sb.n > 1:
        df_den += vb ** 2 / (sb.n - 1)
    df = df_num / df_den if df_den > 0 else float(max(sa.n + sb.n - 2, 1))
    return Welch(t, df, abs(t) > t_critical(df))
