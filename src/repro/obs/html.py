"""Self-contained HTML rendering for the report/trend pages.

Everything is inline — one ``<style>`` block, inline SVG charts, no
external assets, no scripts — so a sweep report is a single file that
opens anywhere and diffs cleanly.  Nothing here reads the clock: pages
are a pure function of their inputs, which is what makes warm-cache
re-runs byte-identical (the determinism contract ``repro report``
inherits from the exec cache).
"""

from __future__ import annotations

import html as _html
import typing as _t

__all__ = ["PALETTE", "page", "fmt", "bar_chart", "sparkline"]

#: colorblind-safe categorical palette (Tableau 10)
PALETTE = ("#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
           "#edc949", "#b07aa1", "#9c755f", "#bab0ab", "#ff9da7")

_STYLE = """
body { font: 14px/1.45 system-ui, sans-serif; color: #1a1a2e;
       margin: 2rem auto; max-width: 60rem; padding: 0 1rem; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #4e79a7; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
p.sub { color: #555; }
table { border-collapse: collapse; margin: 0.8rem 0; }
th, td { border: 1px solid #ccd; padding: 0.25rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; }
td.x, th.x { text-align: left; }
span.sig { color: #b00020; font-weight: bold; }
svg { display: block; margin: 0.5rem 0; }
.note { color: #666; font-size: 0.85rem; }
"""


def esc(text: _t.Any) -> str:
    return _html.escape(str(text), quote=True)


def fmt(value: float) -> str:
    """Deterministic compact number format for tables and axis labels."""
    if value != value:
        return "nan"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.4g}"


def page(title: str, body: str, *, subtitle: str = "") -> str:
    """Wrap ``body`` in the standalone page skeleton."""
    sub = f'<p class="sub">{esc(subtitle)}</p>' if subtitle else ""
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{esc(title)}</title><style>{_STYLE}</style></head>"
            f"<body>\n<h1>{esc(title)}</h1>{sub}\n{body}\n</body></html>\n")


def _ticks(top: float, n: int = 4) -> list[float]:
    return [top * i / n for i in range(n + 1)]


def bar_chart(xs: _t.Sequence[str], labels: _t.Sequence[str],
              value_of: _t.Callable[[str, str], tuple[float, float] | None],
              *, unit: str = "") -> str:
    """Grouped bar chart with CI whiskers as inline SVG.

    ``value_of(x, label)`` returns ``(mean, ci_half_width)`` or None for
    a missing cell.
    """
    bar_w, gap, left, top_m, plot_h, bottom = 22, 14, 56, 12, 170, 42
    group_w = bar_w * len(labels) + gap
    width = left + group_w * len(xs) + 16
    height = top_m + plot_h + bottom
    top = 0.0
    for x in xs:
        for label in labels:
            cell = value_of(x, label)
            if cell is not None:
                top = max(top, cell[0] + cell[1])
    if top <= 0:
        top = 1.0
    top *= 1.05

    def y_of(v: float) -> float:
        return top_m + plot_h * (1.0 - v / top)

    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" '
             'xmlns="http://www.w3.org/2000/svg" role="img">']
    for tick in _ticks(top):
        y = y_of(tick)
        parts.append(f'<line x1="{left}" y1="{y:.2f}" x2="{width - 8}" '
                     f'y2="{y:.2f}" stroke="#dde" stroke-width="1"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.2f}" '
                     'text-anchor="end" font-size="10" fill="#555">'
                     f'{esc(fmt(tick))}</text>')
    for gi, x in enumerate(xs):
        gx = left + gi * group_w
        for si, label in enumerate(labels):
            cell = value_of(x, label)
            if cell is None:
                continue
            mean, ci = cell
            bx = gx + si * bar_w
            by = y_of(mean)
            color = PALETTE[si % len(PALETTE)]
            parts.append(
                f'<rect x="{bx:.2f}" y="{by:.2f}" width="{bar_w - 3}" '
                f'height="{top_m + plot_h - by:.2f}" fill="{color}">'
                f'<title>{esc(label)} @ {esc(x)}: {esc(fmt(mean))}'
                f'{" ± " + fmt(ci) if ci else ""} {esc(unit)}</title></rect>')
            if ci > 0:
                cx = bx + (bar_w - 3) / 2
                y_lo, y_hi = y_of(max(mean - ci, 0.0)), y_of(mean + ci)
                parts.append(f'<line x1="{cx:.2f}" y1="{y_lo:.2f}" '
                             f'x2="{cx:.2f}" y2="{y_hi:.2f}" '
                             'stroke="#222" stroke-width="1.4"/>')
                for yy in (y_lo, y_hi):
                    parts.append(f'<line x1="{cx - 4:.2f}" y1="{yy:.2f}" '
                                 f'x2="{cx + 4:.2f}" y2="{yy:.2f}" '
                                 'stroke="#222" stroke-width="1.4"/>')
        parts.append(f'<text x="{gx + (group_w - gap) / 2:.2f}" '
                     f'y="{top_m + plot_h + 14}" text-anchor="middle" '
                     f'font-size="10" fill="#333">{esc(x)}</text>')
    legend_y = top_m + plot_h + 30
    lx = left
    for si, label in enumerate(labels):
        color = PALETTE[si % len(PALETTE)]
        parts.append(f'<rect x="{lx}" y="{legend_y - 9}" width="10" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{legend_y}" font-size="10" '
                     f'fill="#333">{esc(label)}</text>')
        lx += 14 + 7 * len(label) + 16
    baseline_y = top_m + plot_h
    parts.append(f'<line x1="{left}" y1="{baseline_y}" x2="{width - 8}" '
                 f'y2="{baseline_y}" stroke="#333" stroke-width="1"/>')
    parts.append("</svg>")
    return "".join(parts)


def sparkline(values: _t.Sequence[float], *, width: int = 220,
              height: int = 36) -> str:
    """One inline-SVG sparkline; dots mark first/last points."""
    if not values:
        return "<svg width=\"1\" height=\"1\"></svg>"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 4
    n = len(values)

    def pt(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        return x, y

    points = " ".join(f"{x:.2f},{y:.2f}"
                      for x, y in (pt(i, v) for i, v in enumerate(values)))
    x0, y0 = pt(0, values[0])
    x1, y1 = pt(n - 1, values[-1])
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" '
            'xmlns="http://www.w3.org/2000/svg">'
            f'<polyline points="{points}" fill="none" stroke="#4e79a7" '
            'stroke-width="1.6"/>'
            f'<circle cx="{x0:.2f}" cy="{y0:.2f}" r="2" fill="#bbb"/>'
            f'<circle cx="{x1:.2f}" cy="{y1:.2f}" r="2.4" fill="#e15759"/>'
            "</svg>")
