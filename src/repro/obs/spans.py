"""Causal span tracing: the span DAG behind the critical-path profiler.

A :class:`Span` is a closed interval on one lane (``pe3``, ``io1``) with
*causal parents*: the spans whose completion enabled it.  The tracer
builds the DAG from two hook streams:

* the **obs slot** (:mod:`repro.obs.hooks`) carries span begin/end
  notifications from the instrumented call sites — entry-method
  execution (:func:`repro.runtime.converse.deliver`), block fetch/evict
  (:class:`repro.core.strategies.base.Strategy`) and queue-lock charges
  (:meth:`repro.core.manager.OOCManager.charge_queue_op`);
* the **race slot** (:mod:`repro.race.hooks`) carries the same ordering
  sources racesan's vector clocks are built from — event
  schedule→callback, Store/wait-queue put→get handoffs, process resumes.
  The tracer threads a *source span id* along those edges instead of a
  clock, which is how a message put into a run queue remembers which
  execute span sent it, across any number of timeout/latency hops.

Causal edges recorded:

* ``send → execute``: a message enqueued while an execute span is open
  (directly or via scheduled events) parents the receiver's span;
* ``submit → fetch``: the first fetch an IO thread issues for a task is
  parented on the span that produced the task's message;
* ``fetch → execute``: an execute span is parented on the last fetch
  span of each of its dependence blocks (resident re-use included).

``parent`` is the primary (latest-enabling) cause; ``causes`` keeps the
full edge set for Perfetto flow arrows and the critical-path walk.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.obs import hooks as _oh
from repro.race import hooks as _rh
from repro.trace.events import TraceCategory

__all__ = ["Span", "SpanTracer"]


@dataclasses.dataclass(slots=True)
class Span:
    """One closed interval on one lane, with causal parents."""

    sid: int
    lane: str
    category: TraceCategory
    start: float
    end: float
    label: str = ""
    #: every causal parent span id (HB edges), insertion-ordered
    causes: tuple[int, ...] = ()
    #: the primary (latest-enabling) cause, or None for a root span
    parent: int | None = None
    #: OOC task id this span served, when known
    tid: int | None = None
    #: block name for fetch/evict spans
    block: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects :class:`Span` records and their causal edges.

    Install with :meth:`install` (both hook slots; shareable with racesan
    and simsan via :class:`repro.hooks.FanOut`), run the application,
    then :meth:`uninstall` and read :attr:`spans`.
    """

    def __init__(self, env: _t.Any = None):
        self.env = env
        self.spans: list[Span] = []
        self.by_sid: dict[int, Span] = {}
        self._next_sid = 0
        # -- causality state (racesan's ordering sources) ------------------
        self._ambient_actor: str | None = None
        self._actor_names: dict[int, str] = {}
        self._name_counts: dict[str, int] = {}
        #: id(event) -> source span id, snapshotted at schedule time
        self._event_src: dict[int, int] = {}
        #: source span of the event currently being processed
        self._event_snap: int | None = None
        #: actor name -> its currently-open execute span id
        self._open: dict[str, int] = {}
        #: actor name -> (sid, causes) of the open execute span
        self._pending_exec: dict[str, tuple[int, list[int]]] = {}
        #: id(queued item) -> source span id (put→get handoff edge)
        self._item_src: dict[int, int] = {}
        #: lane -> origin span id for the next fetch of the served task
        self._serve_origin: dict[str, int] = {}
        #: lane -> tid of the task the lane is currently serving
        self._lane_task: dict[str, int | None] = {}
        #: id(block) -> span id of the move that (last) made it resident
        self._block_fetch: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> "SpanTracer":
        _oh.install(self)
        _rh.install(self)
        return self

    def uninstall(self) -> None:
        _rh.uninstall(self)
        _oh.uninstall(self)

    # -- span construction -------------------------------------------------

    def _new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _add(self, sid: int, lane: str, category: TraceCategory,
             start: float, end: float, label: str,
             causes: _t.Sequence[int], *, tid: int | None = None,
             block: str = "") -> Span:
        unique: list[int] = []
        for cause in causes:
            if cause != sid and cause not in unique:
                unique.append(cause)
        # primary parent: the cause that finished (or will finish) last —
        # an open cause (sender still executing) outranks any closed one
        parent: int | None = None
        best = -1.0
        for cause in unique:
            done = self.by_sid.get(cause)
            if done is None:      # still open: latest by construction
                parent = cause
                break
            if done.end >= best:
                best, parent = done.end, cause
        span = Span(sid, lane, category, start, end, label,
                    tuple(unique), parent, tid, block)
        self.spans.append(span)
        self.by_sid[sid] = span
        return span

    # -- current causal source ---------------------------------------------

    def _ctx(self) -> int | None:
        actor = self._ambient_actor
        if actor is not None:
            return self._open.get(actor)
        return self._event_snap

    def _actor_for(self, process: _t.Any) -> str:
        key = id(process)
        name = self._actor_names.get(key)
        if name is None:
            base = getattr(process, "name", None) or "proc"
            count = self._name_counts.get(base, 0)
            self._name_counts[base] = count + 1
            name = base if count == 0 else f"{base}~{count}"
            self._actor_names[key] = name
        return name

    # -- race-slot hooks: the detector's ordering sources -------------------

    def on_scheduled(self, event: _t.Any) -> None:
        src = self._ctx()
        if src is not None:
            self._event_src[id(event)] = src

    def on_descheduled(self, event: _t.Any) -> None:
        self._event_src.pop(id(event), None)

    def on_processing(self, event: _t.Any) -> None:
        self._event_snap = self._event_src.pop(id(event), None)
        self._ambient_actor = None

    def on_resume(self, process: _t.Any, event: _t.Any) -> None:
        self._ambient_actor = self._actor_for(process)

    def on_handoff_put(self, item: _t.Any) -> None:
        src = self._ctx()
        if src is not None:
            self._item_src[id(item)] = src

    def on_handoff_get(self, item: _t.Any) -> None:
        pass    # edges are consumed at execute-begin / serve time

    def on_deliver(self, pe: _t.Any, message: _t.Any,
                   task: _t.Any) -> None:
        pass    # the obs-slot execute hooks carry richer context

    # -- obs-slot hooks: instrumented call sites ----------------------------

    def on_execute_begin(self, pe_id: int, message: _t.Any,
                         task: _t.Any, now: float) -> None:
        sid = self._new_sid()
        causes: list[int] = []
        src = self._item_src.pop(id(message), None)
        if src is not None:
            causes.append(src)
        if task is not None:
            for block in task.blocks:
                fetched = self._block_fetch.get(id(block))
                if fetched is not None:
                    causes.append(fetched)
        actor = f"converse-pe{pe_id}"
        self._open[actor] = sid
        self._pending_exec[actor] = (sid, causes)

    def on_execute_end(self, pe_id: int, message: _t.Any, task: _t.Any,
                       started: float, now: float, label: str) -> None:
        actor = f"converse-pe{pe_id}"
        pending = self._pending_exec.pop(actor, None)
        self._open.pop(actor, None)
        if pending is None:      # installed mid-run: no matching begin
            return
        sid, causes = pending
        self._add(sid, f"pe{pe_id}", TraceCategory.EXECUTE,
                  started, now, label, causes,
                  tid=None if task is None else task.tid)

    def on_serve(self, task: _t.Any, lane: str) -> None:
        self._lane_task[lane] = task.tid
        src = self._item_src.get(id(task.message))
        if src is not None:
            self._serve_origin[lane] = src

    def on_fetch(self, block: _t.Any, lane: str, category: TraceCategory,
                 started: float, now: float) -> None:
        causes: list[int] = []
        origin = self._serve_origin.pop(lane, None)
        if origin is not None:
            causes.append(origin)
        sid = self._new_sid()
        self._add(sid, lane, category, started, now,
                  f"fetch {block.name}", causes,
                  tid=self._lane_task.get(lane), block=block.name)
        self._block_fetch[id(block)] = sid

    def on_evict(self, block: _t.Any, lane: str, category: TraceCategory,
                 started: float, now: float, reason: str) -> None:
        sid = self._new_sid()
        self._add(sid, lane, category, started, now,
                  f"evict {block.name} [{reason}]", (),
                  tid=self._lane_task.get(lane), block=block.name)

    def on_queue_op(self, lane: str, started: float, now: float) -> None:
        self._add(self._new_sid(), lane, TraceCategory.SCHEDULING,
                  started, now, "queue-op", ())

    # -- queries ------------------------------------------------------------

    def lanes(self) -> list[str]:
        return sorted({span.lane for span in self.spans})

    def makespan(self) -> tuple[float, float]:
        """The ``(start, end)`` envelope of every recorded span."""
        if not self.spans:
            return (0.0, 0.0)
        return (min(s.start for s in self.spans),
                max(s.end for s in self.spans))

    def __len__(self) -> int:
        return len(self.spans)
