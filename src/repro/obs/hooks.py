"""Span-collector hook slot — the only obs module the runtime imports.

The runtime layer (converse delivery, strategy fetch/evict, manager
queue ops) publishes span begin/end notifications through this slot so
the causal span tracer (:class:`repro.obs.spans.SpanTracer`) can build
the span DAG.  Call sites guard every hook with::

    from repro.obs import hooks as _oh
    ...
    if _oh.collector is not None:
        _oh.collector.on_execute_end(...)

so the cost with no collector installed is one module-global load and an
``is not None`` test — measured in ``benchmarks/bench_obs.py`` and held
below the 1.05x disabled-overhead bar.  This module stays
dependency-light on purpose: it imports only :mod:`repro.hooks` (itself
dependency-free), never the rest of :mod:`repro.obs`, so the runtime
never pays for the tracer it is not using.
"""

from __future__ import annotations

import typing as _t

from repro.hooks import HookSlot

__all__ = ["collector", "install", "uninstall"]

#: the active span collector (a :class:`repro.obs.spans.SpanTracer`),
#: or None when span tracing is off — the default
collector: _t.Any = None

_slot = HookSlot(__name__, "collector", kind="span collector")


def install(obs: _t.Any) -> None:
    """Add ``obs`` to the collector slot (idempotent per observer)."""
    _slot.install(obs)


def uninstall(obs: _t.Any = None) -> None:
    """Remove ``obs`` from the slot; with ``None``, remove every collector."""
    _slot.uninstall(obs)
