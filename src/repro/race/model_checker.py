"""Static placement-state model checker (rules ``REP2xx``).

An AST pass over the placement-protocol classes — anything in the
transitive subclass closure of ``Strategy`` or ``DataMover`` (including
those roots themselves) — verifying that every code path respects the
legal ``INDDR → MOVING → INHBM`` (and reverse) transitions of
:class:`repro.mem.block.DataBlock`:

* **REP200** — ``x.state = BlockState.Y`` assignments: placement may only
  change through ``begin_move()``/``settle()``, never by raw assignment;
* **REP201** — ``settle(..., BlockState.MOVING)``: the transient state is
  entered only via ``begin_move()``;
* **REP202** — eviction (an ``evict_block(...)`` call, or a mover move
  whose destination mentions DDR) whose victim is not dominated by an
  ``in_use``/``pinned`` guard — either an enclosing ``if`` test or an
  earlier guard-clause ``if victim.in_use ...: raise`` in the same
  function;
* **REP203** — an exit path (``return``/``raise``, or function
  fall-through) after ``begin_move()`` with no ``settle()`` before it:
  the block would be stuck ``MOVING`` forever;
* **REP204** — a strategy method that calls the mover directly without
  ``begin_inflight()``: concurrent fetchers cannot join the move;
* **REP205** — a discarded ``fetch_task_blocks()`` result: the fetch may
  have failed, and making the task ready anyway runs it on non-resident
  blocks.

The dataflow is deliberately approximate (sibling order stands in for
dominance), tuned so the shipped strategies and mover check clean while
each seeded defect in ``tests/fixtures/racy_strategy.py`` is caught.
The pass runs automatically as part of :func:`repro.lint.check_source`,
and standalone via ``repro race --static``.
"""

from __future__ import annotations

import ast
import os
import typing as _t

from repro.lint.findings import Finding, LintReport
from repro.lint.rules import STATIC_RULES
from repro.lint.static_checker import iter_python_files

__all__ = ["check_tree", "check_source", "check_file", "check_paths",
           "default_targets"]

#: class names whose (transitive) subclasses own the placement protocol
MODEL_ROOTS = {"Strategy", "DataMover", "Mover"}

#: block attributes whose test in a guard protects an eviction victim
_GUARD_ATTRS = {"in_use", "pinned"}

#: statements that end a guard clause (make the guard a real gate)
_FLOW_BREAKS = (ast.Raise, ast.Return, ast.Continue, ast.Break)


def _finding(rule_id: str, message: str, file: str, line: int, *,
             chare: str = "", entry: str = "") -> Finding:
    spec = STATIC_RULES[rule_id]
    return Finding(rule=rule_id, severity=spec.severity, message=message,
                   file=file, line=line, chare=chare, entry=entry)


# -- scope discovery -----------------------------------------------------------


def _protocol_like(name: str | None, like: set[str]) -> bool:
    """A base opts its subclass in: an exact root/known name, or any
    cross-module subclass of a ``*Strategy``/``*Mover`` class (the closure
    is per-file, so ``RacyIOStrategy(SingleIOThreadStrategy)`` in a fixture
    must scope in without seeing ``single_io.py``)."""
    return name is not None and (name in like
                                 or name.endswith(("Strategy", "Mover")))


def _protocol_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes in the subclass closure of the protocol roots, roots included."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    like = set(MODEL_ROOTS)
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in like:
                continue
            for base in cls.bases:
                name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else None)
                if _protocol_like(name, like):
                    like.add(cls.name)
                    changed = True
                    break
    return [c for c in classes if c.name in like]


def _walk_shallow(func: ast.AST) -> _t.Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _parents(root: ast.AST) -> dict[ast.AST, ast.AST]:
    out: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            out[child] = node
    return out


# -- small matchers ------------------------------------------------------------


def _is_blockstate(node: ast.expr, member: str | None = None) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "BlockState"
            and (member is None or node.attr == member))


def _attr_call(node: ast.AST, attr: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr)


def _mover_call(node: ast.AST) -> bool:
    """``<expr>.mover.move(...)`` / ``.move_migrate_pages(...)``."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("move", "move_migrate_pages")
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "mover")


def _mentions_ddr(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "ddr" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "ddr" in sub.id.lower():
            return True
    return False


def _mentions_guard(test: ast.expr, name: str) -> bool:
    for sub in ast.walk(test):
        if (isinstance(sub, ast.Attribute) and sub.attr in _GUARD_ATTRS
                and isinstance(sub.value, ast.Name) and sub.value.id == name):
            return True
    return False


# -- per-rule passes -----------------------------------------------------------


def _check_state_assigns(cls: ast.ClassDef, file: str) -> list[Finding]:
    findings = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Attribute) and t.attr == "state"
                   for t in node.targets):
            continue
        if _is_blockstate(node.value):
            findings.append(_finding(
                "REP200",
                f"raw placement assignment .state = "
                f"BlockState.{node.value.attr}; use begin_move()/settle()",
                file, node.lineno, chare=cls.name))
    return findings


def _check_settle_literals(cls: ast.ClassDef, file: str) -> list[Finding]:
    findings = []
    for node in ast.walk(cls):
        if not _attr_call(node, "settle"):
            continue
        operands = list(node.args) + [kw.value for kw in node.keywords]
        if any(_is_blockstate(arg, "MOVING") for arg in operands):
            findings.append(_finding(
                "REP201",
                "settle(..., BlockState.MOVING): settle() must bind a "
                "concrete placement state", file, node.lineno,
                chare=cls.name))
    return findings


def _check_evictions(cls: ast.ClassDef, method: ast.FunctionDef,
                     file: str) -> list[Finding]:
    findings: list[Finding] = []
    parents = _parents(method)
    # guard clauses: `if victim.in_use ...: raise/return/...` earlier in
    # the method dominate everything after them (sibling-order approx.)
    guard_clauses: list[tuple[str, int]] = []
    for node in ast.walk(method):
        if not isinstance(node, ast.If):
            continue
        breaks = any(isinstance(sub, _FLOW_BREAKS)
                     for stmt in node.body for sub in ast.walk(stmt))
        if not breaks:
            continue
        for name_node in ast.walk(node.test):
            if isinstance(name_node, ast.Name) \
                    and _mentions_guard(node.test, name_node.id):
                guard_clauses.append((name_node.id, node.lineno))
    for node in ast.walk(method):
        victim: ast.expr | None = None
        if _attr_call(node, "evict_block") and node.args:
            victim = node.args[0]
        elif _mover_call(node) and len(node.args) >= 2 \
                and _mentions_ddr(node.args[1]):
            victim = node.args[0]
        if not isinstance(victim, ast.Name):
            continue
        name = victim.id
        guarded = any(g_name == name and g_line < node.lineno
                      for g_name, g_line in guard_clauses)
        ancestor = parents.get(node)
        while not guarded and ancestor is not None:
            if isinstance(ancestor, (ast.If, ast.While)) \
                    and _mentions_guard(ancestor.test, name):
                guarded = True
            ancestor = parents.get(ancestor)
        if not guarded:
            findings.append(_finding(
                "REP202",
                f"eviction of {name!r} with no in_use/pinned guard on "
                f"this path", file, node.lineno,
                chare=cls.name, entry=method.name))
    return findings


def _check_move_exits(cls: ast.ClassDef, method: ast.FunctionDef,
                      file: str) -> list[Finding]:
    nodes = list(_walk_shallow(method))
    begins = [n.lineno for n in nodes if _attr_call(n, "begin_move")]
    if not begins:
        return []
    begin_line = min(begins)
    settles = sorted(n.lineno for n in nodes if _attr_call(n, "settle")
                     if n.lineno > begin_line)
    findings: list[Finding] = []
    if not settles:
        findings.append(_finding(
            "REP203",
            "begin_move() with no settle() anywhere after it — every "
            "exit leaves the block stuck MOVING", file, begin_line,
            chare=cls.name, entry=method.name))
        return findings
    for node in nodes:
        if not isinstance(node, (ast.Return, ast.Raise)):
            continue
        if node.lineno <= begin_line:
            continue
        if not any(s <= node.lineno for s in settles):
            kind = "return" if isinstance(node, ast.Return) else "raise"
            findings.append(_finding(
                "REP203",
                f"{kind} after begin_move() with no settle() before it "
                f"on this path", file, node.lineno,
                chare=cls.name, entry=method.name))
    return findings


def _check_inflight(cls: ast.ClassDef, method: ast.FunctionDef,
                    file: str) -> list[Finding]:
    mover_calls = [n for n in ast.walk(method) if _mover_call(n)]
    if not mover_calls:
        return []
    if any(_attr_call(n, "begin_inflight") for n in ast.walk(method)):
        return []
    return [_finding(
        "REP204",
        "mover call without begin_inflight() in this method — concurrent "
        "fetchers cannot join the move", file, call.lineno,
        chare=cls.name, entry=method.name) for call in mover_calls]


def _check_fetch_results(cls: ast.ClassDef, method: ast.FunctionDef,
                         file: str) -> list[Finding]:
    findings = []
    for node in ast.walk(method):
        if not isinstance(node, ast.Expr):
            continue
        value = node.value
        if isinstance(value, (ast.YieldFrom, ast.Await)):
            value = value.value
        if _attr_call(value, "fetch_task_blocks"):
            findings.append(_finding(
                "REP205",
                "fetch_task_blocks() result discarded — on failure the "
                "task must not be made ready", file, node.lineno,
                chare=cls.name, entry=method.name))
    return findings


# -- entry points --------------------------------------------------------------


def check_tree(tree: ast.Module, filename: str) -> list[Finding]:
    """Model-check one parsed module; returns findings (empty on clean)."""
    findings: list[Finding] = []
    for cls in _protocol_classes(tree):
        findings.extend(_check_state_assigns(cls, filename))
        findings.extend(_check_settle_literals(cls, filename))
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            findings.extend(_check_evictions(cls, method, filename))
            findings.extend(_check_move_exits(cls, method, filename))
            findings.extend(_check_inflight(cls, method, filename))
            findings.extend(_check_fetch_results(cls, method, filename))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def check_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Model-check one source text (standalone; no REP1xx pass)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [_finding("REP100", f"could not parse: {exc.msg}",
                         filename, exc.lineno or 1)]
    return check_tree(tree, filename)


def check_file(path: str | os.PathLike) -> list[Finding]:
    """Model-check one python file; findings anchored to its path."""
    with open(path, encoding="utf-8") as fh:
        return check_source(fh.read(), filename=str(path))


def check_paths(paths: _t.Iterable[str | os.PathLike]) -> LintReport:
    """Model-check every python file under ``paths``."""
    report = LintReport()
    for file in iter_python_files(paths):
        report.extend(check_file(file))
    return report


def default_targets() -> list[str]:
    """The protocol surface the ISSUE names: strategies/ and the mover."""
    import repro.core.strategies as strategies_pkg
    import repro.mem.mover as mover_mod
    return [os.path.dirname(os.path.abspath(strategies_pkg.__file__)),
            os.path.abspath(mover_mod.__file__)]
