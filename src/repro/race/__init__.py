"""``repro.race`` — concurrency-correctness subsystem.

Three parts guard the runtime's concurrent migration decisions:

* :mod:`repro.race.detector` — "racesan", a vector-clock happens-before
  race detector over the runtime's hook slots (rules ``RACE3xx``);
* :mod:`repro.race.model_checker` — a static placement-state model
  checker over the strategy/mover protocol classes (rules ``REP2xx``,
  also run by :func:`repro.lint.check_source`);
* :mod:`repro.race.explorer` — a seeded deterministic schedule explorer
  that permutes same-instant event orderings and replays/minimizes
  failing schedules.

Only :mod:`repro.race.hooks` is imported by hot-path modules; everything
else loads lazily so race checking costs nothing unless used.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "RaceAccess", "RaceFinding", "RaceSanitizer",
    "check_paths", "check_file", "check_source", "check_tree",
    "default_targets",
    "SeededTieBreaker", "ScheduleOutcome", "ExplorationReport",
    "run_schedule", "replay", "minimize_schedule", "explore",
    "stencil_runner", "matmul_runner", "spmv_runner",
]

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.race.detector import RaceAccess, RaceFinding, RaceSanitizer
    from repro.race.explorer import (ExplorationReport, ScheduleOutcome,
                                     SeededTieBreaker, explore,
                                     matmul_runner, minimize_schedule,
                                     replay, run_schedule, spmv_runner,
                                     stencil_runner)
    from repro.race.model_checker import (check_file, check_paths,
                                          check_source, check_tree,
                                          default_targets)

#: lazy attribute -> defining submodule (keeps hook-site imports cheap and
#: avoids import cycles with repro.sim / repro.runtime)
_LAZY = {
    "RaceAccess": "repro.race.detector",
    "RaceFinding": "repro.race.detector",
    "RaceSanitizer": "repro.race.detector",
    "check_paths": "repro.race.model_checker",
    "check_file": "repro.race.model_checker",
    "check_source": "repro.race.model_checker",
    "check_tree": "repro.race.model_checker",
    "default_targets": "repro.race.model_checker",
    "SeededTieBreaker": "repro.race.explorer",
    "ScheduleOutcome": "repro.race.explorer",
    "ExplorationReport": "repro.race.explorer",
    "run_schedule": "repro.race.explorer",
    "replay": "repro.race.explorer",
    "minimize_schedule": "repro.race.explorer",
    "explore": "repro.race.explorer",
    "stencil_runner": "repro.race.explorer",
    "matmul_runner": "repro.race.explorer",
    "spmv_runner": "repro.race.explorer",
}


def __getattr__(name: str) -> _t.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
