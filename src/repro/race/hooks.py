"""Race-tracker hook slot — the only race module the sim core imports.

The sim core (environment, process, resources) and the runtime layer
(PE wait queues, converse delivery) publish causality events — event
scheduled/processed/cancelled, process resumed, buffered queue handoffs,
message delivery — through this slot so the happens-before detector can
build its vector clocks.  Call sites guard every hook with::

    from repro.race import hooks as _rh
    ...
    if _rh.tracker is not None:
        _rh.tracker.on_scheduled(event)

so the cost with no tracker installed is one module-global load and an
``is not None`` test — measured in ``benchmarks/bench_race.py`` and far
below the noise floor of the sim core.  This module stays dependency-light
on purpose: it imports only :mod:`repro.hooks` (itself dependency-free),
never the rest of :mod:`repro.race`, so the sim core never pays for the
detector it is not using.
"""

from __future__ import annotations

import typing as _t

from repro.hooks import HookSlot

__all__ = ["tracker", "install", "uninstall"]

#: the active causality tracker (a
#: :class:`repro.race.detector.RaceSanitizer`), or None when race
#: detection is off — the default
tracker: _t.Any = None

_slot = HookSlot(__name__, "tracker", kind="race tracker")


def install(obs: _t.Any) -> None:
    """Add ``obs`` to the tracker slot (idempotent per observer)."""
    _slot.install(obs)


def uninstall(obs: _t.Any = None) -> None:
    """Remove ``obs`` from the slot; with ``None``, remove every tracker."""
    _slot.uninstall(obs)
