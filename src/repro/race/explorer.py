"""Deterministic schedule explorer: seeded same-instant ordering fuzzing.

The DES processes same-``(time, priority)`` events FIFO in scheduling
order.  Any code that is only correct *because* of that FIFO accident has
a schedule-dependent bug — the paper's runtime makes no such promise
(real IO threads and PEs race).  The explorer re-runs an application
across N permuted schedules:

* :class:`SeededTieBreaker` plugs into
  :meth:`repro.sim.environment.Environment.set_tie_breaker` and replaces
  each raw heap sequence number with ``(jitter, seq)``, where ``jitter``
  is drawn from a seeded RNG — permuting only orders among same-instant,
  same-priority events; everything else is untouched and every run is a
  pure function of the seed;
* the IO round-robin start offset (strategies with ``_rr_start``) is
  drawn from the same seed, permuting which PE the scan serves first;
* each schedule runs under ``racesan`` + ``simsan`` and is checked for
  deadlock (:class:`~repro.errors.DeadlockError`), crashes, races and
  invariant violations, plus a stuck-queue sweep at quiescence.

A failing schedule is **minimized** by binary-searching the smallest
decision prefix that still fails: decisions past the ``limit`` fall back
to FIFO, so the replay token is just ``(seed, limit)`` — two runs of the
same token produce byte-identical outcomes.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.errors import DeadlockError
from repro.lint.findings import Violation

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.race.detector import RaceFinding
    from repro.sim.environment import Environment

__all__ = ["SeededTieBreaker", "ScheduleOutcome", "ExplorationReport",
           "run_schedule", "replay", "minimize_schedule", "explore",
           "stencil_runner", "matmul_runner", "spmv_runner"]

#: a runner builds + runs one application inside the given environment and
#: returns the OOC manager (or None); ``rng`` seeds app-level ordering
#: choices such as the IO round-robin start
Runner = _t.Callable[["Environment", "random.Random | None"], _t.Any]


class SeededTieBreaker:
    """Maps raw sequence numbers to ``(jitter, seq)`` heap keys.

    Keys stay unique (``seq`` is the tiebreak of the tiebreak), so the
    permutation is total and deterministic in the seed.  With ``limit``
    set, decisions beyond it get jitter 0 — FIFO, and *ahead* of any
    jittered same-instant entry — which is what makes minimized replays
    stable: only the first ``limit`` decisions ever differ from FIFO.
    """

    def __init__(self, seed: int, limit: int | None = None):
        self.seed = seed
        self.limit = limit
        self.decisions = 0
        self._rng = random.Random(seed)

    def __call__(self, seq: int) -> tuple[int, int]:
        self.decisions += 1
        jitter = self._rng.getrandbits(16) + 1
        if self.limit is not None and self.decisions > self.limit:
            return (0, seq)
        return (jitter, seq)


@dataclasses.dataclass
class ScheduleOutcome:
    """Everything one permuted run produced, replayable via (seed, limit)."""

    seed: int | None
    limit: int | None
    decisions: int
    error: str | None = None
    detail: str = ""
    race_findings: "list[RaceFinding]" = dataclasses.field(
        default_factory=list)
    san_violations: list[Violation] = dataclasses.field(default_factory=list)
    tasks_completed: int | None = None

    @property
    def failed(self) -> bool:
        return bool(self.error or self.race_findings or self.san_violations)

    def signature(self) -> tuple:
        """Comparable digest — equal signatures mean 'same failure'."""
        return (self.error,
                tuple(sorted((f.rule, f.block) for f in self.race_findings)),
                tuple(sorted((v.rule, v.block) for v in self.san_violations)),
                self.tasks_completed)

    def render(self) -> str:
        token = f"seed={self.seed}"
        if self.limit is not None:
            token += f" limit={self.limit}"
        if not self.failed:
            return f"{token}: ok ({self.decisions} decisions)"
        parts = []
        if self.error:
            parts.append(f"error={self.error}")
        if self.race_findings:
            parts.append(f"races={len(self.race_findings)}")
        if self.san_violations:
            parts.append(f"violations={len(self.san_violations)}")
        line = f"{token}: FAIL {' '.join(parts)}"
        if self.detail:
            line += f" — {self.detail}"
        return line


def run_schedule(runner: Runner, seed: int | None = None, *,
                 limit: int | None = None, race: bool = True,
                 sanitize: bool = True) -> ScheduleOutcome:
    """Run one schedule; ``seed=None`` keeps plain FIFO ordering."""
    from repro.race.detector import RaceSanitizer
    from repro.sim.environment import Environment

    env = Environment()
    breaker: SeededTieBreaker | None = None
    rng: random.Random | None = None
    if seed is not None:
        breaker = SeededTieBreaker(seed, limit)
        env.set_tie_breaker(breaker)
        rng = random.Random(seed ^ 0x5EED)
    racesan = RaceSanitizer().install(env) if race else None
    simsan = None
    if sanitize:
        from repro.lint import SimSanitizer
        simsan = SimSanitizer(mode="record").install()
    error: str | None = None
    detail = ""
    manager: _t.Any = None
    try:
        try:
            manager = runner(env, rng)
            env.run()  # drain stragglers before the quiescence sweep
        except DeadlockError as exc:
            error, detail = "deadlock", str(exc)
        except Exception as exc:  # noqa: BLE001 - every crash is an outcome
            error, detail = type(exc).__name__, str(exc)
        if simsan is not None and manager is not None and error is None:
            simsan.check_quiescent(manager)
    finally:
        if racesan is not None:
            racesan.uninstall()
        if simsan is not None:
            simsan.uninstall()
    outcome = ScheduleOutcome(
        seed=seed, limit=limit,
        decisions=breaker.decisions if breaker is not None else 0,
        error=error, detail=detail,
        race_findings=list(racesan.findings) if racesan is not None else [],
        san_violations=list(simsan.violations) if simsan is not None else [])
    if error == "deadlock":
        outcome.san_violations.append(Violation(
            rule="RACE303", message=detail, at=env.now))
    if manager is not None:
        try:
            outcome.tasks_completed = manager.summary().get("tasks_completed")
        except Exception:  # noqa: BLE001 - summary is best-effort
            outcome.tasks_completed = None
    return outcome


def replay(runner: Runner, outcome: ScheduleOutcome, *,
           race: bool = True, sanitize: bool = True) -> ScheduleOutcome:
    """Re-run an outcome's (seed, limit) token — deterministic."""
    return run_schedule(runner, outcome.seed, limit=outcome.limit,
                        race=race, sanitize=sanitize)


def minimize_schedule(runner: Runner, outcome: ScheduleOutcome, *,
                      race: bool = True,
                      sanitize: bool = True) -> ScheduleOutcome:
    """Binary-search the smallest decision prefix that still fails.

    Returns a failing outcome whose ``limit`` is minimal under the probe
    (failure need not be monotone in the prefix length, so this is a
    greedy approximation — but the returned token is always verified to
    fail, hence always a valid replay).
    """
    assert outcome.seed is not None, "cannot minimize a FIFO run"
    low, high = 0, max(outcome.decisions, 1)
    best = outcome
    while low < high:
        mid = (low + high) // 2
        probe = run_schedule(runner, outcome.seed, limit=mid,
                             race=race, sanitize=sanitize)
        if probe.failed:
            best = probe
            high = mid
        else:
            low = mid + 1
    final = run_schedule(runner, outcome.seed, limit=low,
                         race=race, sanitize=sanitize)
    return final if final.failed else best


@dataclasses.dataclass
class ExplorationReport:
    """Aggregate of one :func:`explore` sweep."""

    outcomes: list[ScheduleOutcome]
    minimized: ScheduleOutcome | None = None

    @property
    def failing(self) -> list[ScheduleOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        return not self.failing

    def render(self, *, max_findings: int = 3) -> str:
        lines = [o.render() for o in self.outcomes]
        lines.append(f"explored {len(self.outcomes)} schedule(s): "
                     f"{len(self.failing)} failing")
        if self.minimized is not None:
            lines.append(
                f"minimized replay token: seed={self.minimized.seed} "
                f"limit={self.minimized.limit} "
                f"(re-run with --seed {self.minimized.seed} "
                f"--limit {self.minimized.limit})")
            shown = (self.minimized.race_findings[:max_findings]
                     + self.minimized.san_violations[:max_findings])
            lines.extend(item.render() for item in shown)
        return "\n".join(lines)


def explore(runner: Runner, *, schedules: int = 8, base_seed: int = 0,
            race: bool = True, sanitize: bool = True,
            minimize: bool = True) -> ExplorationReport:
    """Run ``schedules`` seeded permutations; minimize the first failure."""
    outcomes = [run_schedule(runner, seed, race=race, sanitize=sanitize)
                for seed in range(base_seed, base_seed + schedules)]
    report = ExplorationReport(outcomes=outcomes)
    failing = report.failing
    if failing and minimize:
        report.minimized = minimize_schedule(
            runner, failing[0], race=race, sanitize=sanitize)
    return report


# -- stock application runners -------------------------------------------------


def _permute_io_order(strategy: _t.Any, rng: "random.Random | None") -> None:
    if rng is not None and isinstance(getattr(strategy, "_rr_start", None),
                                      int):
        strategy._rr_start = rng.randrange(1 << 10)


def _fresh_strategy(strategy: _t.Any) -> _t.Any:
    """Registry names pass through; classes/factories are instantiated so
    every schedule gets pristine strategy state (replay determinism)."""
    return strategy() if callable(strategy) else strategy


def stencil_runner(*, strategy: _t.Any = "multi-io", cores: int = 8,
                   mcdram: int = 128 << 20, ddr: int = 1 << 30,
                   total: int = 128 << 20, block: int = 16 << 20,
                   iterations: int = 1) -> Runner:
    """A runner for one Stencil3D configuration (explorer fixture)."""
    def run(env: "Environment", rng: "random.Random | None") -> _t.Any:
        from repro.apps.stencil3d import Stencil3D, StencilConfig
        from repro.core.api import OOCRuntimeBuilder

        built = OOCRuntimeBuilder(
            _fresh_strategy(strategy), cores=cores, mcdram_capacity=mcdram,
            ddr_capacity=ddr, trace=False).build_into(env)
        _permute_io_order(built.strategy, rng)
        cfg = StencilConfig(total_bytes=total, block_bytes=block,
                            iterations=iterations)
        Stencil3D(built, cfg).run()
        return built.manager
    return run


def spmv_runner(*, strategy: _t.Any = "multi-io", cores: int = 8,
                mcdram: int = 128 << 20, ddr: int = 1 << 30,
                block_rows: int = 16, block_bytes: int = 8 << 20,
                vector_bytes: int = 1 << 20, couplings: int = 2,
                iterations: int = 1, seed: int = 0) -> Runner:
    """A runner for one iterated-SpMV configuration (explorer fixture)."""
    def run(env: "Environment", rng: "random.Random | None") -> _t.Any:
        from repro.apps.spmv import SpMV, SpMVConfig
        from repro.core.api import OOCRuntimeBuilder

        built = OOCRuntimeBuilder(
            _fresh_strategy(strategy), cores=cores, mcdram_capacity=mcdram,
            ddr_capacity=ddr, trace=False).build_into(env)
        _permute_io_order(built.strategy, rng)
        cfg = SpMVConfig(block_rows=block_rows, block_bytes=block_bytes,
                         vector_bytes=vector_bytes, couplings=couplings,
                         iterations=iterations, seed=seed)
        SpMV(built, cfg).run()
        return built.manager
    return run


def matmul_runner(*, strategy: _t.Any = "multi-io", cores: int = 8,
                  mcdram: int = 128 << 20, ddr: int = 1 << 30,
                  working_set: int = 64 << 20,
                  block_dim: int = 64) -> Runner:
    """A runner for one blocked-MatMul configuration (explorer fixture)."""
    def run(env: "Environment", rng: "random.Random | None") -> _t.Any:
        from repro.apps.matmul import MatMul, MatMulConfig
        from repro.core.api import OOCRuntimeBuilder

        built = OOCRuntimeBuilder(
            _fresh_strategy(strategy), cores=cores, mcdram_capacity=mcdram,
            ddr_capacity=ddr, trace=False).build_into(env)
        _permute_io_order(built.strategy, rng)
        cfg = MatMulConfig.for_working_set(working_set, block_dim=block_dim)
        MatMul(built, cfg).run()
        return built.manager
    return run
