"""racesan — a vector-clock happens-before race detector for the runtime.

The detector plugs into two hook slots at once:

* :mod:`repro.race.hooks` feeds it *causality*: events scheduled /
  processed / cancelled (:class:`~repro.sim.environment.Environment`),
  process resumption (:class:`~repro.sim.process.Process`), buffered
  queue handoffs (``Store``/``PriorityStore`` and the PE wait queues),
  and converse message delivery;
* :mod:`repro.lint.hooks` feeds it *accesses*: kernel reads/writes by
  declared intent, refcount retain/release, and mover copy/settle steps.

From the causality stream it maintains one vector clock per actor (each
simulated process plus the driving script).  The happens-before edges it
derives from runtime ordering are exactly the orderings the runtime
*guarantees*:

* event schedule → event callback (message send → deliver, timeouts,
  flow completion, process join/interrupt — anything through the DES);
* buffered queue put → get (run-queue and wait-queue handoffs that never
  materialise an event because the item is consumed later);
* IO fetch completion → task start (the in-flight event plus the
  run-queue handoff);
* mover ``settle`` → any later context that *observes* the placement
  (a retain, a kernel access, or the next move of the same block) — the
  acquire/release protocol of the placement state machine;
* refcount release → the mover's next move of that block (eviction is
  only legal after the last holder released).

Two accesses to one block's *bytes* conflict when at least one is a
write-class access and neither happened-before the other; the finding
carries both access records — actor, op, sim time, call stack — plus the
vector-clock evidence, so "a schedule exists where these overlap" is
auditable.  Kernel reads/writes are byte accesses; mover
move-start/move-end are write-class (the copy/free relocates the bytes).
Refcount retain/release touch only the block's atomic refcount word, not
its bytes, so they are observed for their causality (a release publishes
the edge the next eviction must acquire; a retain acquires the last
settle) but never themselves conflict — two IO threads may legitimately
retain / fetch one shared panel at the same instant.
"""

from __future__ import annotations

import dataclasses
import os
import traceback
import typing as _t

from repro.lint import hooks as lint_hooks
from repro.race import hooks as race_hooks
from repro.race.clock import Clock, format_clock, fresh, happened_before, join

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mem.block import DataBlock
    from repro.sim.environment import Environment

__all__ = ["RaceAccess", "RaceFinding", "RaceSanitizer"]

#: actor name for the top-level driving script (not a simulated process)
MAIN_ACTOR = "main"


@dataclasses.dataclass(frozen=True)
class RaceAccess:
    """One recorded block access: who, what, when — plus clock evidence."""

    op: str
    actor: str
    own: int
    clock: dict[str, int]
    time: float | None = None
    task: str = ""
    stack: str = ""

    def render(self) -> str:
        at = f" t={self.time:.6g}" if self.time is not None else ""
        head = f"{self.op} by {self.actor}{at}"
        if self.task:
            head += f" in {self.task}"
        lines = [head,
                 f"  clock {self.actor}@{self.own} of {format_clock(self.clock)}"]
        if self.stack:
            lines.append(f"  stack {self.stack}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class RaceFinding:
    """One race-detector diagnostic (rules ``RACE3xx``)."""

    rule: str
    message: str
    block: str = ""
    at: float | None = None
    first: RaceAccess | None = None
    second: RaceAccess | None = None

    def render(self) -> str:
        at = f" t={self.at:.6g}" if self.at is not None else ""
        blk = f" block={self.block!r}" if self.block else ""
        lines = [f"{self.rule}{at}{blk}: {self.message}"]
        if self.first is not None:
            lines.append("  earlier: " +
                         self.first.render().replace("\n", "\n  "))
        if self.second is not None:
            lines.append("  current: " +
                         self.second.render().replace("\n", "\n  "))
        return "\n".join(lines)


class RaceSanitizer:
    """Happens-before detector over the lint + race hook slots.

    Use as a context manager or call :meth:`install` / :meth:`uninstall`
    explicitly.  Findings accumulate in :attr:`findings`; the detector
    never raises on a race — schedules under the explorer must run to
    completion so one interleaving yields all its findings.
    """

    def __init__(self, *, stacks: bool = True, max_findings: int = 100):
        self.stacks = stacks
        self.max_findings = max_findings
        self.findings: list[RaceFinding] = []
        self.suppressed = 0
        self.events_observed = 0
        self.accesses_observed = 0
        self._env: Environment | None = None
        # --- causality state ---------------------------------------------
        main = fresh(MAIN_ACTOR)
        self._clocks: dict[str, Clock] = {MAIN_ACTOR: main}
        self._ambient_actor: str | None = MAIN_ACTOR
        self._ambient: Clock = main
        self._event_clock: dict[int, Clock] = {}
        self._event_snap: Clock | None = None
        self._processing_id: int | None = None
        self._actor_names: dict[int, str] = {}
        self._name_counts: dict[str, int] = {}
        self._handoff: dict[int, list[Clock]] = {}
        self._release_clock: dict[int, Clock] = {}
        self._settle_clock: dict[int, Clock] = {}
        # --- access state ------------------------------------------------
        self._last_write: dict[int, RaceAccess] = {}
        self._reads: dict[int, dict[str, RaceAccess]] = {}
        self._current_task: dict[str, _t.Any] = {}
        self._seen: set[tuple] = set()

    # -- lifecycle --------------------------------------------------------

    def install(self, env: "Environment | None" = None) -> RaceSanitizer:
        """Attach to both hook slots; ``env`` anchors report timestamps."""
        if env is not None:
            self._env = env
        lint_hooks.install(self)
        race_hooks.install(self)
        return self

    def uninstall(self) -> None:
        lint_hooks.uninstall(self)
        race_hooks.uninstall(self)

    def __enter__(self) -> RaceSanitizer:
        return self.install()

    def __exit__(self, *exc: _t.Any) -> None:
        self.uninstall()

    def render_report(self) -> str:
        lines = [f.render() for f in self.findings]
        tail = f"racesan: {len(self.findings)} finding(s)"
        if self.suppressed:
            tail += f" (+{self.suppressed} suppressed)"
        lines.append(tail)
        return "\n".join(lines)

    # -- causality hooks (repro.race.hooks slot) --------------------------

    def on_scheduled(self, event: _t.Any) -> None:
        self.events_observed += 1
        self._event_clock[id(event)] = self._publish()

    def on_descheduled(self, event: _t.Any) -> None:
        self._event_clock.pop(id(event), None)

    def on_processing(self, event: _t.Any) -> None:
        snapshot = self._event_clock.pop(id(event), None)
        if snapshot is None:
            snapshot = {}
        self._event_snap = snapshot
        self._processing_id = id(event)
        self._ambient_actor = None
        self._ambient = snapshot
        if self._env is None:
            env = getattr(event, "env", None)
            if env is not None:
                self._env = env

    def on_resume(self, process: _t.Any, event: _t.Any) -> None:
        actor = self._actor_for(process)
        clock = self._clocks[actor]
        if id(event) == self._processing_id:
            snapshot = self._event_snap
        else:
            # synchronous resume on an already-processed event (e.g. an
            # in-flight event that fired earlier); its snapshot is gone,
            # and the settle/handoff clocks carry the edge instead
            snapshot = self._event_clock.get(id(event))
        if snapshot:
            join(clock, snapshot)
        self._ambient_actor = actor
        self._ambient = clock

    def on_handoff_put(self, item: _t.Any) -> None:
        self._handoff.setdefault(id(item), []).append(self._publish())

    def on_handoff_get(self, item: _t.Any) -> None:
        snapshots = self._handoff.get(id(item))
        if snapshots:
            snapshot = snapshots.pop(0)
            if not snapshots:
                del self._handoff[id(item)]
            join(self._ambient, snapshot)

    def on_deliver(self, pe: _t.Any, message: _t.Any,
                   task: _t.Any = None) -> None:
        actor = self._ambient_actor
        if actor is not None:
            self._current_task[actor] = task

    # -- access hooks (repro.lint.hooks slot) -----------------------------

    def on_kernel_access(self, reads: _t.Iterable["DataBlock"],
                         writes: _t.Iterable["DataBlock"]) -> None:
        reads = tuple(reads)
        writes = tuple(writes)
        task = self._ambient_task()
        intents: dict[int, _t.Any] = {}
        if task is not None:
            intents = {block.bid: intent for block, intent in task.deps}
        for block in reads + writes:
            self._acquire_settle(block)
        for block in reads:
            intent = intents.get(block.bid)
            if intent is not None and not intent.reads:
                self._report_writeonly(block, task)
            self._record(block, "kernel-read", is_write=False)
        for block in writes:
            self._record(block, "kernel-write", is_write=True)

    def on_retain(self, block: "DataBlock") -> None:
        # atomic refcount op: acquires the last settle but is not a byte
        # access — two actors may retain/fetch one shared block at once
        self.accesses_observed += 1
        self._acquire_settle(block)

    def on_release(self, block: "DataBlock") -> None:
        # atomic refcount op: publishes the edge the next eviction joins
        self.accesses_observed += 1
        join(self._release_clock.setdefault(block.bid, {}), self._publish())

    # sole-observer completeness: lint call sites invoke the published
    # observer directly, so the parts of its surface racesan does not
    # need must still exist
    def on_begin_move(self, block: "DataBlock") -> None:
        pass

    def on_settle(self, block: "DataBlock") -> None:
        pass

    def on_alloc(self, allocator: _t.Any, nbytes: int) -> None:
        pass

    def on_free(self, allocator: _t.Any, allocation: _t.Any) -> None:
        pass

    def on_move_start(self, block: "DataBlock", src: _t.Any,
                      dst: _t.Any) -> None:
        self._acquire_settle(block)
        released = self._release_clock.get(block.bid)
        if released:
            join(self._ambient, released)
        op = f"move-start {src.name}->{dst.name}"
        self._record(block, op, is_write=True)

    def on_move_end(self, block: "DataBlock", src: _t.Any,
                    dst: _t.Any) -> None:
        op = f"move-end {src.name}->{dst.name}"
        self._record(block, op, is_write=True)
        join(self._settle_clock.setdefault(block.bid, {}), self._publish())

    # -- internals --------------------------------------------------------

    def _actor_for(self, process: _t.Any) -> str:
        key = id(process)
        name = self._actor_names.get(key)
        if name is None:
            base = getattr(process, "name", None) or "proc"
            count = self._name_counts.get(base, 0)
            self._name_counts[base] = count + 1
            name = base if count == 0 else f"{base}~{count}"
            self._actor_names[key] = name
            self._clocks[name] = fresh(name)
            if self._env is None:
                env = getattr(process, "env", None)
                if env is not None:
                    self._env = env
        return name

    def _publish(self) -> Clock:
        """Snapshot the ambient clock; tick the owning actor afterwards."""
        clock = self._ambient
        snapshot = dict(clock)
        actor = self._ambient_actor
        if actor is not None:
            clock[actor] = clock.get(actor, 0) + 1
        return snapshot

    def _acquire_settle(self, block: "DataBlock") -> None:
        """Observing a block's placement acquires the mover's last settle."""
        settled = self._settle_clock.get(block.bid)
        if settled:
            join(self._ambient, settled)

    def _now(self) -> float | None:
        return self._env.now if self._env is not None else None

    def _ambient_task(self) -> _t.Any:
        actor = self._ambient_actor
        return self._current_task.get(actor) if actor is not None else None

    def _task_label(self) -> str:
        task = self._ambient_task()
        if task is None:
            return ""
        target = getattr(task.message.target, "label", "?")
        return f"task #{task.tid} {target}.{task.message.entry.name}"

    def _stack(self) -> str:
        if not self.stacks:
            return ""
        kept: list[str] = []
        for frame in traceback.extract_stack():
            filename = frame.filename.replace(os.sep, "/")
            if ("/repro/race/" in filename or "/repro/lint/" in filename
                    or filename.endswith("/repro/hooks.py")):
                continue
            kept.append(f"{os.path.basename(filename)}:{frame.lineno} "
                        f"in {frame.name}")
        return " <- ".join(reversed(kept[-3:]))

    def _record(self, block: "DataBlock", op: str, *,
                is_write: bool) -> None:
        self.accesses_observed += 1
        actor = self._ambient_actor or "<event>"
        clock = self._ambient
        access = RaceAccess(
            op=op, actor=actor, own=clock.get(actor, 0), clock=dict(clock),
            time=self._now(), task=self._task_label(), stack=self._stack())
        bid = block.bid
        last_write = self._last_write.get(bid)
        if last_write is not None:
            self._check(block, last_write, access)
        if is_write:
            for read in self._reads.get(bid, {}).values():
                self._check(block, read, access)
            self._last_write[bid] = access
            self._reads[bid] = {}
        else:
            self._reads.setdefault(bid, {})[actor] = access

    def _check(self, block: "DataBlock", earlier: RaceAccess,
               current: RaceAccess) -> None:
        if earlier.actor == current.actor:
            return  # program order within one actor
        if happened_before(earlier.actor, earlier.own, current.clock):
            return
        key = (block.bid, earlier.actor, earlier.op,
               current.actor, current.op)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.findings) >= self.max_findings:
            self.suppressed += 1
            return
        message = (f"unordered {earlier.op} by {earlier.actor} and "
                   f"{current.op} by {current.actor} — no happens-before "
                   f"path between them")
        self.findings.append(RaceFinding(
            rule="RACE301", message=message, block=block.name,
            at=self._now(), first=earlier, second=current))

    def _report_writeonly(self, block: "DataBlock", task: _t.Any) -> None:
        tid = task.tid if task is not None else -1
        key = ("RACE302", block.bid, tid)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.findings) >= self.max_findings:
            self.suppressed += 1
            return
        label = self._task_label() or "an undeclared task"
        message = (f"kernel reads block {block.name!r}, which {label} "
                   f"declared writeonly")
        self.findings.append(RaceFinding(
            rule="RACE302", message=message, block=block.name,
            at=self._now()))
