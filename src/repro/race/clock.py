"""Vector clocks for the happens-before model of the simulated runtime.

Every *actor* (a simulated process, or the driving script labelled
``main``) owns a clock: a sparse mapping ``actor -> stamp``.  The protocol
is the classic message-passing formulation:

* an actor's clock starts at ``{self: 1}`` — the nonzero own component
  means a fresh actor is never trivially ordered before everyone else;
* **publish** (sending causality: scheduling an event, putting an item in
  a buffered queue, releasing a refcount, settling a move) snapshots the
  sender's clock, then increments the sender's own component — so work the
  sender does *after* the publish is not covered by it;
* **join** (receiving causality: an event callback firing, a buffered
  get, a mover observing releases) merges a published snapshot into the
  receiver's clock component-wise.

An access performed by ``actor`` at own-stamp ``own`` happened-before the
current context iff the current clock's component for ``actor`` is at
least ``own`` — i.e. some publish made after the access reached us.
"""

from __future__ import annotations

import typing as _t

__all__ = ["Clock", "fresh", "join", "happened_before", "format_clock"]

#: sparse vector clock: actor name -> stamp
Clock = dict[str, int]


def fresh(actor: str) -> Clock:
    """A new actor clock with the mandatory nonzero own component."""
    return {actor: 1}


def join(into: Clock, snapshot: _t.Mapping[str, int]) -> None:
    """Merge ``snapshot`` into ``into``, component-wise maximum."""
    for actor, stamp in snapshot.items():
        if into.get(actor, 0) < stamp:
            into[actor] = stamp


def happened_before(actor: str, own: int,
                    current: _t.Mapping[str, int]) -> bool:
    """Did (``actor``, ``own``) reach the context whose clock is ``current``?"""
    return current.get(actor, 0) >= own


def format_clock(clock: _t.Mapping[str, int], *, limit: int = 6) -> str:
    """Compact ``{a@3, b@1, ...}`` rendering for race reports."""
    items = sorted(clock.items(), key=lambda kv: (-kv[1], kv[0]))
    shown = ", ".join(f"{actor}@{stamp}" for actor, stamp in items[:limit])
    extra = len(items) - limit
    if extra > 0:
        shown += f", +{extra} more"
    return "{" + shown + "}"
