"""Shared hook-slot machinery for the opt-in observer subsystems.

Three subsystems watch the runtime through module-global hook slots:
:mod:`repro.lint.hooks` (the "simsan" invariant sanitizer and the
"racesan" happens-before detector share this slot), :mod:`repro.metrics.hooks`
(the telemetry registry) and :mod:`repro.race.hooks` (sim-core causality
tracking).  Each slot module stays dependency-free so hot paths can import
it without pulling in the subsystem, and every call site keeps the
disabled-cost discipline::

    from repro.lint import hooks as _hooks
    ...
    if _hooks.observer is not None:
        _hooks.observer.on_retain(self)

:class:`HookSlot` centralises the install/uninstall bookkeeping behind
those globals.  With zero observers the slot publishes ``None`` (the
``is not None`` fast path short-circuits); with exactly one it publishes
the observer itself (no dispatch indirection — the common case costs the
same as before slots were shareable); with several it publishes a
:class:`FanOut` that forwards each hook method to every observer that
implements it.  This is what lets simsan, racesan and metrics be active
in one run without knowing about each other.
"""

from __future__ import annotations

import sys
import typing as _t

__all__ = ["FanOut", "HookSlot"]


class FanOut:
    """Forwards hook calls to several observers, skipping absent methods.

    Dispatchers are built once per method name on first use and memoised
    in the instance ``__dict__``, so repeated calls bypass ``__getattr__``.
    Return values are dropped — fan-out is only valid for notification
    slots, never for value slots like the metrics registry.
    """

    def __init__(self, observers: _t.Iterable[_t.Any]):
        self.observers = tuple(observers)

    def __getattr__(self, name: str) -> _t.Callable[..., None]:
        if name.startswith("_"):
            raise AttributeError(name)
        targets = tuple(
            method for method in
            (getattr(obs, name, None) for obs in self.observers)
            if callable(method))

        def dispatch(*args: _t.Any, **kwargs: _t.Any) -> None:
            for target in targets:
                target(*args, **kwargs)

        dispatch.__name__ = name
        self.__dict__[name] = dispatch
        return dispatch

    def __repr__(self) -> str:
        names = ", ".join(type(o).__name__ for o in self.observers)
        return f"<FanOut [{names}]>"


class HookSlot:
    """Manages one module-global observer slot.

    The slot *publishes* its current value into ``sys.modules[module]``
    under ``attr`` so hook call sites keep reading a plain module global:
    ``None`` (empty), the sole observer (single), or a :class:`FanOut`
    (multiple).  ``exclusive=True`` restores the old single-occupant
    semantics for slots whose call sites consume return values (the
    metrics registry) — fanning those out would silently break them.
    """

    def __init__(self, module: str, attr: str, *,
                 exclusive: bool = False, kind: str = "observer"):
        self.module = module
        self.attr = attr
        self.exclusive = exclusive
        self.kind = kind
        self.observers: list[_t.Any] = []

    def _publish(self) -> None:
        count = len(self.observers)
        value = (None if count == 0
                 else self.observers[0] if count == 1
                 else FanOut(self.observers))
        setattr(sys.modules[self.module], self.attr, value)

    def install(self, obs: _t.Any) -> None:
        """Add ``obs`` to the slot (idempotent for the same object)."""
        if obs is None:
            raise RuntimeError(f"cannot install None as a {self.kind}")
        if any(existing is obs for existing in self.observers):
            return
        if self.exclusive and self.observers:
            raise RuntimeError(f"a {self.kind} is already installed")
        self.observers.append(obs)
        self._publish()

    def uninstall(self, obs: _t.Any = None) -> None:
        """Remove ``obs`` (idempotent); with ``None``, clear the slot."""
        if obs is None:
            self.observers.clear()
        else:
            self.observers = [o for o in self.observers if o is not obs]
        self._publish()
