"""Messages: the unit of work delivery in the converse layer.

"When a message arrives for an object, the converse scheduler delivers the
message and in turn the object executes the corresponding entry method for
the message." (§III-A)
"""

from __future__ import annotations

import typing as _t
from itertools import count

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.chare import Chare
    from repro.runtime.entry import EntrySpec

__all__ = ["Message"]

_msg_ids = count()


class Message:
    """An entry-method invocation in flight."""

    __slots__ = ("mid", "target", "entry", "args", "kwargs", "nbytes",
                 "created_at", "delivered_at", "intercepted")

    def __init__(self, target: "Chare", entry: "EntrySpec",
                 args: tuple = (), kwargs: dict | None = None,
                 nbytes: int = 0, created_at: float = 0.0):
        self.mid = next(_msg_ids)
        self.target = target
        self.entry = entry
        self.args = args
        self.kwargs = kwargs or {}
        #: payload size, for communication-cost accounting
        self.nbytes = int(nbytes)
        self.created_at = created_at
        self.delivered_at: float | None = None
        #: set once the OOC manager has seen this message, so a ready task
        #: re-entering the converse queue is not intercepted twice
        self.intercepted = False

    @property
    def queue_delay(self) -> float | None:
        """Time from send to delivery, if delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:
        tgt = getattr(self.target, "label", type(self.target).__name__)
        return f"<Message #{self.mid} {tgt}.{self.entry.name}>"
