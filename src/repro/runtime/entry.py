"""Entry-method declarations: the ``.ci`` file analog (paper §IV-A).

The paper annotates bandwidth-sensitive entry methods in the Charm++
interface file::

    entry [prefetch] void compute_kernel() [readwrite: A, writeonly: B]

Here the same declaration is a decorator::

    class Compute(Chare):
        @entry(prefetch=True, readwrite=["A"], writeonly=["B"])
        def compute_kernel(self):
            yield from self.kernel(flops=..., reads=[self.A], writes=[self.B])

Dependence names refer to chare attributes holding a
:class:`~repro.mem.block.DataBlock` (or an iterable of them, resolved at
message time, so data-dependent block lists work).
"""

from __future__ import annotations

import inspect
import typing as _t

from repro.errors import EntryMethodError
from repro.mem.block import AccessIntent, DataBlock

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.chare import Chare

__all__ = ["EntrySpec", "entry"]

#: attribute set on decorated functions, collected by Chare.__init_subclass__
_SPEC_ATTR = "_repro_entry_spec"


class EntrySpec:
    """Metadata for one entry method of a chare class."""

    __slots__ = ("name", "func", "prefetch", "deps", "exclusive")

    def __init__(self, name: str, func: _t.Callable, prefetch: bool,
                 deps: tuple[tuple[str, AccessIntent], ...],
                 exclusive: bool = False):
        self.name = name
        self.func = func
        #: the paper's ``[prefetch]`` attribute
        self.prefetch = prefetch
        #: ``(attribute name, intent)`` pairs from the annotation
        self.deps = deps
        #: reserved for node-group entry methods
        self.exclusive = exclusive

    def resolve_deps(self, chare: "Chare") -> list[tuple[DataBlock, AccessIntent]]:
        """Look up the dependence blocks on a concrete chare instance.

        Resolution happens at message time, so data-dependent block lists
        (any non-string iterable of :class:`DataBlock`) work.  Every failure
        names the chare class, the entry method and the offending attribute —
        these errors surface deep inside the interception layer, far from the
        declaration that caused them.
        """
        resolved: list[tuple[DataBlock, AccessIntent]] = []
        where = f"{type(chare).__name__}.{self.name}"
        for attr, intent in self.deps:
            try:
                value = getattr(chare, attr)
            except AttributeError:
                raise EntryMethodError(
                    f"{where}: dependence attribute {attr!r} does not exist "
                    "on the chare (declared on @entry but never assigned)"
                ) from None
            if value is None:
                continue
            if isinstance(value, DataBlock):
                resolved.append((value, intent))
            elif isinstance(value, _t.Iterable) and not isinstance(
                    value, (str, bytes)):
                for index, item in enumerate(value):
                    if not isinstance(item, DataBlock):
                        raise EntryMethodError(
                            f"{where}: dependence attribute {attr!r} "
                            f"contains a non-DataBlock at index {index}: "
                            f"{item!r} ({type(item).__name__})")
                    resolved.append((item, intent))
            else:
                raise EntryMethodError(
                    f"{where}: dependence attribute {attr!r} is "
                    f"{type(value).__name__}, expected a DataBlock or an "
                    "iterable of DataBlocks")
        return resolved

    def __repr__(self) -> str:
        flags = "[prefetch] " if self.prefetch else ""
        deps = ", ".join(f"{intent.value}:{attr}" for attr, intent in self.deps)
        return f"<EntrySpec {flags}{self.name}({deps})>"


def entry(func: _t.Callable | None = None, *, prefetch: bool = False,
          readonly: _t.Sequence[str] = (),
          readwrite: _t.Sequence[str] = (),
          writeonly: _t.Sequence[str] = ()) -> _t.Callable:
    """Declare a chare method as an entry method.

    Usable bare (``@entry``) or with annotations
    (``@entry(prefetch=True, readwrite=["A"])``).
    """

    def decorate(f: _t.Callable) -> _t.Callable:
        deps: list[tuple[str, AccessIntent]] = []
        seen: set[str] = set()
        for names, intent in ((readonly, AccessIntent.READONLY),
                              (readwrite, AccessIntent.READWRITE),
                              (writeonly, AccessIntent.WRITEONLY)):
            for attr in names:
                if attr in seen:
                    raise EntryMethodError(
                        f"entry {f.__name__!r}: dependence {attr!r} "
                        "declared with two intents")
                seen.add(attr)
                deps.append((attr, intent))
        if prefetch and not deps:
            raise EntryMethodError(
                f"entry {f.__name__!r}: [prefetch] requires at least one "
                "declared data dependence")
        if not inspect.isgeneratorfunction(f) and prefetch:
            # Prefetch entries almost always run kernels; a plain function
            # is legal (zero simulated time) but worth allowing explicitly.
            pass
        setattr(f, _SPEC_ATTR, EntrySpec(f.__name__, f, prefetch, tuple(deps)))
        return f

    if func is not None:
        return decorate(func)
    return decorate


def collect_entry_specs(cls: type) -> dict[str, EntrySpec]:
    """Gather entry specs declared on ``cls`` and its bases."""
    specs: dict[str, EntrySpec] = {}
    for klass in reversed(cls.__mro__):
        for name, member in vars(klass).items():
            spec = getattr(member, _SPEC_ATTR, None)
            if spec is not None:
                specs[name] = spec
    return specs
