"""Chare-to-PE placement and simple load balancing.

"Objects do not migrate at anytime, they migrate only when load balancing
explicitly moves them to a different PE." (§III-A)  The evaluation keeps
placement static, so the core offering here is the initial map; a greedy
measured-load rebalancer is included for completeness and ablations.
"""

from __future__ import annotations

import typing as _t

from repro.errors import RuntimeModelError

__all__ = ["round_robin_map", "block_map", "block_cyclic_map",
           "GreedyLoadBalancer"]

Index = tuple[int, ...]


def round_robin_map(indices: _t.Sequence[Index], n_pes: int) -> dict[Index, int]:
    """Cycle chares over PEs in sorted index order.

    This is the default for the paper's workloads: consecutive chares land
    on consecutive PEs, so one "wave" of chares touches every PE — the
    over-decomposition pattern §III-A relies on.
    """
    if n_pes <= 0:
        raise RuntimeModelError("need at least one PE")
    return {idx: i % n_pes for i, idx in enumerate(sorted(indices))}


def block_map(indices: _t.Sequence[Index], n_pes: int) -> dict[Index, int]:
    """Contiguous slabs of chares per PE (locality-preserving)."""
    if n_pes <= 0:
        raise RuntimeModelError("need at least one PE")
    ordered = sorted(indices)
    n = len(ordered)
    mapping: dict[Index, int] = {}
    for i, idx in enumerate(ordered):
        mapping[idx] = min(i * n_pes // max(n, 1), n_pes - 1)
    return mapping


def block_cyclic_map(indices: _t.Sequence[Index], n_pes: int) -> dict[Index, int]:
    """2-D block-cyclic distribution (ScaLAPACK-style) for 2-D chare arrays.

    The PEs form a near-square ``pr x pc`` grid; chare *(i, j)* lands on PE
    ``(i % pr) * pc + (j % pc)``.  At any instant the ~``n_pes`` concurrent
    chares tile a ``pr x pc`` patch of the chare grid, so each row panel is
    shared by ``pc`` running tasks and each column panel by ``pr`` — the
    concurrency pattern that lets reference counting keep the read-only
    panels of MatMul resident (§V-B).  Non-2-D indices fall back to
    round-robin.
    """
    if n_pes <= 0:
        raise RuntimeModelError("need at least one PE")
    if any(len(idx) != 2 for idx in indices):
        return round_robin_map(indices, n_pes)
    pr = int(n_pes ** 0.5)
    while n_pes % pr:
        pr -= 1
    pc = n_pes // pr
    return {idx: (idx[0] % pr) * pc + (idx[1] % pc) for idx in indices}


class GreedyLoadBalancer:
    """Longest-processing-time-first rebalancing from measured loads."""

    def __init__(self, n_pes: int):
        if n_pes <= 0:
            raise RuntimeModelError("need at least one PE")
        self.n_pes = n_pes

    def rebalance(self, loads: _t.Mapping[Index, float]) -> dict[Index, int]:
        """Assign chares (heaviest first) to the least-loaded PE."""
        pe_load = [0.0] * self.n_pes
        mapping: dict[Index, int] = {}
        # Sort by load descending, index ascending for determinism.
        for idx in sorted(loads, key=lambda i: (-loads[i], i)):
            target = min(range(self.n_pes), key=lambda p: (pe_load[p], p))
            mapping[idx] = target
            pe_load[target] += loads[idx]
        return mapping

    @staticmethod
    def imbalance(loads: _t.Mapping[Index, float],
                  mapping: _t.Mapping[Index, int], n_pes: int) -> float:
        """max/mean PE load ratio (1.0 = perfectly balanced)."""
        pe_load = [0.0] * n_pes
        for idx, pe in mapping.items():
            pe_load[pe] += loads.get(idx, 0.0)
        mean = sum(pe_load) / n_pes
        if mean == 0:
            return 1.0
        return max(pe_load) / mean
