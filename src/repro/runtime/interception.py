"""The interception hook the paper adds to the Converse scheduler.

"Before a chare's entry method is about to be executed by delivery of its
input message, we intercept the call and check whether the entry method
needs prefetching of data.  If so, instead of delivering the message we
queue the message and the corresponding object in a queue." (§IV-B)

The runtime only knows this protocol; the concrete interceptor (the OOC
manager with its strategy) lives in :mod:`repro.core`.  The *pre-processing*
and *post-processing* methods charmxi would auto-generate for ``[prefetch]``
entries map to :meth:`Interceptor.intercept` and
:meth:`Interceptor.post_process`, both executed on the worker PE.
"""

from __future__ import annotations

import typing as _t

from repro.runtime.message import Message

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.pe import PE

__all__ = ["Interceptor", "ReadyTask", "RetryFetch"]


class RetryFetch:
    """A converse-queue nudge: "re-check this PE's wait queue".

    Needed by the synchronous (no-IO-thread) strategy: a PE whose waiting
    tasks could not be fetched would otherwise only re-check when one of
    *its own* tasks finishes — if space is freed by another PE's eviction,
    nobody on the starved PE ever looks again.  Delivering a RetryFetch
    runs the interceptor's retry hook in that PE's converse loop.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RetryFetch>"


class ReadyTask:
    """A prefetched task re-entering the converse run queue.

    Wraps the original message plus whatever task object the interceptor
    tracks, so delivery skips a second interception.
    """

    __slots__ = ("message", "task")

    def __init__(self, message: Message, task: _t.Any):
        self.message = message
        self.task = task

    def __repr__(self) -> str:
        return f"<ReadyTask {self.message!r}>"


class Interceptor(_t.Protocol):
    """What the converse scheduler needs from an OOC manager."""

    def wants(self, message: Message) -> bool:
        """Should this message be intercepted instead of delivered?"""
        ...

    def intercept(self, pe: "PE", message: Message) -> _t.Generator:
        """Pre-processing: runs on the worker PE inside the converse loop.

        May consume simulated time (synchronous strategies fetch here).
        By the time it returns, the message has either been queued for
        later or pushed back to a run queue as a :class:`ReadyTask`.
        """
        ...

    def post_process(self, pe: "PE", task: _t.Any) -> _t.Generator:
        """Post-processing after the entry method ran (eviction etc.)."""
        ...

    def retry(self, pe: "PE") -> _t.Generator:
        """Handle a :class:`RetryFetch` delivered to ``pe``."""
        ...
