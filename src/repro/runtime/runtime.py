"""The runtime façade: machine + PEs + messaging + interception wiring."""

from __future__ import annotations

import typing as _t

from repro.errors import ChareError, RuntimeModelError
from repro.machine.node import MachineNode
from repro.runtime.chare import Chare, ChareArray, NodeGroup
from repro.runtime.converse import STOP, converse_scheduler
from repro.runtime.interception import Interceptor
from repro.runtime.loadbalance import round_robin_map
from repro.runtime.message import Message
from repro.runtime.pe import PE
from repro.runtime.reduction import Reducer
from repro.sim.events import Event
from repro.trace.tracer import Tracer

__all__ = ["CharmRuntime"]

Index = tuple[int, ...]


class CharmRuntime:
    """One simulated Charm++ runtime instance on one machine node.

    Construction starts one converse scheduler process per PE; applications
    then create chare arrays, send messages, and drive the simulation with
    :meth:`run_until`.
    """

    def __init__(self, machine: MachineNode, *,
                 n_pes: int | None = None,
                 message_latency: float = 2e-6,
                 tracer: Tracer | None = None):
        self.machine = machine
        self.env = machine.env
        if n_pes is None:
            n_pes = len(machine.cores)
        if not 1 <= n_pes <= len(machine.cores):
            raise RuntimeModelError(
                f"n_pes must be in [1, {len(machine.cores)}], got {n_pes}")
        #: fixed per-message delivery latency (intra-node)
        self.message_latency = message_latency
        self.tracer = tracer if tracer is not None else Tracer(self.env)
        self.pes: list[PE] = [PE(self.env, i, machine.cores[i])
                              for i in range(n_pes)]
        #: the OOC manager, installed by :meth:`install_interceptor`
        self.interceptor: Interceptor | None = None
        #: PE whose scheduler is currently executing (for chare helpers)
        self.current_pe_id = 0
        self.arrays: list[ChareArray] = []
        self.node_groups: list[NodeGroup] = []
        self.messages_sent = 0
        self._running = True
        for pe in self.pes:
            pe.scheduler_process = self.env.process(
                converse_scheduler(self, pe), name=f"converse-pe{pe.id}")

    # -- interception -----------------------------------------------------------

    def install_interceptor(self, interceptor: Interceptor) -> None:
        """Install the OOC manager (must happen before messages flow)."""
        if self.interceptor is not None:
            raise RuntimeModelError("an interceptor is already installed")
        self.interceptor = interceptor

    # -- chare management ---------------------------------------------------------

    def create_array(self, cls: type[Chare],
                     indices: _t.Sequence[Index] | int, *,
                     pe_map: _t.Mapping[Index, int] | None = None,
                     name: str = "") -> ChareArray:
        """Create a chare array over ``indices`` (int = 1-D range)."""
        if isinstance(indices, int):
            index_list: list[Index] = [(i,) for i in range(indices)]
        else:
            index_list = [tuple(i) if not isinstance(i, tuple) else i
                          for i in indices]
        if not index_list:
            raise ChareError("a chare array needs at least one element")
        if pe_map is None:
            pe_map = round_robin_map(index_list, len(self.pes))
        array = ChareArray(self, cls, index_list, pe_map, name=name)
        self.arrays.append(array)
        return array

    def create_node_group(self, cls: type[NodeGroup] = NodeGroup,
                          *args: _t.Any, **kwargs: _t.Any) -> NodeGroup:
        """Create a node group (one instance: we simulate one node)."""
        group = cls(*args, **kwargs)
        group._bind(self, (0,), 0, None)
        self.node_groups.append(group)
        return group

    # -- messaging ------------------------------------------------------------------

    def send(self, target: Chare, entry_name: str, *args: _t.Any,
             nbytes: int = 0, **kwargs: _t.Any) -> Message:
        """Asynchronously invoke ``target.entry_name(*args)``.

        The message lands on the target's PE run queue after the delivery
        latency; interception and execution happen in the converse loop.
        """
        if target.runtime is not self:
            raise ChareError(f"{target!r} does not belong to this runtime")
        spec = target.entry_spec(entry_name)
        msg = Message(target, spec, args, kwargs, nbytes=nbytes,
                      created_at=self.env.now)
        self.messages_sent += 1
        pe = self.pes[target.pe_id]
        if self.message_latency > 0:
            self.env.timeout(self.message_latency).add_callback(
                lambda _ev: pe.run_queue.put(msg))
        else:
            pe.run_queue.put(msg)
        return msg

    # -- load balancing ---------------------------------------------------------

    def migrate(self, chare: Chare, new_pe: int) -> None:
        """Move a chare to another PE.

        "Objects do not migrate at anytime, they migrate only when load
        balancing explicitly moves them" (§III-A): messages sent after the
        migration route to the new PE; in-flight deliveries complete where
        they are.
        """
        if chare.runtime is not self:
            raise ChareError(f"{chare!r} does not belong to this runtime")
        if not 0 <= new_pe < len(self.pes):
            raise RuntimeModelError(f"no PE {new_pe}")
        chare.pe_id = new_pe

    def rebalance(self, array: ChareArray) -> dict[tuple[int, ...], int]:
        """Greedy LPT rebalancing of one array from measured loads.

        Uses each chare's cumulative entry-method execution time (the
        instrumented load Charm++'s load balancers consume) and resets the
        measurements afterwards.  Returns the new index -> PE map.
        """
        from repro.runtime.loadbalance import GreedyLoadBalancer

        loads = {idx: chare._measured_load
                 for idx, chare in array.elements.items()}
        mapping = GreedyLoadBalancer(len(self.pes)).rebalance(loads)
        for idx, pe_id in mapping.items():
            chare = array.elements[idx]
            chare.pe_id = pe_id
            chare._measured_load = 0.0
        return mapping

    def reducer(self, expected: int, *,
                combiner: _t.Callable[[list], _t.Any] | None = None,
                name: str = "reduction") -> Reducer:
        return Reducer(self.env, expected, combiner=combiner, name=name)

    # -- driving ------------------------------------------------------------------

    def run_until(self, event: Event) -> _t.Any:
        """Advance the simulation until ``event`` fires; returns its value."""
        return self.env.run(until=event)

    def shutdown(self) -> None:
        """Stop all PE schedulers (drains pending run-queue items first)."""
        if not self._running:
            return
        self._running = False
        for pe in self.pes:
            pe.run_queue.put(STOP)
        self.env.run()

    # -- stats ---------------------------------------------------------------------

    def total_busy_time(self) -> float:
        return sum(pe.busy_time for pe in self.pes)

    def total_overhead_time(self) -> float:
        return sum(pe.overhead_time for pe in self.pes)

    def __repr__(self) -> str:
        return (f"<CharmRuntime pes={len(self.pes)} arrays={len(self.arrays)} "
                f"sent={self.messages_sent}>")
