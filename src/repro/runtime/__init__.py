"""A Charm++-flavoured tasking runtime over the simulated machine.

Implements the pieces of the Charm++/Converse stack the paper builds on
(§III-A): over-decomposed *chares* organised in chare arrays, *entry
methods* with the ``[prefetch]`` attribute and data-dependence annotations,
a per-PE *converse scheduler* that delivers messages, and the interception
hook the paper adds in front of delivery.

The actual out-of-core scheduling strategies live in :mod:`repro.core`;
this package is deliberately strategy-agnostic.
"""

from repro.runtime.message import Message
from repro.runtime.entry import EntrySpec, entry
from repro.runtime.chare import Chare, ChareArray, NodeGroup
from repro.runtime.pe import PE
from repro.runtime.reduction import Reducer
from repro.runtime.loadbalance import block_map, round_robin_map, GreedyLoadBalancer
from repro.runtime.runtime import CharmRuntime

__all__ = [
    "Message",
    "EntrySpec", "entry",
    "Chare", "ChareArray", "NodeGroup",
    "PE", "Reducer",
    "block_map", "round_robin_map", "GreedyLoadBalancer",
    "CharmRuntime",
]
