"""The per-PE converse scheduler loop.

"Tasks are picked up in FIFO order from the run queue and scheduled."
(§IV-B)  The run queue carries both plain messages and prefetched
:class:`~repro.runtime.interception.ReadyTask`s; interception happens right
before delivery, exactly where the paper hooks Converse.
"""

from __future__ import annotations

import inspect
import typing as _t

from repro.errors import EntryMethodError
from repro.obs import hooks as _oh
from repro.race import hooks as _rh
from repro.runtime.interception import ReadyTask, RetryFetch
from repro.runtime.message import Message
from repro.runtime.pe import PE
from repro.trace.events import TraceCategory

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import CharmRuntime

__all__ = ["STOP", "converse_scheduler", "deliver"]


class _Stop:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<STOP>"


#: sentinel that shuts a PE scheduler down
STOP = _Stop()


def deliver(runtime: "CharmRuntime", pe: PE, message: Message,
            task: _t.Any = None) -> _t.Generator:
    """Execute one entry method on ``pe`` (generator; runs in the PE loop)."""
    chare = message.target
    spec = message.entry
    message.delivered_at = runtime.env.now
    pe.messages_delivered += 1
    if _rh.tracker is not None:
        _rh.tracker.on_deliver(pe, message, task)

    started = runtime.env.now
    if _oh.collector is not None:
        # begin is published before the entry runs so messages sent from
        # inside it can parent on this span (causal send -> execute edges)
        _oh.collector.on_execute_begin(pe.id, message, task, started)
    runtime.current_pe_id = pe.id
    chare._exec_pe_id = pe.id
    result = spec.func(chare, *message.args, **message.kwargs)
    if inspect.isgenerator(result):
        result = yield from result
    elif result is not None and not inspect.isgenerator(result):
        # plain (zero-sim-time) entry method: nothing to drive
        pass
    elapsed = runtime.env.now - started
    pe.note_busy(elapsed)
    pe.tasks_executed += 1
    chare._measured_load += elapsed
    if runtime.tracer.enabled:
        # guard here, not in record(): the lane/label f-strings are the
        # expensive part on the hot path (mirrors the hook-slot discipline)
        runtime.tracer.record(f"pe{pe.id}", TraceCategory.EXECUTE,
                              started, runtime.env.now,
                              label=f"{chare.label}.{spec.name}")
    if _oh.collector is not None:
        _oh.collector.on_execute_end(pe.id, message, task, started,
                                     runtime.env.now,
                                     f"{chare.label}.{spec.name}")

    if task is not None and runtime.interceptor is not None:
        post_started = runtime.env.now
        yield from runtime.interceptor.post_process(pe, task)
        pe.note_overhead(runtime.env.now - post_started)
    return result


def converse_scheduler(runtime: "CharmRuntime", pe: PE) -> _t.Generator:
    """The scheduler loop bound to one PE (one simulated process)."""
    pe.started_at = runtime.env.now
    while True:
        item = yield pe.run_queue.get()
        if item is STOP:
            break
        if isinstance(item, ReadyTask):
            yield from deliver(runtime, pe, item.message, task=item.task)
            continue
        if isinstance(item, RetryFetch):
            if runtime.interceptor is not None:
                started = runtime.env.now
                yield from runtime.interceptor.retry(pe)
                pe.note_overhead(runtime.env.now - started)
            continue
        if not isinstance(item, Message):
            raise EntryMethodError(
                f"pe{pe.id}: unexpected run-queue item {item!r}")
        interceptor = runtime.interceptor
        if (interceptor is not None and not item.intercepted
                and interceptor.wants(item)):
            item.intercepted = True
            started = runtime.env.now
            yield from interceptor.intercept(pe, item)
            pe.note_overhead(runtime.env.now - started)
            continue
        yield from deliver(runtime, pe, item)
    pe.stopped_at = runtime.env.now
