"""Reductions and barriers across chare collections.

Iterative Charm++ applications coordinate through contribute/reduction
cycles; Stencil3D's "20 iterations" driver uses one reducer per sweep to
detect that every chare finished its kernel before starting the next.
"""

from __future__ import annotations

import typing as _t

from repro.errors import RuntimeModelError
from repro.sim.environment import Environment
from repro.sim.events import Event

__all__ = ["Reducer"]


class Reducer:
    """Counts ``expected`` contributions, then fires ``done`` with them.

    Supports an optional combiner (e.g. ``sum``/``max``) applied to the
    contributed values; with no combiner the values list is delivered.
    """

    def __init__(self, env: Environment, expected: int, *,
                 combiner: _t.Callable[[list], _t.Any] | None = None,
                 name: str = "reduction"):
        if expected <= 0:
            raise RuntimeModelError(
                f"reducer {name!r}: expected contributions must be > 0")
        self.env = env
        self.name = name
        self.expected = expected
        self.combiner = combiner
        self.values: list = []
        self.done: Event = env.event(name=f"{name}.done")

    @property
    def received(self) -> int:
        return len(self.values)

    @property
    def complete(self) -> bool:
        return self.done.triggered

    def contribute(self, value: _t.Any = None) -> None:
        """Add one contribution; fires ``done`` on the last one."""
        if self.complete:
            raise RuntimeModelError(
                f"reducer {self.name!r}: contribute after completion "
                f"({self.expected} already received)")
        self.values.append(value)
        if len(self.values) == self.expected:
            result = (self.combiner(self.values) if self.combiner is not None
                      else list(self.values))
            self.done.succeed(result)

    def __repr__(self) -> str:
        return (f"<Reducer {self.name} {self.received}/{self.expected}"
                f"{' done' if self.complete else ''}>")
