"""Processing Entities: one worker scheduler per physical core.

Each PE owns the paper's two queue types (§IV-B):

* the **run queue** — "tasks that are ready to be scheduled by the Converse
  scheduler... picked up in FIFO order";
* the **wait queue** — "tasks that need data to be prefetched", one per PE
  so "the IO thread can serve same number of requests for each wait queue
  at a time, thereby serving all PEs equally".

The run queue doubles as the converse message queue: plain messages and
ready OOC tasks are both delivered through it, which is exactly how the
paper's interception layers over Converse.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.machine.cpu import Core
from repro.race import hooks as _rh
from repro.sim.environment import Environment
from repro.sim.resources import Store
from repro.sim.sync import Lock

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["PE"]


class PE:
    """One worker processing entity bound to a physical core."""

    def __init__(self, env: Environment, pe_id: int, core: Core):
        self.env = env
        self.id = pe_id
        self.core = core
        #: converse queue: messages + ready OOC tasks, FIFO
        self.run_queue = Store(env, name=f"pe{pe_id}.runq")
        #: tasks parked until their data is prefetched
        self.wait_queue: deque = deque()
        #: protects the wait queue (cooperative, but contention is traced)
        self.wait_lock = Lock(env, name=f"pe{pe_id}.waitlock")
        self.scheduler_process: "Process | None" = None
        # -- accounting -------------------------------------------------------
        self.busy_time = 0.0          # executing entry methods
        self.overhead_time = 0.0      # pre/post-processing on this PE
        self.tasks_executed = 0
        self.messages_delivered = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    # -- wait queue helpers (FIFO, as the paper specifies) ---------------------

    def wait_enqueue(self, task: _t.Any) -> None:
        if _rh.tracker is not None:
            _rh.tracker.on_handoff_put(task)
        self.wait_queue.append(task)

    def wait_requeue_front(self, task: _t.Any) -> None:
        """Put a task back at the head (IO thread could not fetch it yet)."""
        if _rh.tracker is not None:
            _rh.tracker.on_handoff_put(task)
        self.wait_queue.appendleft(task)

    def wait_dequeue(self) -> _t.Any | None:
        if self.wait_queue:
            task = self.wait_queue.popleft()
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_get(task)
            return task
        return None

    @property
    def wait_depth(self) -> int:
        return len(self.wait_queue)

    # -- accounting -------------------------------------------------------------

    def note_busy(self, seconds: float) -> None:
        self.busy_time += seconds

    def note_overhead(self, seconds: float) -> None:
        self.overhead_time += seconds

    @property
    def wall_time(self) -> float:
        """Scheduler lifetime (start to stop, or to 'now' while running)."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.env.now
        return end - self.started_at

    @property
    def idle_time(self) -> float:
        """Wall time not spent executing or in pre/post-processing."""
        return max(0.0, self.wall_time - self.busy_time - self.overhead_time)

    def __repr__(self) -> str:
        return (f"<PE {self.id} core={self.core.core_id} "
                f"runq={len(self.run_queue)} waitq={len(self.wait_queue)}>")
