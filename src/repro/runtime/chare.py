"""Chares, chare arrays and node groups (paper §III-A).

"CHARM++ requires for work to be over-decomposed in work units called
chares... there are more work units/chares than number of processors."
Over-decomposition is the mechanism that lets the runtime keep the *reduced*
working set (one wave of chares) inside the 16 GB HBM even when the *total*
working set is far larger.
"""

from __future__ import annotations

import typing as _t
from itertools import count

from repro.errors import ChareError
from repro.mem.block import DataBlock
from repro.runtime.entry import EntrySpec, collect_entry_specs

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import CharmRuntime

__all__ = ["Chare", "ChareArray", "NodeGroup"]

_chare_ids = count()


class Chare:
    """Base class for application work units.

    Subclasses declare entry methods with :func:`repro.runtime.entry.entry`
    and data blocks with :meth:`declare_block` (the ``CkIOHandle`` member
    declaration of §IV-A).
    """

    _entry_specs: dict[str, EntrySpec] = {}

    def __init_subclass__(cls, **kwargs: _t.Any) -> None:
        super().__init_subclass__(**kwargs)
        cls._entry_specs = collect_entry_specs(cls)

    def __init__(self) -> None:
        self.cid = next(_chare_ids)
        self.runtime: "CharmRuntime | None" = None
        self.index: tuple[int, ...] = ()
        self.pe_id: int = -1
        self.array: "ChareArray | None" = None
        #: blocks declared by this chare, in declaration order
        self.blocks: list[DataBlock] = []
        #: cumulative entry-method execution time (drives load balancing)
        self._measured_load = 0.0

    # -- wiring (done by the runtime at insertion) ----------------------------

    def _bind(self, runtime: "CharmRuntime", index: tuple[int, ...],
              pe_id: int, array: "ChareArray | None") -> None:
        self.runtime = runtime
        self.index = index
        self.pe_id = pe_id
        self.array = array

    @property
    def label(self) -> str:
        idx = ",".join(map(str, self.index))
        return f"{type(self).__name__}[{idx}]"

    def entry_spec(self, name: str) -> EntrySpec:
        try:
            return self._entry_specs[name]
        except KeyError:
            raise ChareError(
                f"{type(self).__name__} has no entry method {name!r}") from None

    # -- application-facing helpers -----------------------------------------

    def declare_block(self, name: str, nbytes: int, *,
                      payload: _t.Any = None) -> DataBlock:
        """Declare a ``CkIOHandle``-style data block owned by this chare.

        The block is registered with the runtime's block registry; *initial
        placement* is the active strategy's job and happens when the
        application is launched.
        """
        if self.runtime is None:
            raise ChareError(
                f"declare_block before {self.label} was inserted into the runtime")
        block = DataBlock(f"{self.label}.{name}", nbytes,
                          payload=payload, owner=self)
        self.runtime.machine.registry.register(block)
        self.blocks.append(block)
        return block

    def kernel(self, flops: float, reads: _t.Sequence[DataBlock] = (),
               writes: _t.Sequence[DataBlock] = (), *,
               traffic_scale: float = 1.0) -> _t.Generator:
        """Run a compute kernel on this chare's PE (generator; ``yield from``)."""
        if self.runtime is None:
            raise ChareError("kernel() on an unbound chare")
        # Use the PE whose converse loop is executing us (set by deliver):
        # with the node-level run queue option a ready task may run on a PE
        # other than the chare's home.
        pe = self.runtime.pes[getattr(self, "_exec_pe_id", self.pe_id)]
        result = yield from self.runtime.machine.run_kernel_on_blocks(
            pe.core, flops, reads, writes, traffic_scale=traffic_scale)
        return result

    def send(self, entry_name: str, *args: _t.Any, nbytes: int = 0,
             **kwargs: _t.Any) -> None:
        """Send a message to *this* chare (self-sends are common in Charm++)."""
        if self.runtime is None:
            raise ChareError("send() on an unbound chare")
        self.runtime.send(self, entry_name, *args, nbytes=nbytes, **kwargs)

    def __repr__(self) -> str:
        return f"<{self.label} pe={self.pe_id}>"


class ChareArray:
    """An indexed collection of chares distributed over the PEs."""

    def __init__(self, runtime: "CharmRuntime", cls: type[Chare],
                 indices: _t.Sequence[tuple[int, ...]],
                 pe_map: _t.Mapping[tuple[int, ...], int],
                 name: str = ""):
        self.runtime = runtime
        self.cls = cls
        self.name = name or cls.__name__
        self.elements: dict[tuple[int, ...], Chare] = {}
        for index in indices:
            chare = cls()
            chare._bind(runtime, index, pe_map[index], self)
            self.elements[index] = chare

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> _t.Iterator[Chare]:
        return iter(self.elements.values())

    def __getitem__(self, index: tuple[int, ...] | int) -> Chare:
        if isinstance(index, int):
            index = (index,)
        try:
            return self.elements[index]
        except KeyError:
            raise ChareError(f"{self.name} has no element {index}") from None

    def send(self, index: tuple[int, ...] | int, entry_name: str,
             *args: _t.Any, nbytes: int = 0, **kwargs: _t.Any) -> None:
        """Send a message to one element."""
        self.runtime.send(self[index], entry_name, *args,
                          nbytes=nbytes, **kwargs)

    def broadcast(self, entry_name: str, *args: _t.Any, nbytes: int = 0,
                  **kwargs: _t.Any) -> None:
        """Send a message to every element (deterministic index order)."""
        for index in sorted(self.elements):
            self.runtime.send(self.elements[index], entry_name, *args,
                              nbytes=nbytes, **kwargs)

    def __repr__(self) -> str:
        return f"<ChareArray {self.name} n={len(self.elements)}>"


class NodeGroup(Chare):
    """A chare with one instance per node, used for node-level caching.

    The paper's MatMul "use[s] a nodegroup in CHARM++ which allows caching
    of data at node-level" to share read-only A/B blocks across chares.  On
    our single simulated node a NodeGroup is a singleton whose blocks are
    visible to every PE.
    """

    def __init__(self) -> None:
        super().__init__()
        #: shared read-only cache: key -> DataBlock
        self.shared: dict[_t.Any, DataBlock] = {}

    def share_block(self, key: _t.Any, nbytes: int, *,
                    payload: _t.Any = None) -> DataBlock:
        """Get-or-create a node-shared block (refcounted like any other)."""
        if key not in self.shared:
            block = self.declare_block(f"shared{key}", nbytes, payload=payload)
            self.shared[key] = block
        return self.shared[key]
