"""Multi-node clusters: the paper's second future-work direction.

"We will also perform comparisons ... in multi-node cluster settings."

A :class:`Cluster` instantiates N independent KNL-class nodes (each with
its own runtime, OOC manager and strategy) inside **one** simulation
environment, and connects them with a fabric modelled as fluid links (one
ingress and one egress port per node, Omni-Path-class defaults).  Remote
messages are charged latency + fair-share bandwidth on both endpoints'
ports, so fabric contention emerges the same way memory contention does.

:class:`ClusterStencil` partitions a Stencil3D grid into 1-D slabs, one
per node; interior ghost exchanges stay node-local (converse messages)
while slab-boundary exchanges cross the fabric.  Every node schedules its
slab out-of-core with its own strategy instance — demonstrating that the
paper's runtime composes to clusters with zero changes to the scheduling
layer.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.stencil3d import StencilChare, StencilConfig
from repro.core.api import BuiltRuntime, OOCRuntimeBuilder
from repro.errors import ConfigError
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork
from repro.units import GiB, MiB

__all__ = ["FabricConfig", "Cluster", "ClusterStencil", "ClusterStencilResult"]


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Inter-node network parameters (Omni-Path-class defaults)."""

    #: per-node injection/ejection bandwidth, B/s
    link_bandwidth: float = 12.5e9      # ~100 Gb/s
    #: one-way message latency, seconds
    latency: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.latency < 0:
            raise ConfigError("invalid fabric parameters")


class Cluster:
    """N independent nodes + a fabric, in one simulation."""

    def __init__(self, n_nodes: int, *, fabric: FabricConfig | None = None,
                 builder_factory: _t.Callable[[], OOCRuntimeBuilder]
                 | None = None,
                 fluid_solver: str | None = None,
                 **builder_kwargs: _t.Any):
        if n_nodes < 1:
            raise ConfigError("a cluster needs at least one node")
        self.env = Environment()
        self.fabric_config = fabric if fabric is not None else FabricConfig()
        self.fabric = FluidNetwork(self.env, solver=fluid_solver)
        self.nodes: list[BuiltRuntime] = []
        builder_kwargs.setdefault("fluid_solver", fluid_solver)
        for rank in range(n_nodes):
            if builder_factory is not None:
                builder = builder_factory()
            else:
                builder = OOCRuntimeBuilder(**builder_kwargs)
            self.nodes.append(builder.build_into(self.env))
            self.fabric.add_link(f"n{rank}.out",
                                 self.fabric_config.link_bandwidth)
            self.fabric.add_link(f"n{rank}.in",
                                 self.fabric_config.link_bandwidth)
        self.remote_messages = 0
        self.remote_bytes = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def send_remote(self, src: int, dst: int, nbytes: int,
                    deliver: _t.Callable[[], None]) -> None:
        """Ship ``nbytes`` from node ``src`` to ``dst``; call ``deliver``
        on arrival.  Charged on both the source egress and destination
        ingress fabric ports plus the one-way latency."""
        if src == dst:
            deliver()
            return
        self.remote_messages += 1
        self.remote_bytes += nbytes
        flow = self.fabric.start_flow(
            float(nbytes), [f"n{src}.out", f"n{dst}.in"])

        def after_flow(_ev):
            self.env.timeout(self.fabric_config.latency).add_callback(
                lambda _e: deliver())

        flow.done.add_callback(after_flow)


@dataclasses.dataclass
class ClusterStencilResult:
    """Timing of one multi-node Stencil3D run."""

    nodes: int
    iterations: int
    total_time: float
    iteration_times: list[float]
    remote_messages: int
    remote_bytes: int

    @property
    def mean_iteration_time(self) -> float:
        return (sum(self.iteration_times) / len(self.iteration_times)
                if self.iteration_times else 0.0)


class ClusterStencil:
    """Stencil3D partitioned into per-node slabs over a cluster.

    Each node holds ``config.total_bytes`` of grid (so the global problem
    is ``n_nodes`` times larger) and runs its own out-of-core schedule;
    slab faces are exchanged over the fabric between iterations.
    """

    def __init__(self, cluster: Cluster, config: StencilConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.apps = []
        from repro.apps.stencil3d import Stencil3D
        for built in cluster.nodes:
            self.apps.append(Stencil3D(built, config))
        # bytes crossing the fabric per neighbouring-node pair per iteration:
        # one slab face each way.  A slab face is the grid cross-section.
        slab_face = int((config.total_bytes ** (2 / 3)))
        self.face_bytes = max(slab_face, 1)

    def run(self) -> ClusterStencilResult:
        cfg = self.config
        start = self.env.now
        iteration_times: list[float] = []
        for it in range(cfg.iterations):
            t0 = self.env.now
            # 1. halo exchange across the fabric (neighbouring slabs),
            #    concurrent in both directions on every internal boundary
            pending = []
            for rank in range(len(self.cluster) - 1):
                for src, dst in ((rank, rank + 1), (rank + 1, rank)):
                    done = self.env.event(name=f"halo{it}:{src}->{dst}")
                    self.cluster.send_remote(src, dst, self.face_bytes,
                                             done.succeed)
                    pending.append(done)
            if pending:
                self.env.run(until=self.env.all_of(pending))
            # 2. every node runs one local iteration (they share the env,
            #    so these overlap in simulated time)
            reducers = []
            for app in self.apps:
                reducer = app.runtime.reducer(len(app.array),
                                              name=f"cluster-iter{it}")
                app.array.broadcast("exchange", reducer)
                reducers.append(reducer.done)
            self.env.run(until=self.env.all_of(reducers))
            iteration_times.append(self.env.now - t0)
        return ClusterStencilResult(
            nodes=len(self.cluster), iterations=cfg.iterations,
            total_time=self.env.now - start,
            iteration_times=iteration_times,
            remote_messages=self.cluster.remote_messages,
            remote_bytes=self.cluster.remote_bytes)
