"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ProcessKilled",
    "MemoryModelError",
    "CapacityError",
    "AllocationError",
    "BlockStateError",
    "RuntimeModelError",
    "ChareError",
    "EntryMethodError",
    "SchedulingError",
    "ConfigError",
    "ExperimentError",
    "LintError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still waiting.

    In this library a deadlock almost always means a scheduling bug: an IO
    thread that was never signalled, or a task whose dependence can never be
    prefetched because it is larger than the HBM.
    """

    def __init__(self, message: str, waiting: tuple[str, ...] = ()):
        super().__init__(message)
        #: names of the simulated processes that were still blocked
        self.waiting = waiting


class ProcessKilled(SimulationError):
    """Injected into a simulated process to terminate it prematurely."""


class MemoryModelError(ReproError):
    """Errors raised by the heterogeneous-memory substrate."""


class CapacityError(MemoryModelError):
    """An allocation would exceed a memory device's capacity."""

    def __init__(self, message: str, *, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = requested
        self.available = available


class AllocationError(MemoryModelError):
    """An allocator invariant was violated (double free, unknown handle...)."""


class BlockStateError(MemoryModelError):
    """A data block was used in a way its state machine forbids."""


class RuntimeModelError(ReproError):
    """Errors raised by the Charm++-like runtime substrate."""


class ChareError(RuntimeModelError):
    """Bad chare construction, indexing or messaging."""


class EntryMethodError(RuntimeModelError):
    """Bad entry-method declaration or invocation."""


class SchedulingError(RuntimeModelError):
    """The out-of-core scheduler reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid machine/experiment configuration."""


class ExperimentError(ReproError):
    """A benchmark experiment could not be executed as specified."""


class LintError(ReproError):
    """Errors raised by the :mod:`repro.lint` subsystem.

    :class:`repro.lint.findings.LintViolation` derives from this; catch
    ``LintError`` to handle sanitizer reports without importing lint.
    """
