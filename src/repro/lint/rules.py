"""Rule catalog for :mod:`repro.lint` and :mod:`repro.race`.

``REP1xx`` rules are emitted by the static dependence-declaration checker
(:mod:`repro.lint.static_checker`); ``REP2xx`` by the placement-state
model checker (:mod:`repro.race.model_checker`, run as part of the same
static pass); ``SAN2xx`` by the runtime invariant sanitizer
(:mod:`repro.lint.sanitizer`); ``RACE3xx`` by the happens-before race
detector and schedule explorer (:mod:`repro.race`).  The catalog is data,
not behaviour, so docs and the CLI ``--explain`` output cannot drift from
the implementation.
"""

from __future__ import annotations

import dataclasses

from repro.lint.findings import Severity

__all__ = ["Rule", "RULES", "rule", "STATIC_RULES", "SANITIZER_RULES",
           "RACE_RULES"]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, default severity, summary."""

    id: str
    severity: Severity
    title: str
    description: str


_ALL = [
    # -- static checker (declaration vs body cross-check, paper §IV-A) -------
    Rule("REP100", Severity.ERROR, "parse-error",
         "the file could not be parsed as python — nothing in it was "
         "checked"),
    Rule("REP101", Severity.ERROR, "undeclared-dependence",
         "a block attribute appears in self.kernel(reads=/writes=) but is "
         "not declared on the @entry annotation — the runtime will not "
         "prefetch it and refcount gating will not protect it"),
    Rule("REP102", Severity.ERROR, "intent-mismatch",
         "a dependence declared readonly appears in writes=, or one "
         "declared writeonly appears in reads= — eviction may write back "
         "stale data or skip a dirty block"),
    Rule("REP103", Severity.ERROR, "prefetch-without-deps",
         "an @entry(prefetch=True) declares no data dependences — there "
         "is nothing for the IO threads to prefetch"),
    Rule("REP104", Severity.WARNING, "dead-declaration",
         "a declared dependence is never used by any self.kernel() call "
         "in the entry body — it is fetched and refcounted for nothing"),
    Rule("REP105", Severity.ERROR, "duplicate-intent",
         "the same dependence name is declared with two intents on one "
         "entry"),
    Rule("REP106", Severity.ERROR, "duplicate-block-name",
         "two declare_block calls in one chare class use the same literal "
         "name — registry lookups and traces become ambiguous"),
    Rule("REP107", Severity.ERROR, "declare-in-prefetch-entry",
         "declare_block inside a [prefetch] entry — blocks must be "
         "declared in a setup entry, before finalize_placement()"),
    Rule("REP108", Severity.WARNING, "kernel-outside-prefetch",
         "self.kernel() inside an entry not annotated [prefetch] — the "
         "bandwidth-sensitive task is invisible to the OOC manager"),
    # -- bwlint static traffic inference (repro.lint.traffic) ----------------
    Rule("REP300", Severity.WARNING, "overdeclared-intent",
         "a dependence is declared readwrite but no kernel in the class "
         "ever writes it — eviction will write back a clean block and "
         "node-level sharing is disabled for nothing; declare it readonly"),
    Rule("REP301", Severity.WARNING, "dead-site",
         "a declared block is never touched by any kernel or entry — the "
         "allocation occupies tier capacity and shows up in placement "
         "decisions for no traffic"),
    Rule("REP302", Severity.WARNING, "writeonly-shared-site",
         "a node-group-shared block is declared writeonly by every "
         "referencing kernel and read by none — keeping it resident in "
         "HBM for sharing buys nothing"),
    Rule("REP303", Severity.ERROR, "use-before-fetch",
         "a declared dependence handle is never bound to a block site in "
         "its class — the prefetch phase has nothing to fetch and the "
         "kernel runs against an unbound handle"),
    Rule("REP304", Severity.ERROR, "static-footprint-exceeds-hbm",
         "the blocks one [prefetch] entry declares are simultaneously "
         "live and their static sizes already exceed the HBM tier "
         "capacity — no eviction order can make this task's working set "
         "fit"),
    Rule("REP305", Severity.WARNING, "unbounded-kernel-loop",
         "a while-loop with no inferable trip count wraps a kernel launch "
         "inside a [prefetch] entry — static traffic inference cannot "
         "bound the phase's byte volume; drive the loop from a config "
         "range instead"),
    Rule("REP306", Severity.ERROR, "conflicting-alias-intents",
         "two dependence handles in one entry are bound to the same block "
         "site with different intents — the runtime will pick one "
         "arbitrarily when refcounting and writeback cannot honour both"),
    # -- bwlint v2 phase-ordered analysis (repro.lint.phases) ----------------
    Rule("REP310", Severity.WARNING, "phase-dead-still-resident",
         "a block's last kernel touch is phases before the program ends, "
         "yet later phases need more HBM than the tier holds while the "
         "dead block stays resident — schedule an eviction at its last "
         "phase boundary"),
    Rule("REP311", Severity.ERROR, "cross-phase-intent-conflict",
         "a block is read in an earlier phase than any phase that writes "
         "it — the first read observes bytes no kernel has produced yet"),
    Rule("REP312", Severity.WARNING, "fetch-before-first-use",
         "a [prefetch] entry declares a dependence whose kernels in that "
         "phase never touch it while a later phase does — the fetch is "
         "scheduled phases early and holds HBM capacity across the gap"),
    Rule("REP313", Severity.ERROR, "phase-footprint-exceeds-hbm",
         "the distinct blocks declared by all [prefetch] entries of one "
         "phase exceed the HBM tier by their static sizes — the phase "
         "cannot run fully resident no matter the eviction order"),
    Rule("REP314", Severity.WARNING, "unreachable-entry",
         "an @entry method's name is never dispatched by any literal "
         "send/broadcast in the module although other entries are — the "
         "method (and any blocks only it declares) is dead code to the "
         "message graph"),
    # -- runtime sanitizer ("simsan") ----------------------------------------
    Rule("SAN201", Severity.ERROR, "refcount-leak",
         "a block still holds a non-zero refcount at quiescence — some "
         "task retained it and never released (pinned forever, so it can "
         "never be evicted)"),
    Rule("SAN202", Severity.ERROR, "use-after-evict",
         "a kernel or retain touched a block whose backing allocation is "
         "gone or which is mid-move — the simulated bytes do not exist "
         "where the task thinks they do"),
    Rule("SAN203", Severity.ERROR, "double-evict",
         "a block whose allocation is already dead was freed or moved "
         "again — the classic double-evict/double-free pair"),
    Rule("SAN204", Severity.ERROR, "capacity-conservation",
         "device byte accounting went out of bounds (used < 0 or "
         "used > capacity), or registry-visible residency exceeds the "
         "allocator's books"),
    Rule("SAN205", Severity.ERROR, "stuck-moving",
         "a block is still in the transient MOVING state at a quiescence "
         "point — a move was abandoned without rollback (the PR 1 bug "
         "class)"),
    Rule("SAN206", Severity.ERROR, "non-quiescent-shutdown",
         "wait queues, run queues or in-flight moves are non-empty at "
         "shutdown — pending waiters will never be served"),
    Rule("SAN207", Severity.ERROR, "refcount-underflow",
         "release() on a block whose refcount is already zero — a task "
         "released dependences it never retained"),
    Rule("SAN208", Severity.ERROR, "event-queue-conservation",
         "the environment's live-event counter disagrees with the entries "
         "actually stored at quiescence — the event core lost or "
         "double-counted a scheduled event"),
    # -- placement-state model checker (repro.race.model_checker) ------------
    Rule("REP200", Severity.ERROR, "raw-state-assignment",
         "a BlockState is assigned directly to .state outside DataBlock — "
         "placement must go through begin_move()/settle() so the "
         "INDDR→MOVING→INHBM protocol (and its sanitizer hooks) stays "
         "intact"),
    Rule("REP201", Severity.ERROR, "settle-to-moving",
         "settle(..., BlockState.MOVING) — settle() must bind a concrete "
         "placement; the transient MOVING state is entered only via "
         "begin_move()"),
    Rule("REP202", Severity.ERROR, "unguarded-eviction",
         "an eviction call whose victim is not guarded by an "
         "in_use/pinned check on any enclosing path — a block can be "
         "freed out from under a running kernel"),
    Rule("REP203", Severity.ERROR, "unsettled-move-exit",
         "a code path after begin_move() can leave the function without a "
         "settle() — the block would be stuck MOVING forever (the PR 1 "
         "bug class, now caught before runtime)"),
    Rule("REP204", Severity.ERROR, "move-outside-inflight",
         "a strategy calls the mover without begin_inflight() — "
         "concurrent fetchers cannot join the move and will double-move "
         "the block"),
    Rule("REP205", Severity.ERROR, "unchecked-fetch-result",
         "the result of fetch_task_blocks() is discarded — the task may "
         "be made ready with non-resident dependences"),
    # -- happens-before race detector + schedule explorer ("racesan") --------
    Rule("RACE301", Severity.ERROR, "data-race",
         "two conflicting accesses to one block with no happens-before "
         "path between them — a legal schedule exists where they overlap"),
    Rule("RACE302", Severity.ERROR, "writeonly-read",
         "a kernel reads a block its task declared writeonly — the "
         "declared intent the runtime schedules by is false"),
    Rule("RACE303", Severity.ERROR, "schedule-deadlock",
         "a permuted schedule deadlocked or left non-empty wait queues "
         "with no runnable task — progress depends on event-tie ordering"),
]

RULES: dict[str, Rule] = {r.id: r for r in _ALL}
STATIC_RULES: dict[str, Rule] = {r.id: r for r in _ALL if r.id.startswith("REP")}
SANITIZER_RULES: dict[str, Rule] = {r.id: r for r in _ALL if r.id.startswith("SAN")}
RACE_RULES: dict[str, Rule] = {r.id: r for r in _ALL if r.id.startswith("RACE")}


def rule(rule_id: str) -> Rule:
    """Look up a rule; unknown ids are a programming error."""
    return RULES[rule_id]
