"""bwlint — static memory-traffic inference over ``@entry`` kernels.

The runtime schedules by *declared* dependences; nothing before this pass
could derive what a kernel actually streams.  This module is an abstract
interpreter over the same parse the declaration checker uses: it
resolves each chare's ``CkIOHandle`` sites (``declare_block`` /
``share_block`` calls, including handles obtained from another chare's
accessor methods), evaluates their byte sizes symbolically from the very
``config`` expressions the apps build (dataclass field defaults,
``@property`` bodies, ``repro.units`` constants, driver ``send``/
``broadcast`` argument wiring), and attributes per-site read/write byte
volumes to every kernel launch — multiplied by the trip counts
:func:`repro.lint.dataflow.loop_nests` can bound.

Two consumers sit on top:

* rules ``REP300``–``REP306`` (emitted through the normal findings
  pipeline from :func:`check_tree`, which
  :func:`repro.lint.static_checker.check_source` calls);
* :mod:`repro.lint.guidance`, which folds the per-site volumes of a
  whole source tree into a canonical placement-guidance file.

Everything here is a *may*-analysis over one module's AST — no imports
of the analyzed code, no execution.  Whenever a size, intent or handle
does not resolve, the affected rule is suppressed rather than guessed,
mirroring the REP1xx unknown-suppression philosophy; the suppression
gates are deliberately strict so the shipped tree stays finding-free.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

from repro.lint.dataflow import (Loop, Sym, iter_loops, loop_nests,
                                 sym_add as _sym_add, sym_bin as _sym_bin,
                                 sym_mul as _sym_mul)
from repro.lint.callgraph import collect_kernel_uses
from repro.lint.callgraph import entry_signatures as _entry_signatures
from repro.lint.findings import Finding
from repro.lint.rules import STATIC_RULES
from repro.lint.static_checker import (_chare_classes, _EntryDecl,
                                       _is_self_call, _KernelUse,
                                       _module_entry_aliases,
                                       _parse_entry_decorator)
from repro.units import GiB

__all__ = ["AnalyzerCrash", "ModuleTraffic", "SiteTraffic", "analyze_tree",
           "check_tree", "DEFAULT_HBM_BYTES"]

#: paper machine: 16 GB MCDRAM.  REP304 is a *static* impossibility check,
#: so it uses the full-scale tier size, not any scaled-down CLI machine.
DEFAULT_HBM_BYTES = 16 * GiB

#: test hook: a class name that makes the analyzer raise mid-flight, so the
#: CLI's crash-to-exit-2 contract can be exercised without a real defect
_FORCE_CRASH: str | None = None


class AnalyzerCrash(Exception):
    """The traffic analyzer itself failed (not a lint verdict).

    Carries the offending file and function/class so the CLI can name
    them on exit code 2.
    """

    def __init__(self, file: str, function: str, cause: BaseException):
        self.file = file
        self.function = function
        self.cause = cause
        super().__init__(f"analyzer crash in {file}, function {function}: "
                         f"{type(cause).__name__}: {cause}")


def _finding(rule_id: str, message: str, file: str, line: int, *,
             chare: str = "", entry: str = "") -> Finding:
    spec = STATIC_RULES[rule_id]
    return Finding(rule=rule_id, severity=spec.severity, message=message,
                   file=file, line=line, chare=chare, entry=entry)


# ---------------------------------------------------------------------------
# symbolic values
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ConfigRef:
    """A value statically known to be an instance of a config dataclass."""

    cls: str


@dataclasses.dataclass(frozen=True)
class ChareRef:
    """A value statically known to be a chare / node-group instance."""

    cls: str


Value = _t.Union[Sym, ConfigRef, ChareRef]
_ScopeKey = _t.Union[str, tuple]


_BINOPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
           ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**"}


@dataclasses.dataclass
class _ConfigInfo:
    """Symbolically-evaluable surface of one dataclass config."""

    name: str
    fields: dict[str, ast.expr]
    props: dict[str, ast.expr]


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        if name == "dataclass":
            return True
    return False


def _config_info(cls: ast.ClassDef) -> _ConfigInfo:
    fields: dict[str, ast.expr] = {}
    props: dict[str, ast.expr] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            fields[node.target.id] = node.value
        elif isinstance(node, ast.FunctionDef):
            is_prop = any(isinstance(d, ast.Name) and d.id == "property"
                          for d in node.decorator_list)
            if not is_prop:
                continue
            # only straight-line single-return properties are evaluable
            returns = [s for s in node.body if isinstance(s, ast.Return)]
            has_flow = any(isinstance(s, (ast.For, ast.While, ast.If))
                           for s in node.body)
            if len(returns) == 1 and not has_flow \
                    and returns[0].value is not None:
                props[node.name] = returns[0].value
    return _ConfigInfo(cls.name, fields, props)


def _assign_defs(func: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> dict[str, ast.expr]:
    """Local single-assignment map, including parallel tuple unpacking."""
    defs: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                defs[target.id] = node.value
            elif isinstance(target, ast.Tuple) \
                    and isinstance(node.value, ast.Tuple) \
                    and len(target.elts) == len(node.value.elts):
                for t, v in zip(target.elts, node.value.elts):
                    if isinstance(t, ast.Name):
                        defs[t.id] = v
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            defs[node.target.id] = node.value
    return defs


class _Evaluator:
    """Restricted expression evaluator over one module's constants."""

    def __init__(self, tree: ast.Module):
        self.configs: dict[str, _ConfigInfo] = {}
        self.chare_names: set[str] = set()
        self.module_env: dict[str, Sym] = {}
        self._field_cache: dict[tuple[str, str], Sym | None] = {}
        self._field_stack: set[tuple[str, str]] = set()
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        import repro.units as _units

        self.chare_names = {c.name for c in _chare_classes(tree)}
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) \
                    and node.module == "repro.units":
                for item in node.names:
                    raw = getattr(_units, item.name, None)
                    if isinstance(raw, (int, float)):
                        self.module_env[item.asname or item.name] = \
                            Sym(item.name, float(raw))
            elif isinstance(node, ast.ClassDef):
                if _is_dataclass_decorated(node):
                    self.configs[node.name] = _config_info(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = self.eval(node.value, {})
                if isinstance(value, Sym) and value.known():
                    name = node.targets[0].id
                    self.module_env[name] = Sym(name, value.value)

    def annotation_value(self, ann: ast.expr | None) -> Value | None:
        name: str | None = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value
        if name is None:
            return None
        if name in self.configs:
            return ConfigRef(name)
        if name in self.chare_names:
            return ChareRef(name)
        return None

    def config_attr(self, cls: str, attr: str) -> Sym | None:
        key = (cls, attr)
        if key in self._field_cache:
            return self._field_cache[key]
        if key in self._field_stack:
            return None
        info = self.configs.get(cls)
        if info is None:
            return None
        expr = info.fields.get(attr)
        if expr is None:
            expr = info.props.get(attr)
        if expr is None:
            self._field_cache[key] = None
            return None
        self._field_stack.add(key)
        try:
            inner = self.eval(expr, {"self": ConfigRef(cls)})
        finally:
            self._field_stack.discard(key)
        value = inner.value if isinstance(inner, Sym) else None
        result = Sym(f"{cls}.{attr}", value)
        self._field_cache[key] = result
        return result

    def eval(self, expr: ast.expr,
             scope: _t.Mapping[_ScopeKey, Value],
             defs: _t.Mapping[str, ast.expr] | None = None,
             _depth: int = 0) -> Value | None:
        """Evaluate to a :class:`Sym`/ref, or None when unresolvable."""
        if _depth > 12:
            return None
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) \
                    or not isinstance(expr.value, (int, float)):
                return None
            return Sym(repr(expr.value), float(expr.value))
        if isinstance(expr, ast.Name):
            hit = scope.get(expr.id)
            if hit is not None:
                return hit
            if defs and expr.id in defs:
                return self.eval(defs[expr.id], scope, defs, _depth + 1)
            return self.module_env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self" \
                    and ("self", expr.attr) in scope:
                return scope[("self", expr.attr)]
            base = self.eval(expr.value, scope, defs, _depth + 1)
            if isinstance(base, ConfigRef):
                return self.config_attr(base.cls, expr.attr)
            return None
        if isinstance(expr, ast.BinOp):
            op = _BINOPS.get(type(expr.op))
            if op is None:
                return None
            left = self.eval(expr.left, scope, defs, _depth + 1)
            right = self.eval(expr.right, scope, defs, _depth + 1)
            if isinstance(left, Sym) and isinstance(right, Sym):
                return _sym_bin(op, left, right)
            return None
        if isinstance(expr, ast.UnaryOp):
            inner = self.eval(expr.operand, scope, defs, _depth + 1)
            if not isinstance(inner, Sym):
                return None
            if isinstance(expr.op, ast.USub):
                value = -inner.value if inner.known() else None
                return Sym(f"-{inner.expr}", value)
            if isinstance(expr.op, ast.UAdd):
                return inner
            return None
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
            # the ``int(...) or 1`` floor idiom
            left = self.eval(expr.values[0], scope, defs, _depth + 1)
            if isinstance(left, Sym) and left.known():
                if left.value:
                    return left
                return self.eval(expr.values[1], scope, defs, _depth + 1)
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            fn = expr.func.id
            args = [self.eval(a, scope, defs, _depth + 1)
                    for a in expr.args]
            if fn in {"int", "float", "round", "abs"} and len(args) == 1 \
                    and isinstance(args[0], Sym):
                inner = args[0]
                if not inner.known():
                    return inner
                raw = {"int": int, "float": float, "round": round,
                       "abs": abs}[fn](inner.value)
                return Sym(inner.expr, float(raw))
            if fn in {"min", "max"} and args \
                    and all(isinstance(a, Sym) and a.known() for a in args):
                syms = _t.cast("list[Sym]", args)
                picked = ({"min": min, "max": max}[fn])(
                    syms, key=lambda s: s.value)
                return picked
        return None

    def trip_evaluator(self, scope: _t.Mapping[_ScopeKey, Value],
                       defs: _t.Mapping[str, ast.expr]
                       ) -> _t.Callable[[ast.expr], Sym | None]:
        def evaluate(expr: ast.expr) -> Sym | None:
            out = self.eval(expr, scope, defs)
            return out if isinstance(out, Sym) else None
        return evaluate


# ---------------------------------------------------------------------------
# per-module structural analysis
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SiteTraffic:
    """One allocation site with its statically inferred traffic."""

    id: str
    cls: str
    name: str
    file: str
    line: int
    shared: bool
    size: Sym | None
    prefetch_declared: bool = False
    intents: set[str] = dataclasses.field(default_factory=set)
    intent_unknown: bool = False
    reads: Sym | None = None
    writes: Sym | None = None
    #: first-touch index across the module's prefetch entries (-1 = never)
    order: int = -1


@dataclasses.dataclass
class _EntryTraffic:
    """One entry method's declaration + kernel launches."""

    method: ast.FunctionDef
    decl: _EntryDecl
    uses: list[_KernelUse]
    scope: dict[_ScopeKey, Value]
    defs: dict[str, ast.expr]
    loops: list[Loop]


@dataclasses.dataclass
class _ChareTraffic:
    """Everything inferred about one chare class."""

    cls: ast.ClassDef
    tainted: bool = False
    sites: dict[str, SiteTraffic] = dataclasses.field(default_factory=dict)
    #: handle attr -> site id (fully resolved)
    bindings: dict[str, str] = dataclasses.field(default_factory=dict)
    #: handle attrs assigned something we could not resolve
    unresolved: set[str] = dataclasses.field(default_factory=set)
    #: non-handle self attrs (configs, foreign chares)
    attr_refs: dict[str, Value] = dataclasses.field(default_factory=dict)
    entries: list[_EntryTraffic] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ModuleTraffic:
    """Result of :func:`analyze_tree` over one module."""

    file: str
    findings: list[Finding]
    sites: dict[str, SiteTraffic]
    #: phase-ordered structure (:mod:`repro.lint.phases`); None only for
    #: results deserialized from pre-v2 layers that never carried one
    timeline: _t.Any = None


def _functions_with_class(tree: ast.Module) -> list[
        tuple[ast.ClassDef | None, ast.FunctionDef]]:
    out: list[tuple[ast.ClassDef | None, ast.FunctionDef]] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((node, _t.cast(ast.FunctionDef, sub)))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((None, _t.cast(ast.FunctionDef, node)))
    return out


def _class_attr_refs(cls: ast.ClassDef, ev: _Evaluator) -> dict[str, Value]:
    """``self.X`` attributes holding configs or chare handles."""
    refs: dict[str, Value] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        param_scope: dict[_ScopeKey, Value] = {}
        for arg in method.args.args[1:] + method.args.kwonlyargs:
            val = ev.annotation_value(arg.annotation)
            if val is not None:
                param_scope[arg.arg] = val
        for node in ast.walk(method):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in param_scope:
                refs[target.attr] = param_scope[value.id]
            elif isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and value.func.attr in ("create_array",
                                            "create_node_group") \
                    and value.args and isinstance(value.args[0], ast.Name) \
                    and value.args[0].id in ev.chare_names:
                refs[target.attr] = ChareRef(value.args[0].id)
    return refs


def _send_arg_map(tree: ast.Module, ev: _Evaluator,
                  class_refs: _t.Mapping[str, dict[str, Value]],
                  sigs: _t.Mapping[tuple[str, int],
                                   list[tuple[str, list[str]]]]
                  ) -> dict[tuple[str, str], list[Value | None]]:
    """(class, entry) -> per-parameter values wired by send/broadcast.

    Only unambiguous (entry name, arity) pairs are mapped; conflicting
    values from different call sites degrade to None per position.
    """
    out: dict[tuple[str, str], list[Value | None]] = {}
    for cls, func in _functions_with_class(tree):
        scope: dict[_ScopeKey, Value] = {}
        for arg in func.args.args + func.args.kwonlyargs:
            val = ev.annotation_value(arg.annotation)
            if val is not None:
                scope[arg.arg] = val
        if cls is not None:
            for attr, val in class_refs.get(cls.name, {}).items():
                scope[("self", attr)] = val
        defs = _assign_defs(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "broadcast")):
                continue
            name_idx = None
            for i, arg in enumerate(node.args[:2]):
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, str):
                    name_idx = i
                    break
            if name_idx is None:
                continue
            entry_name = node.args[name_idx].value  # type: ignore[attr-defined]
            entry_args = node.args[name_idx + 1:]
            matches = sigs.get((entry_name, len(entry_args)), [])
            if len(matches) != 1:
                continue
            target_cls, _params = matches[0]
            values = [ev.eval(a, scope, defs) for a in entry_args]
            key = (target_cls, entry_name)
            if key not in out:
                out[key] = values
            else:
                merged = out[key]
                for i, v in enumerate(values):
                    if merged[i] != v:
                        merged[i] = None
    return out


def _shared_site_name(key_expr: ast.expr,
                      param_map: _t.Mapping[str, ast.expr] | None = None
                      ) -> str | None:
    """First component of a ``share_block`` key, as a literal string."""
    if isinstance(key_expr, ast.Constant) \
            and isinstance(key_expr.value, str):
        return key_expr.value
    if isinstance(key_expr, ast.Tuple) and key_expr.elts:
        first = key_expr.elts[0]
        if isinstance(first, ast.Name) and param_map \
                and first.id in param_map:
            first = param_map[first.id]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _resolve_accessor(owner: str, cls: ast.ClassDef, method_name: str,
                      call: ast.Call) -> str | tuple[str, str, str] | None:
    """Resolve ``foreign.method(args)`` to a site id.

    Returns a final ``"Cls.name"`` id for ``return self.shared[key]``
    accessors, a deferred ``("attr", Cls, attr)`` for ``return self.X``
    accessors, or None.
    """
    target: ast.FunctionDef | None = None
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == method_name:
            target = node
            break
    if target is None:
        return None
    returns = [s for s in target.body if isinstance(s, ast.Return)]
    if len(returns) != 1 or returns[0].value is None:
        return None
    value = returns[0].value
    if isinstance(value, ast.Attribute) \
            and isinstance(value.value, ast.Name) \
            and value.value.id == "self":
        return ("attr", owner, value.attr)
    if isinstance(value, ast.Subscript) \
            and isinstance(value.value, ast.Attribute) \
            and value.value.attr == "shared" \
            and isinstance(value.value.value, ast.Name) \
            and value.value.value.id == "self":
        # map accessor params to the call's positional arguments so a
        # Name in the key tuple resolves to the caller's literal
        params = [a.arg for a in target.args.args[1:]]
        param_map = {p: a for p, a in zip(params, call.args)}
        name = _shared_site_name(value.slice, param_map)
        if name is not None:
            return f"{owner}.{name}"
    return None


def _analyze_chare(ct: _ChareTraffic, tree: ast.Module, ev: _Evaluator,
                   aliases: frozenset[str],
                   send_map: _t.Mapping[tuple[str, str],
                                        list[Value | None]],
                   filename: str) -> None:
    """Fill one :class:`_ChareTraffic` in (sites, bindings, entries)."""
    cls = ct.cls
    if _FORCE_CRASH and cls.name == _FORCE_CRASH:
        raise RuntimeError("forced analyzer crash (test hook)")
    ct.attr_refs = dict(_class_attr_refs(cls, ev).items())
    declared_literals: list[str] = []
    pending_alias: list[tuple[str, str]] = []
    deferred: list[tuple[str, tuple[str, str, str]]] = []
    module_classes = {c.name: c for c in ast.walk(tree)
                      if isinstance(c, ast.ClassDef)}

    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        decl: _EntryDecl | None = None
        for dec in method.decorator_list:
            decl = _parse_entry_decorator(dec, aliases)
            if decl is not None:
                break
        scope: dict[_ScopeKey, Value] = {}
        params = method.args.args[1:] + method.args.kwonlyargs
        for arg in params:
            val = ev.annotation_value(arg.annotation)
            if val is not None:
                scope[arg.arg] = val
        mapped = send_map.get((cls.name, method.name))
        if mapped is not None:
            positional = [a.arg for a in method.args.args[1:]]
            for pname, val in zip(positional, mapped):
                if pname not in scope and val is not None:
                    scope[pname] = val
        for attr, val in ct.attr_refs.items():
            scope[("self", attr)] = val
        defs = _assign_defs(method)
        in_prefetch = bool(decl is not None and decl.prefetch)

        def make_site(name: str, size_expr: ast.expr | None, line: int,
                      shared: bool) -> SiteTraffic:
            site_id = f"{cls.name}.{name}"
            size = None
            if size_expr is not None:
                got = ev.eval(size_expr, scope, defs)
                size = got if isinstance(got, Sym) else None
            if site_id in ct.sites:
                existing = ct.sites[site_id]
                if not shared:
                    ct.tainted = True  # duplicate literal declare names
                return existing
            site = SiteTraffic(id=site_id, cls=cls.name, name=name,
                               file=filename, line=line, shared=shared,
                               size=size, prefetch_declared=in_prefetch)
            ct.sites[site_id] = site
            return site

        for node in ast.walk(method):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if _is_self_call(call, "share_block", defs) and call.args:
                    name = _shared_site_name(call.args[0])
                    if name is not None:
                        size_expr = (call.args[1]
                                     if len(call.args) > 1 else None)
                        make_site(name, size_expr, call.lineno, shared=True)
                elif _is_self_call(call, "declare_block", defs) \
                        and call.args \
                        and isinstance(call.args[0], ast.Constant) \
                        and isinstance(call.args[0].value, str):
                    declared_literals.append(call.args[0].value)
                    make_site(call.args[0].value,
                              call.args[1] if len(call.args) > 1 else None,
                              call.lineno, shared=False)
                continue
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            attr, value = target.attr, node.value
            if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
                value = value.elt  # e.g. [vectors.x_block(c) for c in ...]
            if isinstance(value, ast.Call):
                call = value
                if _is_self_call(call, "declare_block", defs) and call.args \
                        and isinstance(call.args[0], ast.Constant) \
                        and isinstance(call.args[0].value, str):
                    declared_literals.append(call.args[0].value)
                    site = make_site(
                        call.args[0].value,
                        call.args[1] if len(call.args) > 1 else None,
                        call.lineno, shared=False)
                    ct.bindings[attr] = site.id
                elif _is_self_call(call, "share_block", defs) and call.args:
                    name = _shared_site_name(call.args[0])
                    if name is None:
                        ct.unresolved.add(attr)
                    else:
                        site = make_site(
                            name, call.args[1] if len(call.args) > 1 else
                            None, call.lineno, shared=True)
                        ct.bindings[attr] = site.id
                elif isinstance(call.func, ast.Attribute):
                    base = ev.eval(call.func.value, scope, defs)
                    resolved = None
                    if isinstance(base, ChareRef) \
                            and base.cls in module_classes:
                        resolved = _resolve_accessor(
                            base.cls, module_classes[base.cls],
                            call.func.attr, call)
                    if resolved is None:
                        ct.unresolved.add(attr)
                    elif isinstance(resolved, tuple):
                        deferred.append((attr, resolved))
                    else:
                        ct.bindings[attr] = resolved
                else:
                    ct.unresolved.add(attr)
            elif isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id == "self":
                pending_alias.append((attr, value.attr))
            elif isinstance(value, ast.Name) and value.id in scope \
                    and not isinstance(scope[value.id], Sym):
                ct.attr_refs[attr] = _t.cast(Value, scope[value.id])
            elif isinstance(value, ast.Constant):
                pass  # scalar counters/flags are not handles
            else:
                # anything else (a parameter, a list, a subscript) may be
                # an externally provided handle: suppress, don't guess
                ct.unresolved.add(attr)

        if decl is not None:
            attr_scope = {("self", a): v for a, v in ct.attr_refs.items()}
            uses = collect_kernel_uses(
                _t.cast(ast.FunctionDef, method), cls, aliases,
                ev=ev, attr_scope=attr_scope)
            loops = loop_nests(_t.cast(ast.FunctionDef, method),
                               ev.trip_evaluator(scope, defs))
            ct.entries.append(_EntryTraffic(
                method=_t.cast(ast.FunctionDef, method), decl=decl,
                uses=uses, scope=scope, defs=defs, loops=loops))

    # duplicate literal block names poison site identity for the class
    if len(declared_literals) != len(set(declared_literals)):
        ct.tainted = True
    for attr, source in pending_alias:
        if source in ct.bindings:
            ct.bindings[attr] = ct.bindings[source]
        elif source in ct.unresolved or source not in ct.attr_refs:
            ct.unresolved.add(attr)
    # deferred foreign ``return self.X`` accessors resolve in a second
    # module-level pass (the foreign class may be analyzed after us)
    ct._deferred = deferred  # type: ignore[attr-defined]


def _kernel_lines_in(node: ast.AST, uses: list[_KernelUse]) -> list[_KernelUse]:
    """Uses whose *anchor* (entry-body launch point) lies inside ``node``."""
    calls = {id(sub) for sub in ast.walk(node) if isinstance(sub, ast.Call)}
    return [u for u in uses
            if (u.anchor or u.call) is not None
            and id(u.anchor or u.call) in calls]


def _use_factor(entry: _EntryTraffic, use: _KernelUse,
                ev: _Evaluator) -> Sym:
    """traffic_scale x enclosing bounded-loop trip counts for one launch.

    Helper-derived uses arrive with the helper-context factor
    (traffic_scale × helper-internal trips) pre-folded by the summary
    analysis; entry-level loops around the helper call site multiply on
    top via the anchor.
    """
    factor = use.factor if use.factor is not None else Sym("1", 1.0)
    if use.factor is None and use.call is not None:
        for kw in use.call.keywords:
            if kw.arg == "traffic_scale":
                got = ev.eval(kw.value, entry.scope, entry.defs)
                if isinstance(got, Sym):
                    factor = got
    for loop in iter_loops(entry.loops):
        if loop.trip is not None and loop.trip.known() \
                and _kernel_lines_in(loop.node, [use]):
            factor = _sym_mul(factor, loop.trip)
    return factor


# ---------------------------------------------------------------------------
# rule emission
# ---------------------------------------------------------------------------


def _module_attr_loads(tree: ast.Module) -> set[str]:
    return {node.attr for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)}


def _attr_stores_outside(tree: ast.Module, cls: ast.ClassDef) -> set[str]:
    """Attribute names stored anywhere outside ``cls`` (test-harness
    wiring like ``chare.a = block`` suppresses unbound-handle findings)."""
    inside = {id(n) for n in ast.walk(cls)}
    return {node.attr for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Store)
            and id(node) not in inside}


def _emit_class_findings(ct: _ChareTraffic, tree: ast.Module,
                         filename: str,
                         attr_loads: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    cls = ct.cls
    if ct.tainted or not (ct.sites or ct.bindings):
        return findings
    any_unknown = any(
        e.decl.unknown_deps or any(u.unknown for u in e.uses)
        for e in ct.entries)
    prefetch_entries = [e for e in ct.entries if e.decl.prefetch]
    has_prefetch_kernels = any(e.uses for e in prefetch_entries)
    written = set()
    for e in ct.entries:
        for u in e.uses:
            written |= u.writes
    stores_outside = _attr_stores_outside(tree, cls)

    for e in prefetch_entries:
        name = e.method.name
        # REP305: unbounded loop around a kernel launch
        for loop in iter_loops(e.loops):
            if not loop.bounded and _kernel_lines_in(loop.node, e.uses):
                findings.append(_finding(
                    "REP305",
                    "while-loop with no inferable trip count wraps a "
                    "kernel launch — static traffic inference cannot "
                    "bound this phase; drive the loop from a config "
                    "range", filename, loop.line,
                    chare=cls.name, entry=name))
        # REP304: statically impossible simultaneous footprint
        known_bytes = 0.0
        sized = []
        for attr in e.decl.deps:
            site = ct.sites.get(ct.bindings.get(attr, ""))
            if site is not None and site.size is not None \
                    and site.size.known():
                known_bytes += site.size.value
                sized.append(attr)
        if known_bytes > DEFAULT_HBM_BYTES:
            findings.append(_finding(
                "REP304",
                f"dependences {sized} are simultaneously live and their "
                f"static sizes sum to {known_bytes / GiB:.1f} GiB, above "
                f"the {DEFAULT_HBM_BYTES / GiB:.0f} GiB HBM tier — no "
                "eviction order makes this task fit", filename,
                e.decl.line, chare=cls.name, entry=name))
        # REP306: aliased handles with conflicting intents
        by_site: dict[str, dict[str, str]] = {}
        for attr, intent in e.decl.deps.items():
            site_id = ct.bindings.get(attr)
            if site_id is not None:
                by_site.setdefault(site_id, {})[attr] = intent
        for site_id, members in sorted(by_site.items()):
            if len(members) > 1 and len(set(members.values())) > 1:
                pairs = ", ".join(f"{a}={i}"
                                  for a, i in sorted(members.items()))
                findings.append(_finding(
                    "REP306",
                    f"handles {pairs} are aliases of the same block "
                    f"site {site_id!r} with conflicting intents",
                    filename, e.decl.line, chare=cls.name, entry=name))
        if any_unknown:
            continue
        # REP300: readwrite that is never written anywhere in the class
        for attr, intent in e.decl.deps.items():
            if intent != "readwrite" or attr in e.decl.duplicate_intents:
                continue
            if attr not in ct.bindings or attr in written:
                continue
            findings.append(_finding(
                "REP300",
                f"dependence {attr!r} is declared readwrite but no "
                "kernel in this class ever writes it — eviction will "
                "write back a clean block; declare it readonly",
                filename, e.decl.line, chare=cls.name, entry=name))
        # REP303: declared + used dependence whose handle is never bound.
        # Only meaningful when the class has a real setup phase (a site
        # declared outside any [prefetch] entry) — otherwise binding
        # plausibly happens somewhere the analyzer cannot see.
        if not any(not s.prefetch_declared for s in ct.sites.values()):
            continue
        used_here = set()
        for u in e.uses:
            used_here |= u.reads | u.writes
        for attr in sorted(set(e.decl.deps) & used_here):
            if attr in ct.bindings or attr in ct.unresolved \
                    or attr in ct.attr_refs or attr in stores_outside:
                continue
            findings.append(_finding(
                "REP303",
                f"dependence {attr!r} is declared and used but "
                f"self.{attr} is never bound to a block site in "
                f"{cls.name} — the prefetch phase has nothing to fetch "
                "for it", filename, e.decl.line,
                chare=cls.name, entry=name))

    # REP301: own chare-private site nothing in the module ever loads
    if has_prefetch_kernels and not any_unknown:
        bound_attrs = {attr: sid for attr, sid in ct.bindings.items()}
        for attr, site_id in sorted(bound_attrs.items()):
            site = ct.sites.get(site_id)
            if site is None or site.shared or site.prefetch_declared:
                continue
            if attr in attr_loads:
                continue
            findings.append(_finding(
                "REP301",
                f"block {site.name!r} (self.{attr}) is declared but "
                "nothing in this module ever reads the handle — a dead "
                "allocation occupying tier capacity", filename,
                site.line, chare=cls.name, entry=""))
    return findings


def _emit_shared_intent_findings(chares: list[_ChareTraffic],
                                 filename: str) -> list[Finding]:
    """REP302: shared sites declared writeonly by every referencing entry."""
    findings: list[Finding] = []
    intents: dict[str, set[str]] = {}
    unknown: set[str] = set()
    owners: dict[str, tuple[_ChareTraffic, SiteTraffic]] = {}
    for ct in chares:
        for site in ct.sites.values():
            if site.shared:
                owners[site.id] = (ct, site)
        for e in ct.entries:
            dirty = e.decl.unknown_deps or any(u.unknown for u in e.uses)
            for attr, intent in e.decl.deps.items():
                site_id = ct.bindings.get(attr)
                if site_id is None:
                    continue
                intents.setdefault(site_id, set()).add(intent)
                if dirty:
                    unknown.add(site_id)
    for site_id, (owner, site) in sorted(owners.items()):
        if owner.tainted or site_id in unknown:
            continue
        site.intents = intents.get(site_id, set())
        if site.intents == {"writeonly"}:
            findings.append(_finding(
                "REP302",
                f"shared block {site.name!r} is declared writeonly by "
                "every kernel that references it and read by none — "
                "node-level HBM sharing buys nothing here", filename,
                site.line, chare=site.cls, entry=""))
    return findings


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def analyze_tree(tree: ast.Module, filename: str = "<string>"
                 ) -> ModuleTraffic:
    """Run the full traffic analysis over one parsed module."""
    ev = _Evaluator(tree)
    aliases = _module_entry_aliases(tree)
    chare_nodes = _chare_classes(tree)
    class_refs = {c.name: _class_attr_refs(c, ev)
                  for c in ast.walk(tree) if isinstance(c, ast.ClassDef)}
    sigs = _entry_signatures(chare_nodes, aliases)
    send_map = _send_arg_map(tree, ev, class_refs, sigs)

    chares: list[_ChareTraffic] = []
    for cls in chare_nodes:
        ct = _ChareTraffic(cls=cls)
        try:
            _analyze_chare(ct, tree, ev, aliases, send_map, filename)
        except Exception as exc:  # noqa: BLE001 - crash contract
            raise AnalyzerCrash(filename, cls.name, exc) from exc
        chares.append(ct)

    # second pass: deferred foreign ``return self.X`` accessor bindings
    by_name = {ct.cls.name: ct for ct in chares}
    for ct in chares:
        for attr, (_tag, owner, fattr) in getattr(ct, "_deferred", []):
            other = by_name.get(owner)
            if other is not None and fattr in other.bindings:
                ct.bindings[attr] = other.bindings[fattr]
            else:
                ct.unresolved.add(attr)

    findings: list[Finding] = []
    attr_loads = _module_attr_loads(tree)
    for ct in chares:
        try:
            findings.extend(
                _emit_class_findings(ct, tree, filename, attr_loads))
        except Exception as exc:  # noqa: BLE001 - crash contract
            raise AnalyzerCrash(filename, ct.cls.name, exc) from exc
    findings.extend(_emit_shared_intent_findings(chares, filename))

    sites = _aggregate_traffic(chares, ev)
    # the phase-ordered layer (REP31x); lazy import — phases.py imports
    # this module's internals at its own top level
    from repro.lint.phases import analyze_phases
    try:
        timeline = analyze_phases(tree, filename, ev, chares, class_refs,
                                  aliases)
    except Exception as exc:  # noqa: BLE001 - crash contract
        raise AnalyzerCrash(filename, "<phases>", exc) from exc
    findings.extend(timeline.findings)
    return ModuleTraffic(file=filename, findings=findings, sites=sites,
                         timeline=timeline)


def _aggregate_traffic(chares: list[_ChareTraffic],
                       ev: _Evaluator) -> dict[str, SiteTraffic]:
    """Fold kernel launches into per-site read/write byte volumes."""
    sites: dict[str, SiteTraffic] = {}
    for ct in chares:
        for site in ct.sites.values():
            sites[site.id] = site
    touch_order = 0
    for ct in chares:
        if ct.tainted:
            continue
        for e in ct.entries:
            if not e.decl.prefetch:
                continue
            for attr, intent in e.decl.deps.items():
                site = sites.get(ct.bindings.get(attr, ""))
                if site is not None:
                    site.intents.add(intent)
                    if site.order < 0:
                        site.order = touch_order
                        touch_order += 1
            for use in e.uses:
                factor = _use_factor(e, use, ev)
                for attr in sorted(use.reads):
                    site = sites.get(ct.bindings.get(attr, ""))
                    if site is not None and site.size is not None:
                        site.reads = _sym_add(
                            site.reads, _sym_mul(site.size, factor))
                for attr in sorted(use.writes):
                    site = sites.get(ct.bindings.get(attr, ""))
                    if site is not None and site.size is not None:
                        site.writes = _sym_add(
                            site.writes, _sym_mul(site.size, factor))
                if use.unknown:
                    for attr in (set(e.decl.deps) - use.reads
                                 - use.writes):
                        site = sites.get(ct.bindings.get(attr, ""))
                        if site is not None:
                            site.intent_unknown = True
    return sites


def check_tree(tree: ast.Module, filename: str = "<string>"
               ) -> list[Finding]:
    """The REP3xx findings for one parsed module (bwlint rule surface)."""
    return analyze_tree(tree, filename).findings
