"""Runtime invariant sanitizer — "simsan" (the dynamic prong of repro.lint).

The DES invariants the scheduler's correctness rests on (§IV-B) are
scattered across asserts and guard clauses; PR 1 fixed a stuck-``MOVING``
rollback bug that none of them caught *at the violation site*.  The
sanitizer is an opt-in observer over the instrumented hook points in
:mod:`repro.mem.block`, :mod:`repro.mem.allocator`, :mod:`repro.mem.mover`,
:mod:`repro.machine.node` and :mod:`repro.core.manager` that detects:

* **refcount leaks** — blocks pinned forever at quiescence (SAN201);
* **use-after-evict** — kernel/retain on a block with no live backing
  allocation, or mid-move (SAN202);
* **double-evict / double-free** — freeing or moving an already-dead
  allocation (SAN203);
* **capacity-conservation violations** — device byte accounting out of
  ``[0, capacity]`` or registry residency exceeding the allocator's books
  (SAN204);
* **stuck MOVING** — the transient state outliving its move (SAN205);
* **non-quiescent shutdown** — pending wait/run-queue entries or
  in-flight moves at exit (SAN206);
* **refcount underflow** — releasing a block that holds no references
  (SAN207);
* **event-queue conservation drift** — the environment's live-entry
  counter disagreeing with the entries actually stored at quiescence,
  i.e. the event core lost or double-counted an event (SAN208).

Usage::

    san = SimSanitizer(mode="record")           # or "raise"
    san.install(built.manager)
    ... run the application ...
    san.check_quiescent()
    san.uninstall()
    assert not san.violations

``mode="raise"`` raises :class:`~repro.lint.findings.LintViolation` at the
violation site (a debugger stops where the invariant broke); ``record``
collects, for end-of-run reporting in the CLI.  When off — the default —
the hook sites cost one module-global ``is not None`` test (see the
sanitizer-overhead bench note in EXPERIMENTS.md).
"""

from __future__ import annotations

import typing as _t

from repro.lint import hooks
from repro.lint.findings import LintViolation, Violation

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import OOCManager
    from repro.mem.allocator import Allocation, Allocator
    from repro.mem.block import DataBlock
    from repro.mem.device import MemoryDevice

__all__ = ["SimSanitizer"]


class SimSanitizer:
    """Opt-in runtime invariant checker over the lint hook layer."""

    def __init__(self, *, mode: str = "record"):
        if mode not in ("record", "raise"):
            raise ValueError(f"mode must be 'record' or 'raise', got {mode!r}")
        self.mode = mode
        self.violations: list[Violation] = []
        self.manager: "OOCManager | None" = None
        #: block id -> simulated time its current move began
        self._moving_since: dict[int, float] = {}
        #: hook invocations observed (cheap liveness/overhead metric)
        self.events_observed = 0

    # -- lifecycle -----------------------------------------------------------

    def install(self, manager: "OOCManager | None" = None) -> "SimSanitizer":
        """Activate the hook layer; optionally bind an OOC manager.

        Binding a manager gives violations simulated-time stamps and
        strategy context, and enables the quiescence checks.
        """
        hooks.install(self)
        self.manager = manager
        if manager is not None:
            manager.sanitizer = self
        return self

    def bind(self, manager: "OOCManager") -> "SimSanitizer":
        """Late-bind a manager built after :meth:`install` was called."""
        self.manager = manager
        manager.sanitizer = self
        return self

    def uninstall(self) -> None:
        hooks.uninstall(self)
        if self.manager is not None and \
                getattr(self.manager, "sanitizer", None) is self:
            self.manager.sanitizer = None

    def __enter__(self) -> "SimSanitizer":
        return self.install()

    def __exit__(self, *exc: _t.Any) -> None:
        self.uninstall()

    # -- reporting ------------------------------------------------------------

    @property
    def _now(self) -> float | None:
        if self.manager is not None:
            return self.manager.env.now
        return None

    def _context(self) -> dict[str, _t.Any]:
        if self.manager is not None:
            return {"strategy": self.manager.strategy.name}
        return {}

    def _report(self, rule: str, message: str, *, block: str = "",
                **context: _t.Any) -> None:
        ctx = self._context()
        ctx.update(context)
        violation = Violation(rule=rule, message=message, block=block,
                              at=self._now, context=ctx)
        self.violations.append(violation)
        if self.mode == "raise":
            raise LintViolation(violation)

    def render(self) -> str:
        if not self.violations:
            return "simsan: 0 violations"
        lines = [v.render() for v in self.violations]
        lines.append(f"simsan: {len(self.violations)} violation(s)")
        return "\n".join(lines)

    # -- DataBlock hooks -------------------------------------------------------

    def on_retain(self, block: "DataBlock") -> None:
        self.events_observed += 1
        if block.device is not None and (
                block.allocation is None or not block.allocation.live):
            self._report(
                "SAN202",
                "retain() on a block with no live backing allocation",
                block=block.name, state=block.state.value,
                refcount=block.refcount)

    def on_release(self, block: "DataBlock") -> None:
        """Called *before* the decrement, so underflow is caught here."""
        self.events_observed += 1
        if block.refcount <= 0:
            self._report(
                "SAN207", "release() on a block with zero refcount",
                block=block.name, refcount=block.refcount)

    def on_begin_move(self, block: "DataBlock") -> None:
        self.events_observed += 1
        if block.bid in self._moving_since or block.moving:
            self._report(
                "SAN202", "begin_move() on a block that is already moving",
                block=block.name)
        now = self._now
        self._moving_since[block.bid] = now if now is not None else 0.0

    def on_settle(self, block: "DataBlock") -> None:
        self.events_observed += 1
        self._moving_since.pop(block.bid, None)

    # -- Allocator hooks -------------------------------------------------------

    def on_alloc(self, allocator: "Allocator", nbytes: int) -> None:
        self.events_observed += 1
        if not 0 <= allocator.used <= allocator.capacity:
            self._report(
                "SAN204",
                f"{allocator.name}: used {allocator.used}B outside "
                f"[0, {allocator.capacity}]B after allocating {nbytes}B",
                device=allocator.name)

    def on_free(self, allocator: "Allocator",
                allocation: "Allocation") -> None:
        """Called before the bookkeeping, so double-free is caught here."""
        self.events_observed += 1
        if not allocation.live:
            self._report(
                "SAN203",
                f"{allocator.name}: free of already-freed allocation "
                f"#{allocation.aid} ({allocation.nbytes}B)",
                device=allocator.name)
        elif allocator.used - allocation.nbytes < 0:
            self._report(
                "SAN204",
                f"{allocator.name}: freeing {allocation.nbytes}B would "
                f"drive used below zero ({allocator.used}B in books)",
                device=allocator.name)

    # -- DataMover hooks --------------------------------------------------------

    def on_move_start(self, block: "DataBlock", src: "MemoryDevice",
                      dst: "MemoryDevice") -> None:
        self.events_observed += 1
        if block.allocation is None or not block.allocation.live:
            self._report(
                "SAN203",
                f"move {src.name}->{dst.name} of a block whose source "
                "allocation is already dead",
                block=block.name, src=src.name, dst=dst.name)

    def on_move_end(self, block: "DataBlock", src: "MemoryDevice",
                    dst: "MemoryDevice") -> None:
        self.events_observed += 1
        if block.moving:
            self._report(
                "SAN205",
                f"move {src.name}->{dst.name} completed but the block is "
                "still MOVING (settle was skipped)",
                block=block.name, src=src.name, dst=dst.name)

    # -- kernel-access hook -------------------------------------------------------

    def on_kernel_access(self, reads: _t.Iterable["DataBlock"],
                         writes: _t.Iterable["DataBlock"]) -> None:
        self.events_observed += 1
        for mode, blocks in (("read", reads), ("write", writes)):
            for block in blocks:
                if block.allocation is None or not block.allocation.live:
                    self._report(
                        "SAN202",
                        f"kernel {mode} of a block with no live backing "
                        "allocation (use-after-evict)",
                        block=block.name, state=block.state.value)
                elif block.moving:
                    self._report(
                        "SAN202",
                        f"kernel {mode} of a block that is mid-move",
                        block=block.name)

    # -- whole-machine checks -------------------------------------------------------

    def check_now(self, manager: "OOCManager | None" = None) -> int:
        """Capacity-conservation sweep; returns new violation count."""
        mgr = manager or self.manager
        if mgr is None:
            return 0
        before = len(self.violations)
        per_device: dict[str, int] = {}
        for block in mgr.registry:
            if block.allocation is not None and block.allocation.live \
                    and block.device is not None:
                per_device[block.device.name] = (
                    per_device.get(block.device.name, 0)
                    + block.allocation.nbytes)
        for dev in mgr.topology.devices:
            used = dev.allocator.used
            if not 0 <= used <= dev.allocator.capacity:
                self._report(
                    "SAN204",
                    f"{dev.name}: allocator books {used}B outside "
                    f"[0, {dev.allocator.capacity}]B", device=dev.name)
            accounted = per_device.get(dev.name, 0)
            if accounted > used:
                self._report(
                    "SAN204",
                    f"{dev.name}: registry accounts {accounted}B resident "
                    f"but the allocator books only {used}B",
                    device=dev.name)
        return len(self.violations) - before

    def check_quiescent(self, manager: "OOCManager | None" = None, *,
                        drain: bool = True) -> int:
        """End-of-run sweep: leaks, stuck MOVING, pending waiters.

        Call at a quiescence point — after the last reduction completed,
        before (or instead of) runtime shutdown.  With ``drain`` (the
        default) the event queue is first run dry so asynchronous
        background evictions still in flight at the barrier settle; a
        block still ``MOVING`` after that has no pending event left to
        settle it and is genuinely stuck (the PR 1 bug class).  Returns
        the number of new violations.
        """
        mgr = manager or self.manager
        if mgr is None:
            return 0
        if drain:
            mgr.env.run()
        before = len(self.violations)
        env = mgr.env
        counter = getattr(env, "_live", None)
        if counter is not None and hasattr(env, "live_entry_count"):
            # Event-queue conservation: every schedule() incremented _live,
            # every dispatch/cancel decremented it, so at quiescence the
            # counter must equal the untriggered entries actually stored.
            # Checked only here — mid-batch the drain loop lags the counter
            # deliberately (see Environment._drain_all).
            stored = env.live_entry_count()
            if counter != stored:
                self._report(
                    "SAN208",
                    f"event-queue conservation drift: env._live={counter} "
                    f"but {stored} live entr(ies) stored — the event core "
                    "lost or double-counted an event",
                    counted=counter, stored=stored)
        for block in mgr.registry:
            if block.moving:
                since = self._moving_since.get(block.bid)
                self._report(
                    "SAN205",
                    "block stuck in MOVING at quiescence"
                    + (f" (since t={since:.6g})" if since is not None else ""),
                    block=block.name)
            if block.refcount > 0:
                self._report(
                    "SAN201",
                    f"refcount {block.refcount} at quiescence — the block "
                    "is pinned forever and can never be evicted",
                    block=block.name, refcount=block.refcount)
        if mgr._inflight:
            names = sorted(e.name or "?" for e in mgr._inflight.values())
            self._report(
                "SAN206",
                f"{len(mgr._inflight)} move(s) still in flight at shutdown",
                inflight=names)
        pending_wait = sum(len(pe.wait_queue) for pe in mgr.runtime.pes)
        if pending_wait:
            self._report(
                "SAN206",
                f"{pending_wait} task(s) still parked in wait queues at "
                "shutdown — their prefetch will never complete",
                waiting=pending_wait)
        pending_run = sum(len(pe.run_queue) for pe in mgr.runtime.pes)
        if pending_run:
            self._report(
                "SAN206",
                f"{pending_run} undelivered run-queue entr(ies) at shutdown",
                queued=pending_run)
        self.check_now(mgr)
        return len(self.violations) - before
