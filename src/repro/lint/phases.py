"""Phase-ordered traffic timeline over the bwlint message graph (v2).

A *phase* is one driver-level dispatch site: a literal ``send``/
``broadcast`` issued from non-chare code (the app driver), ordered by
source line.  Each phase owns the *closure* of chare entry methods
reachable from its root entry through entry-to-entry message edges
(:func:`repro.lint.callgraph.build_call_graph`), and its trip count is
the product of the known trips of the driver loops enclosing the
dispatch — the same symbolic :class:`Sym` evaluator the per-site volume
inference uses, so ``for it in range(cfg.iterations)`` around a
broadcast makes the phase repeat ``cfg.iterations`` times.

On top of the timeline sit the per-(site, phase) read/write volumes and
the site *liveness interval* (first phase that declares or touches a
site → last one), which :mod:`repro.lint.guidance` serializes as
GuidanceFile v2 and :class:`~repro.core.strategies.phase_guided.
PhaseGuidedStrategy` replays at runtime.

Rules ``REP310``–``REP314`` are emitted here.  The whole family is
suppressed when any ``send``/``broadcast`` in the module carries a
non-literal entry name — a may-analysis cannot order phases it cannot
see — mirroring the REP1xx/REP3xx unknown-suppression philosophy.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

from repro.lint.callgraph import CallGraph, Dispatch, build_call_graph
from repro.lint.dataflow import Sym, iter_loops, loop_nests, sym_add, sym_mul
from repro.lint.findings import Finding
from repro.lint.rules import STATIC_RULES

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.traffic import _ChareTraffic, _EntryTraffic, _Evaluator

__all__ = ["Phase", "PhaseTimeline", "analyze_phases"]


def _finding(rule_id: str, message: str, file: str, line: int, *,
             chare: str = "", entry: str = "") -> Finding:
    spec = STATIC_RULES[rule_id]
    return Finding(rule=rule_id, severity=spec.severity, message=message,
                   file=file, line=line, chare=chare, entry=entry)


@dataclasses.dataclass
class Phase:
    """One driver dispatch site and the entry closure it activates."""

    index: int
    label: str
    line: int
    #: product of known enclosing driver-loop trips; None when any
    #: enclosing loop's trip count did not resolve
    trips: Sym | None
    #: ``"Cls.entry"`` ids in the message closure, sorted
    entries: tuple[str, ...]


@dataclasses.dataclass
class PhaseTimeline:
    """Phase-ordered traffic structure for one module."""

    file: str
    phases: list[Phase]
    findings: list[Finding]
    #: True when non-literal sends forced the analysis to stand down
    suppressed: bool
    #: site id -> {phase index -> (reads, writes)} (per-visit volumes)
    site_traffic: dict[str, dict[int, tuple[Sym | None, Sym | None]]]
    #: site id -> phase indices where a [prefetch] entry declares it
    site_declared: dict[str, set[int]]

    def interval(self, site_id: str) -> tuple[int, int] | None:
        """(first, last) phase that declares or touches ``site_id``."""
        touched = set(self.site_traffic.get(site_id, ()))
        touched |= self.site_declared.get(site_id, set())
        if not touched:
            return None
        return min(touched), max(touched)


def _contains(outer: ast.AST, node: ast.AST) -> bool:
    marker = id(node)
    return any(id(sub) == marker for sub in ast.walk(outer))


def _dispatch_trips(d: Dispatch, ev: "_Evaluator",
                    class_refs: _t.Mapping[str, _t.Mapping]) -> Sym | None:
    """Known trip product of the driver loops enclosing one dispatch."""
    from repro.lint.traffic import _assign_defs

    scope: dict = {}
    for arg in d.func.args.args + d.func.args.kwonlyargs:
        val = ev.annotation_value(arg.annotation)
        if val is not None:
            scope[arg.arg] = val
    if d.caller_cls is not None:
        for attr, val in class_refs.get(d.caller_cls, {}).items():
            scope[("self", attr)] = val
    defs = _assign_defs(d.func)
    trips = Sym("1", 1.0)
    for loop in iter_loops(loop_nests(d.func,
                                      ev.trip_evaluator(scope, defs))):
        if not _contains(loop.node, d.call):
            continue
        if loop.trip is None or not loop.trip.known():
            return None
        trips = sym_mul(trips, loop.trip)
    return trips


def _closure(cg: CallGraph, d: Dispatch) -> list[tuple[str, str]]:
    """Entry keys reachable from one dispatch via message edges."""
    queue = [key for key in d.keys() if key in cg.entries]
    seen: set[tuple[str, str]] = set()
    while queue:
        key = queue.pop()
        if key in seen:
            continue
        seen.add(key)
        for sub in cg.entry_dispatches.get(key, ()):
            queue.extend(k for k in sub.keys() if k in cg.entries)
    return sorted(seen)


def analyze_phases(tree: ast.Module, filename: str, ev: "_Evaluator",
                   chares: "list[_ChareTraffic]",
                   class_refs: _t.Mapping[str, _t.Mapping],
                   aliases: frozenset[str]) -> PhaseTimeline:
    """Build the phase timeline + REP31x findings for one module."""
    from repro.lint.traffic import DEFAULT_HBM_BYTES, _use_factor
    from repro.units import GiB

    cg = build_call_graph(tree, aliases)
    suppressed = cg.unknown_sends > 0

    entry_map: dict[tuple[str, str], tuple["_ChareTraffic",
                                           "_EntryTraffic"]] = {}
    for ct in chares:
        for e in ct.entries:
            entry_map[(ct.cls.name, e.method.name)] = (ct, e)
    sites = {site.id: site
             for ct in chares for site in ct.sites.values()}

    phases: list[Phase] = []
    site_traffic: dict[str, dict[int, tuple[Sym | None, Sym | None]]] = {}
    site_declared: dict[str, set[int]] = {}
    #: phase -> site id -> (readish, writish) declared intents
    phase_intents: list[dict[str, tuple[bool, bool]]] = []
    #: phase -> declarations for the footprint sum (site id -> decl line)
    phase_decl_lines: list[dict[str, int]] = []
    closures: list[list[tuple[str, str]]] = []

    for d in cg.driver_dispatches:
        keys = _closure(cg, d)
        label = (f"{d.targets[0]}.{d.entry}" if len(d.targets) == 1
                 else d.entry)
        phase = Phase(index=len(phases), label=label, line=d.line,
                      trips=_dispatch_trips(d, ev, class_refs),
                      entries=tuple(f"{c}.{e}" for c, e in keys))
        phases.append(phase)
        closures.append(keys)
        intents: dict[str, tuple[bool, bool]] = {}
        decl_lines: dict[str, int] = {}
        for key in keys:
            hit = entry_map.get(key)
            if hit is None:
                continue
            ct, e = hit
            if ct.tainted:
                continue
            if e.decl.prefetch:
                for attr, intent in e.decl.deps.items():
                    site_id = ct.bindings.get(attr)
                    if site_id is None or site_id not in sites:
                        continue
                    site_declared.setdefault(site_id, set()).add(phase.index)
                    decl_lines.setdefault(site_id, e.decl.line)
                    readish, writish = intents.get(site_id, (False, False))
                    intents[site_id] = (
                        readish or intent in ("readonly", "readwrite"),
                        writish or intent in ("writeonly", "readwrite"))
            for use in e.uses:
                factor = _use_factor(e, use, ev)
                for attr in sorted(use.reads | use.writes):
                    site = sites.get(ct.bindings.get(attr, ""))
                    if site is None or site.size is None:
                        continue
                    volume = sym_mul(site.size, factor)
                    table = site_traffic.setdefault(site.id, {})
                    reads, writes = table.get(phase.index, (None, None))
                    if attr in use.reads:
                        reads = sym_add(reads, volume)
                    if attr in use.writes:
                        writes = sym_add(writes, volume)
                    table[phase.index] = (reads, writes)
        phase_intents.append(intents)
        phase_decl_lines.append(decl_lines)

    timeline = PhaseTimeline(file=filename, phases=phases, findings=[],
                             suppressed=suppressed,
                             site_traffic=site_traffic,
                             site_declared=site_declared)
    if suppressed or not phases:
        return timeline

    # strict per-class gate for the precision rules: any unknown anywhere
    # in a class's entries makes its sites ineligible (may-analysis)
    exact_cls = {
        ct.cls.name for ct in chares
        if not ct.tainted and not any(
            e.decl.unknown_deps or any(u.unknown for u in e.uses)
            for e in ct.entries)}
    findings = timeline.findings

    # REP314: entry never named by any literal dispatch (driver present).
    # Any string constant equal to the entry name suppresses — dispatch
    # also happens through entry_spec("name")-style lookups the message
    # graph does not model, and a may-analysis must not guess.
    named = {node.value for node in ast.walk(tree)
             if isinstance(node, ast.Constant)
             and isinstance(node.value, str)}
    for (cls_name, entry_name), method in sorted(cg.entries.items()):
        if entry_name not in named:
            findings.append(_finding(
                "REP314",
                f"entry {entry_name!r} is never dispatched by any literal "
                "send/broadcast in this module — it is unreachable in the "
                "message graph", filename, method.lineno,
                chare=cls_name, entry=entry_name))

    # REP311: first read phase strictly before the first write phase
    read_phases: dict[str, set[int]] = {}
    write_phases: dict[str, set[int]] = {}
    for p, intents in enumerate(phase_intents):
        for site_id, (readish, writish) in intents.items():
            if readish:
                read_phases.setdefault(site_id, set()).add(p)
            if writish:
                write_phases.setdefault(site_id, set()).add(p)
    for site_id in sorted(set(read_phases) & set(write_phases)):
        site = sites[site_id]
        if site.cls not in exact_cls or site.intent_unknown:
            continue
        first_read = min(read_phases[site_id])
        first_write = min(write_phases[site_id])
        if first_read < first_write:
            findings.append(_finding(
                "REP311",
                f"block {site.name!r} is read in phase {first_read} "
                f"({phases[first_read].label}) but first written in phase "
                f"{first_write} ({phases[first_write].label}) — the read "
                "observes bytes no kernel has produced", filename,
                site.line, chare=site.cls))

    # REP312: declared dependence unused in its phase, touched later
    for p, keys in enumerate(closures):
        for key in keys:
            hit = entry_map.get(key)
            if hit is None:
                continue
            ct, e = hit
            if ct.tainted or not e.decl.prefetch or e.decl.unknown_deps \
                    or any(u.unknown for u in e.uses):
                continue
            used: set[str] = set()
            for u in e.uses:
                used |= u.reads | u.writes
            for attr in sorted(set(e.decl.deps) - used):
                site_id = ct.bindings.get(attr)
                if site_id is None:
                    continue
                later = [q for q in site_traffic.get(site_id, ())
                         if q > p]
                if later:
                    findings.append(_finding(
                        "REP312",
                        f"dependence {attr!r} is fetched for phase {p} "
                        f"({phases[p].label}) but first touched by a "
                        f"kernel in phase {min(later)} "
                        f"({phases[min(later)].label}) — the block holds "
                        "HBM capacity across the gap", filename,
                        e.decl.line, chare=ct.cls.name,
                        entry=e.method.name))

    # REP313: distinct declared blocks of one phase exceed the HBM tier
    for p, decl_lines in enumerate(phase_decl_lines):
        known = 0.0
        names = []
        for site_id in sorted(decl_lines):
            site = sites[site_id]
            if site.size is not None and site.size.known():
                known += site.size.value
                names.append(site_id)
        if known > DEFAULT_HBM_BYTES:
            findings.append(_finding(
                "REP313",
                f"phase {p} ({phases[p].label}) declares blocks "
                f"{names} whose static sizes sum to "
                f"{known / GiB:.1f} GiB, above the "
                f"{DEFAULT_HBM_BYTES / GiB:.0f} GiB HBM tier — the phase "
                "cannot run fully resident", filename, phases[p].line))

    # REP310: phase-dead block resident while later phases overflow HBM
    last_traffic = {site_id: max(table)
                    for site_id, table in site_traffic.items() if table}
    module_last = max(last_traffic.values(), default=-1)
    for site_id, last in sorted(last_traffic.items()):
        if last >= module_last:
            continue
        site = sites[site_id]
        if site.cls not in exact_cls:
            continue
        if site.size is None or not site.size.known():
            continue
        if any(q > last for q in site_declared.get(site_id, ())):
            continue  # a later phase re-declares it: still live
        worst = 0.0
        for q in range(last + 1, module_last + 1):
            footprint = sum(
                sites[s].size.value for s in phase_decl_lines[q]
                if s != site_id and sites[s].size is not None
                and sites[s].size.known())
            worst = max(worst, footprint)
        if worst + site.size.value > DEFAULT_HBM_BYTES:
            findings.append(_finding(
                "REP310",
                f"block {site.name!r} is last touched in phase {last} "
                f"({phases[last].label}) but later phases need "
                f"{worst / GiB:.1f} GiB of HBM while it stays resident "
                f"({site.size.value / GiB:.1f} GiB) — schedule an "
                "eviction at the phase boundary", filename, site.line,
                chare=site.cls))

    return timeline
