"""Structured lint findings and violation reports.

Both prongs of :mod:`repro.lint` speak the same vocabulary:

* the **static checker** emits :class:`Finding`s — one per declaration
  defect, each carrying a rule id from :mod:`repro.lint.rules`, a severity
  and a ``file:line`` anchor;
* the **runtime sanitizer** emits :class:`Violation`s — the same shape,
  but anchored to the offending block / strategy context instead of a
  source location, and optionally *raised* at the violation site as a
  :class:`LintViolation` so a debugger stops exactly where the invariant
  broke.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.errors import LintError

__all__ = ["Severity", "Finding", "Violation", "LintReport", "LintViolation"]


class Severity(enum.Enum):
    """How bad a finding is; errors fail the lint gate, warnings do not."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One static-checker diagnostic, anchored to source."""

    rule: str
    severity: Severity
    message: str
    file: str
    line: int
    #: chare class / entry method the finding is about, when applicable
    chare: str = ""
    entry: str = ""

    def render(self) -> str:
        where = f"{self.file}:{self.line}"
        scope = ""
        if self.chare:
            scope = f" [{self.chare}{'.' + self.entry if self.entry else ''}]"
        return f"{where}: {self.rule} {self.severity.value}{scope}: {self.message}"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One runtime-sanitizer diagnostic, anchored to runtime state."""

    rule: str
    message: str
    #: block name the invariant broke on ("" for machine-wide invariants)
    block: str = ""
    #: simulated time of detection (None when no environment is attached)
    at: float | None = None
    #: extra structured context (strategy name, device, refcount, ...)
    context: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        at = f" t={self.at:.6g}" if self.at is not None else ""
        blk = f" block={self.block!r}" if self.block else ""
        ctx = "".join(f" {k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.rule}{at}{blk}: {self.message}{ctx}"


class LintViolation(LintError):
    """Raised by the sanitizer (in ``raise`` mode) at the violation site."""

    def __init__(self, violation: Violation):
        super().__init__(violation.render())
        self.violation = violation

    @property
    def rule(self) -> str:
        return self.violation.rule


class LintReport:
    """An ordered collection of findings with gate semantics."""

    def __init__(self, findings: _t.Iterable[Finding] = ()):
        self.findings: list[Finding] = list(findings)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: _t.Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def ok(self, *, strict: bool = False) -> bool:
        """True when the gate passes (no errors; no warnings if strict)."""
        if strict:
            return not self.findings
        return not self.errors

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> _t.Iterator[Finding]:
        return iter(self.findings)

    def __repr__(self) -> str:
        return (f"<LintReport errors={len(self.errors)} "
                f"warnings={len(self.warnings)}>")
