"""Interprocedural call-graph layer for bwlint (the v2 substrate).

Two related structures live here, both pure may-analyses over one
module's AST:

* **Method summaries** — :func:`collect_kernel_uses` resolves every
  ``self.kernel(...)`` launch reachable from an entry method through any
  depth of ``self.helper()`` calls.  Each non-entry helper gets a
  :class:`MethodSummary` (its transitive kernel launches with the
  traffic factor — ``traffic_scale`` × helper-internal bounded-loop
  trips — already folded in), computed bottom-up over the helper call
  graph.  Recursion is *widened*: a cycle keeps the reachable use set
  but drops every factor to an unknown :class:`Sym`, so volumes degrade
  to "known expression, unknown magnitude" instead of being silently
  dropped the way the old depth-limited inliner did.

* **The entry-method message graph** — :func:`build_call_graph` maps
  every literal ``send``/``broadcast`` dispatch site to its candidate
  chare entry methods (arity-matched against the module's entry
  signatures, name-matched as a fallback) and splits them into *driver*
  dispatches (from non-chare code: the phase roots) and *entry* edges
  (message chains between entries).  Dispatches with a non-literal
  entry name are counted, not guessed — the phase analyzer suppresses
  its whole rule family when any exist.

:mod:`repro.lint.phases` builds the phase timeline on top of the
message graph; :mod:`repro.lint.traffic` and the declaration checker
consume the summaries.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

from repro.lint.dataflow import Loop, Sym, iter_loops, loop_nests, sym_mul
from repro.lint.static_checker import (_block_attrs, _chare_classes,
                                       _class_helper_methods, _ENTRY_NAMES,
                                       _is_self_call, _is_self_expr,
                                       _KernelUse, _local_defs,
                                       _module_entry_aliases,
                                       _parse_entry_decorator)

__all__ = ["MethodSummary", "collect_kernel_uses", "class_summaries",
           "entry_signatures", "Dispatch", "CallGraph", "build_call_graph"]

_ONE = Sym("1", 1.0)


def _contains(outer: ast.AST, node: ast.AST) -> bool:
    marker = id(node)
    return any(id(sub) == marker for sub in ast.walk(outer))


def _loop_product(base: Sym, loops: list[Loop],
                  node: ast.Call | None) -> Sym:
    """Multiply in the known trip counts of loops enclosing ``node``."""
    if node is None:
        return base
    for loop in iter_loops(loops):
        if loop.trip is not None and loop.trip.known() \
                and _contains(loop.node, node):
            base = sym_mul(base, loop.trip)
    return base


# ---------------------------------------------------------------------------
# method summaries (kernel launches through helper chains)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _MethodBody:
    """One method's direct kernel launches and outgoing helper calls."""

    uses: list[_KernelUse]
    #: (call site node, helper name) for each self.<helper>() call
    calls: list[tuple[ast.Call, str]]
    loops: list[Loop]
    scope: dict
    defs: dict[str, ast.expr]


@dataclasses.dataclass
class MethodSummary:
    """Kernel launches transitively reachable from one helper method.

    Every use carries a pre-folded ``factor`` (``traffic_scale`` ×
    bounded-loop trips internal to the helper chain) and an ``anchor``
    inside the summarized method's body, re-anchored at each expansion.
    ``widened`` marks recursion: the use *set* is still complete over
    the cycle, but factors are unknown.
    """

    name: str
    uses: list[_KernelUse]
    widened: bool = False


def _scan_method(method: ast.FunctionDef,
                 helpers: _t.Mapping[str, ast.FunctionDef],
                 ev: _t.Any, attr_scope: _t.Mapping | None) -> _MethodBody:
    """Extract direct kernel launches + helper call sites from one body."""
    local_defs = _local_defs(method)
    scope: dict = dict(attr_scope or {})
    if ev is not None:
        for arg in method.args.args[1:] + method.args.kwonlyargs:
            val = ev.annotation_value(arg.annotation)
            if val is not None:
                scope.setdefault(arg.arg, val)
    loops = (loop_nests(method, ev.trip_evaluator(scope, local_defs))
             if ev is not None else [])
    uses: list[_KernelUse] = []
    calls: list[tuple[ast.Call, str]] = []
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        if _is_self_call(node, "kernel", local_defs):
            reads_expr: ast.expr | None = None
            writes_expr: ast.expr | None = None
            # kernel(flops, reads, writes, ...) — positional or keyword
            if len(node.args) >= 2:
                reads_expr = node.args[1]
            if len(node.args) >= 3:
                writes_expr = node.args[2]
            for kw in node.keywords:
                if kw.arg == "reads":
                    reads_expr = kw.value
                elif kw.arg == "writes":
                    writes_expr = kw.value
            reads, r_unknown = _block_attrs(reads_expr, local_defs)
            writes, w_unknown = _block_attrs(writes_expr, local_defs)
            uses.append(_KernelUse(line=node.lineno, reads=reads,
                                   writes=writes,
                                   unknown=r_unknown or w_unknown,
                                   call=node, anchor=node))
            continue
        fn = node.func
        # self-recursive calls stay in: _helper_summary must see the
        # back-edge to widen the cycle's factors to unknown
        if isinstance(fn, ast.Attribute) and fn.attr in helpers \
                and _is_self_expr(fn.value, local_defs):
            calls.append((node, fn.attr))
    return _MethodBody(uses=uses, calls=calls, loops=loops,
                       scope=scope, defs=local_defs)


def _launch_factor(use: _KernelUse, body: _MethodBody, ev: _t.Any) -> Sym:
    """traffic_scale × enclosing known trips for one direct launch."""
    factor = _ONE
    if ev is not None and use.call is not None:
        for kw in use.call.keywords:
            if kw.arg == "traffic_scale":
                got = ev.eval(kw.value, body.scope, body.defs)
                if isinstance(got, Sym):
                    factor = got
    return _loop_product(factor, body.loops, use.call)


def _helper_summary(name: str,
                    helpers: _t.Mapping[str, ast.FunctionDef],
                    ev: _t.Any, attr_scope: _t.Mapping | None,
                    cache: dict[str, MethodSummary],
                    visiting: frozenset[str]) -> MethodSummary:
    cached = cache.get(name)
    if cached is not None:
        return cached
    body = _scan_method(helpers[name], helpers, ev, attr_scope)
    uses = [dataclasses.replace(u, factor=_launch_factor(u, body, ev))
            for u in body.uses]
    widened = False
    for call, callee in body.calls:
        if callee in visiting or callee == name:
            widened = True  # recursion back-edge: widen, don't descend
            continue
        sub = _helper_summary(callee, helpers, ev, attr_scope, cache,
                              visiting | {name})
        widened |= sub.widened
        site = _loop_product(_ONE, body.loops, call)
        uses.extend(
            dataclasses.replace(u, anchor=call,
                                factor=sym_mul(u.factor or _ONE, site))
            for u in sub.uses)
    if widened:
        uses = [dataclasses.replace(u, factor=Sym("recursion", None))
                for u in uses]
        # a cycle member's summary depends on where the walk entered the
        # cycle; recompute per query instead of caching a truncated view
        return MethodSummary(name=name, uses=uses, widened=True)
    summary = MethodSummary(name=name, uses=uses, widened=False)
    cache[name] = summary
    return summary


def class_summaries(cls: ast.ClassDef | None,
                    aliases: frozenset[str] = _ENTRY_NAMES,
                    ev: _t.Any = None,
                    attr_scope: _t.Mapping | None = None
                    ) -> dict[str, MethodSummary]:
    """Summaries for every non-entry helper method of ``cls``."""
    helpers = _class_helper_methods(cls, aliases)
    cache: dict[str, MethodSummary] = {}
    return {name: _helper_summary(name, helpers, ev, attr_scope, cache,
                                  frozenset())
            for name in sorted(helpers)}


def collect_kernel_uses(func: ast.FunctionDef,
                        cls: ast.ClassDef | None = None,
                        aliases: frozenset[str] = _ENTRY_NAMES,
                        ev: _t.Any = None,
                        attr_scope: _t.Mapping | None = None
                        ) -> list[_KernelUse]:
    """Kernel calls reachable from ``func``, direct or through helpers.

    Direct launches keep ``factor=None`` — the traffic analyzer
    evaluates their ``traffic_scale`` in the entry's own scope (which
    carries send-wired parameter values summaries cannot see).
    Helper-derived launches arrive with the helper-context factor folded
    in and their ``anchor`` re-pointed at the entry-body call site, so
    entry-level loop containment still applies on top.

    ``ev`` is the traffic evaluator (duck-typed: ``eval`` /
    ``annotation_value`` / ``trip_evaluator``); without it factors stay
    1 and only the read/write/unknown sets are meaningful — all the
    declaration checker needs.
    """
    helpers = _class_helper_methods(cls, aliases)
    body = _scan_method(func, helpers, ev, attr_scope)
    uses = list(body.uses)
    cache: dict[str, MethodSummary] = {}
    for call, callee in body.calls:
        summary = _helper_summary(callee, helpers, ev, attr_scope, cache,
                                  frozenset({func.name}))
        uses.extend(dataclasses.replace(u, anchor=call)
                    for u in summary.uses)
    return uses


# ---------------------------------------------------------------------------
# entry-method message graph
# ---------------------------------------------------------------------------


def entry_signatures(chares: _t.Sequence[ast.ClassDef],
                     aliases: frozenset[str]
                     ) -> dict[tuple[str, int], list[tuple[str, list[str]]]]:
    """(entry name, arity) -> [(class, param names)] over all chares."""
    sigs: dict[tuple[str, int], list[tuple[str, list[str]]]] = {}
    for cls in chares:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if not any(_parse_entry_decorator(d, aliases)
                       for d in method.decorator_list):
                continue
            params = [a.arg for a in method.args.args[1:]]
            sigs.setdefault((method.name, len(params)), []).append(
                (cls.name, params))
    return sigs


@dataclasses.dataclass
class Dispatch:
    """One ``send``/``broadcast`` call site with a literal entry name."""

    entry: str
    line: int
    call: ast.Call
    #: enclosing class name (None for a module-level function)
    caller_cls: str | None
    caller_func: str
    #: the function whose body contains the call (loop containment)
    func: ast.FunctionDef
    #: candidate target chare classes, sorted
    targets: tuple[str, ...]

    def keys(self) -> list[tuple[str, str]]:
        return [(cls, self.entry) for cls in self.targets]


@dataclasses.dataclass
class CallGraph:
    """Message-dispatch graph over one module's chare entry methods."""

    #: (class, entry name) -> the decorated method node
    entries: dict[tuple[str, str], ast.FunctionDef]
    #: dispatches from non-chare code, in source order — the phase roots
    driver_dispatches: list[Dispatch]
    #: message edges out of each entry (incl. via its helper methods)
    entry_dispatches: dict[tuple[str, str], list[Dispatch]]
    #: send/broadcast calls whose entry name is not a literal string
    unknown_sends: int

    def dispatched_names(self) -> set[str]:
        """Entry names named by at least one literal dispatch."""
        names = {d.entry for d in self.driver_dispatches}
        for dispatches in self.entry_dispatches.values():
            names |= {d.entry for d in dispatches}
        return names

    def reachable(self) -> set[tuple[str, str]]:
        """Entries reachable from driver dispatches via message edges."""
        queue = [key for d in self.driver_dispatches
                 for key in d.keys() if key in self.entries]
        seen: set[tuple[str, str]] = set()
        while queue:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            for d in self.entry_dispatches.get(key, ()):
                queue.extend(k for k in d.keys() if k in self.entries)
        return seen


def _dispatches_in(func: ast.FunctionDef, cls_name: str | None,
                   sigs: _t.Mapping[tuple[str, int],
                                    list[tuple[str, list[str]]]]
                   ) -> tuple[list[Dispatch], int]:
    out: list[Dispatch] = []
    unknown = 0
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("send", "broadcast")):
            continue
        name: str | None = None
        name_idx = 0
        for i, arg in enumerate(node.args[:2]):
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name, name_idx = arg.value, i
                break
        if name is None:
            unknown += 1
            continue
        arity = len(node.args) - name_idx - 1
        matches = sigs.get((name, arity), [])
        if matches:
            targets = tuple(sorted({cls for cls, _ in matches}))
        else:  # arity mismatch (e.g. **kwargs): fall back to name match
            targets = tuple(sorted({cls for (n, _a), lst in sigs.items()
                                    if n == name for cls, _ in lst}))
        out.append(Dispatch(entry=name, line=node.lineno, call=node,
                            caller_cls=cls_name, caller_func=func.name,
                            func=func, targets=targets))
    return out, unknown


def _helper_closure(method: ast.FunctionDef,
                    helpers: _t.Mapping[str, ast.FunctionDef],
                    edges: _t.Mapping[str, list[str]]) -> list[str]:
    """Helper methods transitively callable from ``method``, sorted."""
    local_defs = _local_defs(method)
    queue = [node.func.attr for node in ast.walk(method)
             if isinstance(node, ast.Call)
             and isinstance(node.func, ast.Attribute)
             and node.func.attr in helpers
             and _is_self_expr(node.func.value, local_defs)]
    seen: set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        queue.extend(edges.get(name, []))
    return sorted(seen)


def build_call_graph(tree: ast.Module,
                     aliases: frozenset[str] | None = None) -> CallGraph:
    """Build the message graph for one parsed module."""
    if aliases is None:
        aliases = _module_entry_aliases(tree)
    chares = _chare_classes(tree)
    chare_names = {c.name for c in chares}
    sigs = entry_signatures(chares, aliases)

    entries: dict[tuple[str, str], ast.FunctionDef] = {}
    entry_dispatches: dict[tuple[str, str], list[Dispatch]] = {}
    driver_dispatches: list[Dispatch] = []
    unknown = 0

    for cls in chares:
        helpers = _class_helper_methods(cls, aliases)
        helper_disp: dict[str, list[Dispatch]] = {}
        helper_edges: dict[str, list[str]] = {}
        for name, method in sorted(helpers.items()):
            d, u = _dispatches_in(method, cls.name, sigs)
            helper_disp[name] = d
            unknown += u
            defs = _local_defs(method)
            helper_edges[name] = [
                node.func.attr for node in ast.walk(method)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in helpers and node.func.attr != name
                and _is_self_expr(node.func.value, defs)]
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if not any(_parse_entry_decorator(d, aliases)
                       for d in method.decorator_list):
                continue
            fn = _t.cast(ast.FunctionDef, method)
            key = (cls.name, method.name)
            entries[key] = fn
            d, u = _dispatches_in(fn, cls.name, sigs)
            unknown += u
            for helper in _helper_closure(fn, helpers, helper_edges):
                d.extend(helper_disp[helper])
            entry_dispatches[key] = d

    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name not in chare_names:
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    d, u = _dispatches_in(_t.cast(ast.FunctionDef, sub),
                                          node.name, sigs)
                    driver_dispatches.extend(d)
                    unknown += u
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            d, u = _dispatches_in(_t.cast(ast.FunctionDef, node), None, sigs)
            driver_dispatches.extend(d)
            unknown += u

    driver_dispatches.sort(key=lambda d: d.line)
    return CallGraph(entries=entries, driver_dispatches=driver_dispatches,
                     entry_dispatches=entry_dispatches,
                     unknown_sends=unknown)
