"""Sanitizer hook registry — the only lint module the hot paths import.

Instrumented call sites (block transitions, refcounts, allocator
bookkeeping, mover steps, kernel access) guard every hook with::

    from repro.lint import hooks as _hooks
    ...
    if _hooks.observer is not None:
        _hooks.observer.on_retain(self)

so the cost with no sanitizer installed is one module-global load and an
``is not None`` test — measured in the sanitizer-overhead bench and far
below the noise floor of the sim core.  This module is dependency-free on
purpose: importing it must never pull the rest of :mod:`repro.lint` (or
anything else) into the hot modules.
"""

from __future__ import annotations

import typing as _t

__all__ = ["observer", "install", "uninstall"]

#: the active observer (a :class:`repro.lint.sanitizer.SimSanitizer`), or
#: None when sanitizing is off — the default
observer: _t.Any = None


def install(obs: _t.Any) -> None:
    """Make ``obs`` the active observer; only one may be active."""
    global observer
    if observer is not None and observer is not obs:
        raise RuntimeError("a sanitizer observer is already installed")
    observer = obs


def uninstall(obs: _t.Any = None) -> None:
    """Remove the active observer (idempotent).

    Passing the observer makes removal safe against double-uninstall races
    in tests: only the currently-installed observer is removed.
    """
    global observer
    if obs is None or observer is obs:
        observer = None
