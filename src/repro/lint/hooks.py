"""Sanitizer hook slot — the only lint module the hot paths import.

Instrumented call sites (block transitions, refcounts, allocator
bookkeeping, mover steps, kernel access) guard every hook with::

    from repro.lint import hooks as _hooks
    ...
    if _hooks.observer is not None:
        _hooks.observer.on_retain(self)

so the cost with no sanitizer installed is one module-global load and an
``is not None`` test — measured in the sanitizer-overhead bench and far
below the noise floor of the sim core.  The slot is *shared*: the simsan
invariant sanitizer and the racesan happens-before detector both observe
these hooks and may be installed at the same time, in which case
``observer`` is a :class:`repro.hooks.FanOut` that forwards each hook to
every installed observer.  With a single observer the slot publishes the
observer itself, so the common case pays no dispatch indirection.

This module stays dependency-light on purpose: it imports only
:mod:`repro.hooks` (itself dependency-free), never the rest of
:mod:`repro.lint`, so importing it from hot modules is cheap.
"""

from __future__ import annotations

import typing as _t

from repro.hooks import HookSlot

__all__ = ["observer", "install", "uninstall"]

#: the active observer — a :class:`repro.lint.sanitizer.SimSanitizer`, a
#: :class:`repro.race.detector.RaceSanitizer`, or a fan-out over several —
#: or None when no sanitizer is installed (the default)
observer: _t.Any = None

_slot = HookSlot(__name__, "observer", kind="sanitizer observer")


def install(obs: _t.Any) -> None:
    """Add ``obs`` to the sanitizer slot (idempotent per observer)."""
    _slot.install(obs)


def uninstall(obs: _t.Any = None) -> None:
    """Remove ``obs`` from the slot; with ``None``, remove every observer.

    Passing the observer makes removal safe against double-uninstall races
    in tests: other observers sharing the slot stay installed.
    """
    _slot.uninstall(obs)
