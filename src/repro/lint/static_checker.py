"""Static dependence-declaration checker (paper §IV-A cross-check).

The paper's correctness contract is that every ``[prefetch]`` entry method
declares exactly the blocks its kernel touches, with truthful intents —
the runtime prefetches, refcounts and evicts *by declaration*, never by
observation.  This pass parses application source (no import, no
execution) and cross-checks each ``@entry(prefetch=..., readonly=[...],
readwrite=[...], writeonly=[...])`` declaration against the method body's
actual ``self.kernel(reads=[...], writes=[...])`` usage.

The body analysis is a *may-use* approximation: ``[self.b, self.c][:n]``
counts both ``b`` and ``c`` as possibly read (the STREAM app's
kernel-selection idiom), and ``[self.A] + list(self.x_blocks)`` resolves
through the local-variable and ``list()`` wrappers (the SpMV
data-dependent coupling idiom).  Expressions the extractor cannot resolve
mark the use-set *unknown*, which suppresses the rules that need
exactness (undeclared/dead) rather than guessing.

Rule ids and severities live in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import typing as _t

from repro.lint.dataflow import Sym
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import STATIC_RULES

__all__ = ["check_paths", "check_file", "check_source", "iter_python_files"]

#: class names that make a subclass chare-like without further evidence
_CHARE_ROOTS = {"Chare", "NodeGroup"}

#: names that always denote the entry decorator
_ENTRY_NAMES = frozenset({"entry"})


def _finding(rule_id: str, message: str, file: str, line: int, *,
             chare: str = "", entry: str = "") -> Finding:
    spec = STATIC_RULES[rule_id]
    return Finding(rule=rule_id, severity=spec.severity, message=message,
                   file=file, line=line, chare=chare, entry=entry)


# -- entry-decorator parsing ---------------------------------------------------


@dataclasses.dataclass
class _EntryDecl:
    """Parsed ``@entry(...)`` decoration on one method."""

    line: int
    prefetch: bool = False
    #: attr name -> intent string ("readonly" | "readwrite" | "writeonly")
    deps: dict[str, str] = dataclasses.field(default_factory=dict)
    #: same name declared under two intents: (name, line) pairs
    duplicate_intents: list[str] = dataclasses.field(default_factory=list)
    #: True when a dep list was not a literal list of strings
    unknown_deps: bool = False


def _module_entry_aliases(tree: ast.Module) -> frozenset[str]:
    """Module-level names bound to the ``entry`` decorator.

    Covers the alias blind spots: ``from ... import entry as kernel_entry``
    and ``my_entry = entry`` (or ``my_entry = runtime.entry``).  Aliases of
    aliases resolve transitively within the module body.
    """
    aliases = set(_ENTRY_NAMES)
    changed = True
    while changed:
        changed = False
        for node in tree.body:
            name: str | None = None
            if isinstance(node, ast.ImportFrom):
                for item in node.names:
                    if item.name == "entry" and item.asname \
                            and item.asname not in aliases:
                        aliases.add(item.asname)
                        changed = True
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = node.value
                if isinstance(value, ast.Name) and value.id in aliases:
                    name = node.targets[0].id
                elif isinstance(value, ast.Attribute) \
                        and value.attr == "entry":
                    name = node.targets[0].id
            if name is not None and name not in aliases:
                aliases.add(name)
                changed = True
    return frozenset(aliases)


def _decorator_is_entry(dec: ast.expr,
                        aliases: frozenset[str] = _ENTRY_NAMES) -> bool:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id in aliases
    if isinstance(target, ast.Attribute):
        return target.attr == "entry"
    return False


def _parse_entry_decorator(dec: ast.expr,
                           aliases: frozenset[str] = _ENTRY_NAMES
                           ) -> _EntryDecl | None:
    if not _decorator_is_entry(dec, aliases):
        return None
    decl = _EntryDecl(line=dec.lineno)
    if not isinstance(dec, ast.Call):
        return decl
    for kw in dec.keywords:
        if kw.arg == "prefetch":
            if isinstance(kw.value, ast.Constant):
                decl.prefetch = bool(kw.value.value)
            else:
                decl.unknown_deps = True
        elif kw.arg in ("readonly", "readwrite", "writeonly"):
            names = _literal_str_list(kw.value)
            if names is None:
                decl.unknown_deps = True
                continue
            for name in names:
                if name in decl.deps:
                    decl.duplicate_intents.append(name)
                decl.deps[name] = kw.arg
    return decl


def _literal_str_list(node: ast.expr) -> list[str] | None:
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return out


# -- kernel-argument extraction -------------------------------------------------

#: wrappers that pass their first argument's blocks through
_TRANSPARENT_CALLS = {"list", "tuple", "sorted", "reversed", "set"}


def _block_attrs(node: ast.expr | None,
                 local_defs: _t.Mapping[str, ast.expr],
                 _depth: int = 0) -> tuple[set[str], bool]:
    """``self.X`` attribute names an expression may evaluate to.

    Returns ``(attrs, unknown)``; ``unknown`` is True when part of the
    expression could not be resolved, making the set a lower bound.
    """
    if node is None or _depth > 20:
        return set(), node is not None
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return {node.attr}, False
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        attrs: set[str] = set()
        unknown = False
        for elt in node.elts:
            sub, sub_unknown = _block_attrs(elt, local_defs, _depth + 1)
            attrs |= sub
            unknown |= sub_unknown
        return attrs, unknown
    if isinstance(node, ast.Starred):
        return _block_attrs(node.value, local_defs, _depth + 1)
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in _TRANSPARENT_CALLS \
                and len(node.args) == 1:
            return _block_attrs(node.args[0], local_defs, _depth + 1)
        return set(), True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left, lu = _block_attrs(node.left, local_defs, _depth + 1)
        right, ru = _block_attrs(node.right, local_defs, _depth + 1)
        return left | right, lu or ru
    if isinstance(node, ast.Subscript):
        # A slice/index of a block list may use any element: may-use.
        return _block_attrs(node.value, local_defs, _depth + 1)
    if isinstance(node, ast.IfExp):
        body, bu = _block_attrs(node.body, local_defs, _depth + 1)
        orelse, ou = _block_attrs(node.orelse, local_defs, _depth + 1)
        return body | orelse, bu or ou
    if isinstance(node, ast.Name):
        if node.id in local_defs:
            return _block_attrs(local_defs[node.id], local_defs, _depth + 1)
        return set(), True
    if isinstance(node, ast.Constant) and node.value in (None, (), []):
        return set(), False
    return set(), True


@dataclasses.dataclass
class _KernelUse:
    """One ``self.kernel(...)`` call's extracted read/write attrs."""

    line: int
    reads: set[str]
    writes: set[str]
    unknown: bool
    #: the call node itself (the traffic analyzer reads kwargs off it)
    call: ast.Call | None = None
    #: the node *in the analyzed entry's body* that launches this kernel —
    #: the kernel call itself for direct launches, the helper call site
    #: for summary-expanded ones (loop containment tests use this)
    anchor: ast.Call | None = None
    #: pre-folded traffic factor from the helper context (traffic_scale x
    #: helper-internal trips); None means "direct use, evaluate in the
    #: entry's own scope"
    factor: Sym | None = None


def _local_defs(func: ast.FunctionDef | ast.AsyncFunctionDef
                ) -> dict[str, ast.expr]:
    defs: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            defs[node.targets[0].id] = node.value
    return defs


def _is_self_expr(node: ast.expr,
                  local_defs: _t.Mapping[str, ast.expr],
                  _depth: int = 0) -> bool:
    """Does this expression denote ``self`` (directly or via an alias)?"""
    if _depth > 5:
        return False
    if isinstance(node, ast.Name):
        if node.id == "self":
            return True
        target = local_defs.get(node.id)
        # ``this = self`` alias chains; guard against ``self = self``-style
        # self-reference loops via the depth bound
        return target is not None and _is_self_expr(target, local_defs,
                                                    _depth + 1)
    return False


def _is_self_call(node: ast.Call, method: str,
                  local_defs: _t.Mapping[str, ast.expr] | None = None
                  ) -> bool:
    """Is this call ``self.<method>(...)``, resolving local aliases?

    Covers the alias blind spots: ``kern = self.kernel; kern(...)`` and
    ``this = self; this.kernel(...)``.
    """
    defs: _t.Mapping[str, ast.expr] = local_defs or {}
    fn = node.func
    if isinstance(fn, ast.Name):
        target = defs.get(fn.id)
        if target is None or not isinstance(target, ast.Attribute):
            return False
        fn = target
    return (isinstance(fn, ast.Attribute) and fn.attr == method
            and _is_self_expr(fn.value, defs))


def _class_helper_methods(cls: ast.ClassDef | None,
                          aliases: frozenset[str]
                          ) -> dict[str, ast.FunctionDef]:
    """Non-entry methods of ``cls``, candidates for call inlining."""
    if cls is None:
        return {}
    out: dict[str, ast.FunctionDef] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if any(_decorator_is_entry(dec, aliases)
               for dec in method.decorator_list):
            continue
        out[method.name] = _t.cast(ast.FunctionDef, method)
    return out


def _collect_kernel_uses(func: ast.FunctionDef,
                         cls: ast.ClassDef | None = None,
                         aliases: frozenset[str] = _ENTRY_NAMES
                         ) -> list[_KernelUse]:
    """Kernel calls reachable from ``func``'s body (interprocedural).

    ``self.helper()`` calls to non-entry methods of the same class
    resolve through per-method summaries (:mod:`repro.lint.callgraph`) —
    complete at any call depth, recursion-widened — so kernels launched
    through nested helpers are attributed to the calling entry instead
    of falling through to unknown-suppression.
    """
    # lazy: callgraph imports this module's extraction primitives
    from repro.lint.callgraph import collect_kernel_uses
    return collect_kernel_uses(func, cls, aliases)


def _collect_declared_blocks(func: ast.FunctionDef) -> list[tuple[str, int]]:
    """Literal first arguments of ``self.declare_block(...)`` calls."""
    local_defs = _local_defs(func)
    out: list[tuple[str, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and _is_self_call(node, "declare_block", local_defs):
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                out.append((node.args[0].value, node.lineno))
            else:
                out.append(("", node.lineno))
    return out


# -- class discovery -------------------------------------------------------------


def _chare_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes (transitively) deriving from Chare/NodeGroup in this module."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    chare_like: set[str] = set(_CHARE_ROOTS)
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in chare_like:
                continue
            for base in cls.bases:
                name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else None)
                if name in chare_like:
                    chare_like.add(cls.name)
                    changed = True
                    break
    return [c for c in classes if c.name in chare_like
            and c.name not in _CHARE_ROOTS]


# -- per-class checks -------------------------------------------------------------


def _check_class(cls: ast.ClassDef, file: str,
                 aliases: frozenset[str] = _ENTRY_NAMES) -> list[Finding]:
    findings: list[Finding] = []
    declared_names: dict[str, int] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        decl: _EntryDecl | None = None
        for dec in method.decorator_list:
            decl = _parse_entry_decorator(dec, aliases)
            if decl is not None:
                break
        block_decls = _collect_declared_blocks(method)
        for name, line in block_decls:
            if not name:
                continue
            if name in declared_names:
                findings.append(_finding(
                    "REP106",
                    f"block {name!r} declared twice (first at line "
                    f"{declared_names[name]})", file, line,
                    chare=cls.name, entry=method.name))
            else:
                declared_names[name] = line
        if decl is None:
            continue  # helper method: declare_block here may run from setup
        if decl.prefetch and block_decls:
            findings.append(_finding(
                "REP107",
                "declare_block inside a [prefetch] entry; blocks must be "
                "declared during setup, before finalize_placement()",
                file, block_decls[0][1], chare=cls.name, entry=method.name))
        for name in decl.duplicate_intents:
            findings.append(_finding(
                "REP105", f"dependence {name!r} declared with two intents",
                file, decl.line, chare=cls.name, entry=method.name))
        if decl.prefetch and not decl.deps and not decl.unknown_deps:
            findings.append(_finding(
                "REP103", "[prefetch] entry declares no data dependences",
                file, decl.line, chare=cls.name, entry=method.name))
        findings.extend(_check_entry_body(cls, method, decl, file, aliases))
    return findings


def _check_entry_body(cls: ast.ClassDef, method: ast.FunctionDef,
                      decl: _EntryDecl, file: str,
                      aliases: frozenset[str] = _ENTRY_NAMES
                      ) -> list[Finding]:
    findings: list[Finding] = []
    uses = _collect_kernel_uses(method, cls, aliases)
    if not uses:
        return findings
    used_reads: set[str] = set()
    used_writes: set[str] = set()
    any_unknown = False
    for use in uses:
        used_reads |= use.reads
        used_writes |= use.writes
        any_unknown |= use.unknown
    if not decl.prefetch and not decl.deps and not decl.unknown_deps:
        findings.append(_finding(
            "REP108",
            "self.kernel() in an entry without [prefetch]: the task is "
            "invisible to the OOC manager (no prefetch, no refcount "
            "gating)", file, uses[0].line,
            chare=cls.name, entry=method.name))
        return findings
    for attr in sorted((used_reads | used_writes) - set(decl.deps)):
        if decl.unknown_deps:
            break  # cannot prove undeclared against a non-literal list
        findings.append(_finding(
            "REP101",
            f"kernel uses self.{attr} but the entry does not declare it",
            file, uses[0].line, chare=cls.name, entry=method.name))
    for attr, intent in decl.deps.items():
        if intent == "readonly" and attr in used_writes:
            findings.append(_finding(
                "REP102",
                f"self.{attr} is declared readonly but appears in writes=",
                file, uses[0].line, chare=cls.name, entry=method.name))
        if intent == "writeonly" and attr in used_reads:
            findings.append(_finding(
                "REP102",
                f"self.{attr} is declared writeonly but appears in reads=",
                file, uses[0].line, chare=cls.name, entry=method.name))
    if not any_unknown:
        for attr in decl.deps:
            if attr not in used_reads and attr not in used_writes:
                findings.append(_finding(
                    "REP104",
                    f"declared dependence {attr!r} is never used by a "
                    "kernel in this entry", file, decl.line,
                    chare=cls.name, entry=method.name))
    return findings


# -- entry points ------------------------------------------------------------------


def check_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint one source text; returns findings (empty on clean).

    Runs both the declaration cross-check (``REP1xx``) and the
    placement-state model checker (``REP2xx``,
    :mod:`repro.race.model_checker`) over the same parse.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [_finding("REP100", f"could not parse: {exc.msg}",
                         filename, exc.lineno or 1)]
    findings: list[Finding] = []
    aliases = _module_entry_aliases(tree)
    for cls in _chare_classes(tree):
        findings.extend(_check_class(cls, filename, aliases))
    # lazy: repro.race.model_checker imports this module for
    # iter_python_files, so a top-level import here would be a cycle
    from repro.race.model_checker import check_tree as _model_check_tree
    findings.extend(_model_check_tree(tree, filename))
    # the bwlint traffic pass (REP3xx); lazy for the same cycle reason
    from repro.lint.traffic import check_tree as _traffic_check_tree
    findings.extend(_traffic_check_tree(tree, filename))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def check_file(path: str | os.PathLike) -> list[Finding]:
    """Lint one python file; findings are anchored to its path."""
    with open(path, encoding="utf-8") as fh:
        return check_source(fh.read(), filename=str(path))


def iter_python_files(paths: _t.Iterable[str | os.PathLike]
                      ) -> _t.Iterator[str]:
    """Expand files / directories / importable module names to .py files."""
    for path in paths:
        spath = str(path)
        if os.path.isdir(spath):
            for dirpath, dirnames, filenames in os.walk(spath):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        yield os.path.join(dirpath, fn)
        elif os.path.isfile(spath):
            yield spath
        else:
            yield from _module_files(spath)


def _module_files(name: str) -> _t.Iterator[str]:
    import importlib.util
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError) as exc:
        raise FileNotFoundError(
            f"lint target {name!r} is neither a path nor an importable "
            f"module ({exc})") from None
    if spec is None:
        raise FileNotFoundError(
            f"lint target {name!r} is neither a path nor an importable module")
    if spec.submodule_search_locations:
        for location in spec.submodule_search_locations:
            yield from iter_python_files([location])
    elif spec.origin and spec.origin.endswith(".py"):
        yield spec.origin


def check_paths(paths: _t.Iterable[str | os.PathLike]) -> LintReport:
    """Lint every python file under ``paths``; returns the aggregate report."""
    report = LintReport()
    for file in iter_python_files(paths):
        report.extend(check_file(file))
    return report
