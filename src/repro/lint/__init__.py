"""``repro.lint`` — dependence-declaration checker + runtime sanitizer.

Two prongs guard the paper's central contract (declared dependences are
the truth the runtime schedules by):

* :mod:`repro.lint.static_checker` — an AST pass cross-checking
  ``@entry`` declarations against kernel usage (rules ``REP1xx``);
* :mod:`repro.lint.sanitizer` — "simsan", an opt-in runtime invariant
  checker over hook points in the memory subsystem (rules ``SAN2xx``).

Only :mod:`repro.lint.hooks` is imported by hot-path modules; everything
else loads lazily so the lint machinery costs nothing unless used.
"""

from __future__ import annotations

import typing as _t

from repro.lint.findings import (Finding, LintReport, LintViolation, Severity,
                                 Violation)
from repro.lint.rules import RULES, SANITIZER_RULES, STATIC_RULES, Rule

__all__ = [
    "Finding", "LintReport", "LintViolation", "Severity", "Violation",
    "Rule", "RULES", "STATIC_RULES", "SANITIZER_RULES",
    "SimSanitizer", "check_paths", "check_file", "check_source",
]

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.lint.sanitizer import SimSanitizer
    from repro.lint.static_checker import check_file, check_paths, check_source

#: lazy attribute -> defining submodule (keeps hook-site imports cheap and
#: avoids import cycles with repro.mem / repro.machine)
_LAZY = {
    "SimSanitizer": "repro.lint.sanitizer",
    "check_paths": "repro.lint.static_checker",
    "check_file": "repro.lint.static_checker",
    "check_source": "repro.lint.static_checker",
}


def __getattr__(name: str) -> _t.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
