"""``repro.lint`` — dependence-declaration checker + runtime sanitizer.

Two prongs guard the paper's central contract (declared dependences are
the truth the runtime schedules by):

* :mod:`repro.lint.static_checker` — an AST pass cross-checking
  ``@entry`` declarations against kernel usage (rules ``REP1xx``);
* :mod:`repro.lint.sanitizer` — "simsan", an opt-in runtime invariant
  checker over hook points in the memory subsystem (rules ``SAN2xx``).

On top of the static pass sits the dataflow/traffic stack ("bwlint"):
:mod:`repro.lint.cfg` (basic blocks), :mod:`repro.lint.dataflow` (the
monotone worklist solver, reaching definitions, liveness, loop nests),
:mod:`repro.lint.traffic` (static per-site byte-volume inference, rules
``REP3xx``) and :mod:`repro.lint.guidance` (canonical placement-guidance
files consumed by the ``static-guided`` strategy).

Only :mod:`repro.lint.hooks` is imported by hot-path modules; everything
else loads lazily so the lint machinery costs nothing unless used.
"""

from __future__ import annotations

import typing as _t

from repro.lint.findings import (Finding, LintReport, LintViolation, Severity,
                                 Violation)
from repro.lint.rules import RULES, SANITIZER_RULES, STATIC_RULES, Rule

__all__ = [
    "Finding", "LintReport", "LintViolation", "Severity", "Violation",
    "Rule", "RULES", "STATIC_RULES", "SANITIZER_RULES",
    "SimSanitizer", "check_paths", "check_file", "check_source",
    "build_cfg", "solve", "ReachingDefinitions", "Liveness", "loop_nests",
    "AnalyzerCrash", "analyze_tree",
    "GuidanceFile", "build_guidance", "load_guidance",
]

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.lint.cfg import build_cfg
    from repro.lint.dataflow import (Liveness, ReachingDefinitions,
                                     loop_nests, solve)
    from repro.lint.guidance import (GuidanceFile, build_guidance,
                                     load_guidance)
    from repro.lint.sanitizer import SimSanitizer
    from repro.lint.static_checker import check_file, check_paths, check_source
    from repro.lint.traffic import AnalyzerCrash, analyze_tree

#: lazy attribute -> defining submodule (keeps hook-site imports cheap and
#: avoids import cycles with repro.mem / repro.machine)
_LAZY = {
    "SimSanitizer": "repro.lint.sanitizer",
    "check_paths": "repro.lint.static_checker",
    "check_file": "repro.lint.static_checker",
    "check_source": "repro.lint.static_checker",
    "build_cfg": "repro.lint.cfg",
    "solve": "repro.lint.dataflow",
    "ReachingDefinitions": "repro.lint.dataflow",
    "Liveness": "repro.lint.dataflow",
    "loop_nests": "repro.lint.dataflow",
    "AnalyzerCrash": "repro.lint.traffic",
    "analyze_tree": "repro.lint.traffic",
    "GuidanceFile": "repro.lint.guidance",
    "build_guidance": "repro.lint.guidance",
    "load_guidance": "repro.lint.guidance",
}


def __getattr__(name: str) -> _t.Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
