"""Compiler-guided placement files (the bwlint → runtime contract).

:func:`build_guidance` runs the static traffic analysis
(:mod:`repro.lint.traffic`) over a source tree and folds the per-site
byte volumes into a :class:`GuidanceFile`: one record per allocation
site carrying its symbolic size, inferred read/write volumes, a tier
hint and a fetch-order rank.  :class:`StaticGuidedStrategy
<repro.core.strategies.static_guided.StaticGuidedStrategy>` consumes
nothing but this file — the runtime side never re-analyzes source.

The serialized form is *canonical*: keys sorted, two-space indent,
trailing newline, no floats where an int is exact.  Emitting, loading
and re-emitting a guidance file is byte-identical, so the SHA-256
:meth:`GuidanceFile.identity` is a stable name for "what the analyzer
believed" — :func:`repro.exec.fingerprint.code_fingerprint` folds it
into the experiment cache key exactly like the solver backend flag, and
a stale guidance file invalidates cached results instead of silently
steering placement.

Schema 2 adds the *phase timeline* (:mod:`repro.lint.phases`): a
top-level ``phases`` table (one row per driver dispatch, globally
indexed across the analyzed modules in discovery order) and, per site,
the liveness interval (``first_phase``/``last_phase``) plus per-phase
read/write volumes.  Schema-1 files still load — and round-trip
byte-identically — so existing ``$REPRO_GUIDANCE`` files keep working;
:class:`~repro.core.strategies.phase_guided.PhaseGuidedStrategy` simply
degrades to static-guided behaviour when the phase table is absent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import typing as _t

__all__ = ["GuidanceFile", "build_guidance", "load_guidance",
           "render_timeline", "GUIDANCE_SCHEMA"]

#: bumped on any change to the record layout below
GUIDANCE_SCHEMA = 2


def _num(value: float | None) -> int | float | None:
    """Exact ints serialize as ints so canonical output has one spelling."""
    if value is None:
        return None
    if float(value).is_integer():
        return int(value)
    return float(value)


@dataclasses.dataclass
class GuidanceFile:
    """A parsed (or freshly built) placement-guidance document."""

    #: site id ("Cls.name") -> record dict, exactly as serialized
    sites: dict[str, dict]
    schema: int = GUIDANCE_SCHEMA
    #: schema >= 2: global phase table, one record per driver dispatch
    phases: list[dict] = dataclasses.field(default_factory=list)

    def dumps(self) -> str:
        doc: dict[str, _t.Any] = {
            "schema": self.schema,
            "sites": {sid: self.sites[sid] for sid in sorted(self.sites)},
        }
        if self.schema >= 2:
            doc["phases"] = self.phases
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    def identity(self) -> str:
        """SHA-256 of the canonical serialization."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()

    def write(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> GuidanceFile:
        doc = json.loads(text)
        return cls(sites=dict(doc["sites"]), schema=int(doc["schema"]),
                   phases=list(doc.get("phases", ())))

    def tier(self, site_id: str) -> str | None:
        record = self.sites.get(site_id)
        return None if record is None else record["tier"]

    def priority(self, site_id: str) -> float:
        record = self.sites.get(site_id)
        if record is None:
            return 1.0
        return float(record["priority"])

    def order(self, site_id: str) -> int:
        record = self.sites.get(site_id)
        if record is None:
            return len(self.sites)
        return int(record["fetch_order"])

    # -- schema 2 accessors (all degrade to None on schema-1 files) ------

    def first_phase(self, site_id: str) -> int | None:
        """First phase that declares or touches ``site_id``, if known."""
        record = self.sites.get(site_id)
        if record is None:
            return None
        return record.get("first_phase")

    def last_phase(self, site_id: str) -> int | None:
        """Last phase that declares or touches ``site_id``, if known."""
        record = self.sites.get(site_id)
        if record is None:
            return None
        return record.get("last_phase")

    def phase_table(self) -> list[dict]:
        """The global phase table (empty on schema-1 files)."""
        return list(self.phases)

    def entry_phase(self, entry_id: str) -> int | None:
        """Earliest phase whose message closure contains ``entry_id``.

        ``entry_id`` is a ``"Cls.entry"`` name, the same shape the
        runtime can build from a task's chare type and entry method.
        """
        hits = [ph["index"] for ph in self.phases
                if entry_id in ph.get("entries", ())]
        return min(hits) if hits else None


def _sym_record(sym) -> dict | None:
    if sym is None:
        return None
    return {"expr": sym.expr, "bytes": _num(sym.value)}


def _trip_record(sym) -> dict | None:
    if sym is None:
        return None
    return {"expr": sym.expr, "count": _num(sym.value)}


def build_guidance(paths: _t.Iterable[str | os.PathLike]) -> GuidanceFile:
    """Analyze every python file under ``paths`` into one guidance file."""
    import ast

    from repro.lint.static_checker import iter_python_files
    from repro.lint.traffic import analyze_tree

    collected = []
    phase_table: list[dict] = []
    #: site id -> ("phases" rows, first_phase, last_phase), global indices
    site_phases: dict[str, tuple[list[dict], int, int]] = {}
    for file in iter_python_files(paths):
        with open(file, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # the lint pass reports REP100; guidance just skips
        module = analyze_tree(tree, str(file))
        for site in module.sites.values():
            if site.order >= 0 or site.reads or site.writes:
                collected.append(site)
        timeline = module.timeline
        if timeline is None or timeline.suppressed or not timeline.phases:
            continue
        # global phase indices: module discovery order stacks timelines
        offset = len(phase_table)
        for phase in timeline.phases:
            phase_table.append({
                "index": offset + phase.index,
                "file": timeline.file,
                "label": phase.label,
                "line": phase.line,
                "trips": _trip_record(phase.trips),
                "entries": list(phase.entries),
            })
        touched = set(timeline.site_traffic) | set(timeline.site_declared)
        for site_id in touched:
            interval = timeline.interval(site_id)
            if interval is None:
                continue
            rows = [
                {"phase": offset + p,
                 "reads": _sym_record(reads),
                 "writes": _sym_record(writes)}
                for p, (reads, writes)
                in sorted(timeline.site_traffic.get(site_id, {}).items())
            ]
            site_phases[site_id] = (rows, offset + interval[0],
                                    offset + interval[1])

    # global fetch order: module discovery order, then first-touch order
    collected.sort(key=lambda s: (s.file, s.order, s.id))
    sites: dict[str, dict] = {}
    for rank, site in enumerate(collected):
        reads = site.reads.value if site.reads else 0.0
        writes = site.writes.value if site.writes else 0.0
        size = site.size.value if site.size else None
        total = (reads or 0.0) + (writes or 0.0)
        known = (size is not None and size > 0
                 and (site.reads is None or reads is not None)
                 and (site.writes is None or writes is not None))
        if known and total == 0.0 and not site.intent_unknown:
            tier = "ddr"       # statically dead traffic: keep HBM free
            priority = 0.0
        else:
            tier = "hbm"
            priority = (total / size) if known else 1.0
        rows, first, last = site_phases.get(site.id, ([], None, None))
        sites[site.id] = {
            "class": site.cls,
            "name": site.name,
            "shared": site.shared,
            "intents": sorted(site.intents),
            "size": _sym_record(site.size),
            "reads": _sym_record(site.reads),
            "writes": _sym_record(site.writes),
            "tier": tier,
            "priority": _num(priority),
            "fetch_order": rank,
            "first_phase": first,
            "last_phase": last,
            "phases": rows,
        }
    return GuidanceFile(sites=sites, phases=phase_table)


def load_guidance(path: str | os.PathLike) -> GuidanceFile:
    """Read a guidance file produced by :func:`build_guidance`."""
    with open(path, encoding="utf-8") as fh:
        return GuidanceFile.loads(fh.read())


def _volume(record: dict | None) -> str:
    if record is None:
        return "-"
    if record["bytes"] is not None:
        return str(record["bytes"])
    return f"?({record['expr']})"


def render_timeline(guidance: GuidanceFile) -> str:
    """Human-readable, deterministic render of the v2 phase timeline.

    The same renderer backs ``repro guide --phases`` and the golden
    snapshot tests, so the CLI output cannot drift from what the tests
    pin down.
    """
    if not guidance.phases:
        return "(no phase timeline: schema-1 guidance or no driver dispatches)\n"
    lines: list[str] = []
    for ph in guidance.phases:
        trips = ph.get("trips")
        if trips is None:
            shown = "?"
        elif trips["count"] is not None:
            shown = str(trips["count"])
        else:
            shown = f"?({trips['expr']})"
        lines.append(f"phase {ph['index']}: {ph['label']} "
                     f"[{ph['file']}:{ph['line']}] trips={shown}")
        for entry in ph.get("entries", ()):
            lines.append(f"  entry {entry}")
        for site_id in sorted(guidance.sites):
            record = guidance.sites[site_id]
            for row in record.get("phases", ()):
                if row["phase"] != ph["index"]:
                    continue
                lines.append(
                    f"  site {site_id} reads={_volume(row['reads'])} "
                    f"writes={_volume(row['writes'])}")
        for site_id in sorted(guidance.sites):
            record = guidance.sites[site_id]
            if record.get("last_phase") == ph["index"] \
                    and ph["index"] + 1 < len(guidance.phases):
                lines.append(f"  dead-after {site_id}")
    return "\n".join(lines) + "\n"
