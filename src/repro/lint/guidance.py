"""Compiler-guided placement files (the bwlint → runtime contract).

:func:`build_guidance` runs the static traffic analysis
(:mod:`repro.lint.traffic`) over a source tree and folds the per-site
byte volumes into a :class:`GuidanceFile`: one record per allocation
site carrying its symbolic size, inferred read/write volumes, a tier
hint and a fetch-order rank.  :class:`StaticGuidedStrategy
<repro.core.strategies.static_guided.StaticGuidedStrategy>` consumes
nothing but this file — the runtime side never re-analyzes source.

The serialized form is *canonical*: keys sorted, two-space indent,
trailing newline, no floats where an int is exact.  Emitting, loading
and re-emitting a guidance file is byte-identical, so the SHA-256
:meth:`GuidanceFile.identity` is a stable name for "what the analyzer
believed" — :func:`repro.exec.fingerprint.code_fingerprint` folds it
into the experiment cache key exactly like the solver backend flag, and
a stale guidance file invalidates cached results instead of silently
steering placement.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import typing as _t

__all__ = ["GuidanceFile", "build_guidance", "load_guidance",
           "GUIDANCE_SCHEMA"]

#: bumped on any change to the record layout below
GUIDANCE_SCHEMA = 1


def _num(value: float | None) -> int | float | None:
    """Exact ints serialize as ints so canonical output has one spelling."""
    if value is None:
        return None
    if float(value).is_integer():
        return int(value)
    return float(value)


@dataclasses.dataclass
class GuidanceFile:
    """A parsed (or freshly built) placement-guidance document."""

    #: site id ("Cls.name") -> record dict, exactly as serialized
    sites: dict[str, dict]
    schema: int = GUIDANCE_SCHEMA

    def dumps(self) -> str:
        doc = {
            "schema": self.schema,
            "sites": {sid: self.sites[sid] for sid in sorted(self.sites)},
        }
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    def identity(self) -> str:
        """SHA-256 of the canonical serialization."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()

    def write(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> GuidanceFile:
        doc = json.loads(text)
        return cls(sites=dict(doc["sites"]), schema=int(doc["schema"]))

    def tier(self, site_id: str) -> str | None:
        record = self.sites.get(site_id)
        return None if record is None else record["tier"]

    def priority(self, site_id: str) -> float:
        record = self.sites.get(site_id)
        if record is None:
            return 1.0
        return float(record["priority"])

    def order(self, site_id: str) -> int:
        record = self.sites.get(site_id)
        if record is None:
            return len(self.sites)
        return int(record["fetch_order"])


def _sym_record(sym) -> dict | None:
    if sym is None:
        return None
    return {"expr": sym.expr, "bytes": _num(sym.value)}


def build_guidance(paths: _t.Iterable[str | os.PathLike]) -> GuidanceFile:
    """Analyze every python file under ``paths`` into one guidance file."""
    import ast

    from repro.lint.static_checker import iter_python_files
    from repro.lint.traffic import analyze_tree

    collected = []
    for file in iter_python_files(paths):
        with open(file, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # the lint pass reports REP100; guidance just skips
        module = analyze_tree(tree, str(file))
        for site in module.sites.values():
            if site.order >= 0 or site.reads or site.writes:
                collected.append(site)

    # global fetch order: module discovery order, then first-touch order
    collected.sort(key=lambda s: (s.file, s.order, s.id))
    sites: dict[str, dict] = {}
    for rank, site in enumerate(collected):
        reads = site.reads.value if site.reads else 0.0
        writes = site.writes.value if site.writes else 0.0
        size = site.size.value if site.size else None
        total = (reads or 0.0) + (writes or 0.0)
        known = (size is not None and size > 0
                 and (site.reads is None or reads is not None)
                 and (site.writes is None or writes is not None))
        if known and total == 0.0 and not site.intent_unknown:
            tier = "ddr"       # statically dead traffic: keep HBM free
            priority = 0.0
        else:
            tier = "hbm"
            priority = (total / size) if known else 1.0
        sites[site.id] = {
            "class": site.cls,
            "name": site.name,
            "shared": site.shared,
            "intents": sorted(site.intents),
            "size": _sym_record(site.size),
            "reads": _sym_record(site.reads),
            "writes": _sym_record(site.writes),
            "tier": tier,
            "priority": _num(priority),
            "fetch_order": rank,
        }
    return GuidanceFile(sites=sites)


def load_guidance(path: str | os.PathLike) -> GuidanceFile:
    """Read a guidance file produced by :func:`build_guidance`."""
    with open(path, encoding="utf-8") as fh:
        return GuidanceFile.loads(fh.read())
