"""SARIF 2.1.0 export for lint findings (GitHub code-scanning format).

``repro lint --format sarif`` emits one SARIF run per invocation so the
REP/SAN/RACE findings render natively in code-scanning UIs.  The output
is *canonical* — keys sorted, two-space indent, trailing newline — so a
warm-cache re-run reproduces the artifact byte for byte and CI can diff
it.  :func:`findings_from_sarif` inverts the export (used by the
round-trip test and by tooling that post-processes the artifact); only
the fields :class:`~repro.lint.findings.Finding` carries survive the
trip, which is exactly what the exporter writes.
"""

from __future__ import annotations

import json
import typing as _t

from repro.lint.findings import Finding, Severity
from repro.lint.rules import RULES

__all__ = ["SARIF_VERSION", "to_sarif", "findings_from_sarif"]

#: the SARIF spec revision the exporter targets
SARIF_VERSION = "2.1.0"

_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
               "master/Schemata/sarif-schema-2.1.0.json")

#: Severity <-> SARIF result level
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}
_SEVERITIES = {level: sev for sev, level in _LEVELS.items()}


def _rule_descriptor(rule_id: str) -> dict:
    spec = RULES[rule_id]
    return {
        "id": spec.id,
        "name": spec.title,
        "shortDescription": {"text": spec.title},
        "fullDescription": {"text": spec.description},
        "defaultConfiguration": {"level": _LEVELS[spec.severity]},
    }


def _result(finding: Finding) -> dict:
    result: dict[str, _t.Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
    }
    # chare/entry scope rides in SARIF's open property bag so the
    # round-trip is lossless without bending the schema
    properties = {}
    if finding.chare:
        properties["chare"] = finding.chare
    if finding.entry:
        properties["entry"] = finding.entry
    if properties:
        result["properties"] = properties
    return result


def to_sarif(findings: _t.Iterable[Finding], *,
             tool_version: str = "0") -> str:
    """Serialize ``findings`` as one canonical SARIF 2.1.0 document."""
    ordered = sorted(findings, key=lambda f: (f.file, f.line, f.rule,
                                              f.message))
    rule_ids = sorted({f.rule for f in ordered if f.rule in RULES})
    doc = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/paper-repro/repro",
                    "version": tool_version,
                    "rules": [_rule_descriptor(r) for r in rule_ids],
                },
            },
            "results": [_result(f) for f in ordered],
        }],
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def findings_from_sarif(text: str) -> list[Finding]:
    """Parse a document produced by :func:`to_sarif` back into findings."""
    doc = json.loads(text)
    findings: list[Finding] = []
    for run in doc.get("runs", ()):
        for result in run.get("results", ()):
            location = result["locations"][0]["physicalLocation"]
            properties = result.get("properties", {})
            findings.append(Finding(
                rule=result["ruleId"],
                severity=_SEVERITIES[result["level"]],
                message=result["message"]["text"],
                file=location["artifactLocation"]["uri"],
                line=int(location["region"]["startLine"]),
                chare=properties.get("chare", ""),
                entry=properties.get("entry", ""),
            ))
    return findings
