"""Generic monotone dataflow framework over :mod:`repro.lint.cfg`.

The engine is the classic worklist fixpoint over a join-semilattice of
finite fact sets: a :class:`DataflowProblem` names a direction, a
boundary value, and a per-block transfer function; :func:`solve` iterates
until no block's output changes.  Termination is guaranteed because all
shipped problems use set-union join and monotone gen/kill transfers over
the finite universe of facts syntactically present in one function —
each iteration can only grow a block's set, and the lattice has finite
height.

Two canonical instances ship here — :class:`ReachingDefinitions`
(forward-may) and :class:`Liveness` (backward-may) — plus the loop-nest
walk (:func:`loop_nests`) with symbolic trip-count inference that
:mod:`repro.lint.traffic` multiplies into its byte-volume estimates.
``while`` loops are *unbounded* in this lattice (trip ``None``), which is
exactly what rule ``REP305`` reports when one wraps a kernel launch.

Symbolic values are :class:`Sym` pairs — a human-readable expression
string plus an optional resolved float — forming the constant half of
the traffic analyzer's domain.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

from repro.lint.cfg import CFG

__all__ = [
    "Sym", "sym_add", "sym_bin", "sym_mul",
    "DataflowProblem", "solve",
    "ReachingDefinitions", "Liveness",
    "Loop", "loop_nests", "iter_loops",
]

Fact = _t.Hashable
FactSet = frozenset


@dataclasses.dataclass(frozen=True)
class Sym:
    """A symbolic scalar: source expression plus optional resolved value.

    ``value is None`` means "known expression, unknown magnitude" (top of
    the constant lattice for arithmetic purposes); analyses degrade
    gracefully instead of guessing.
    """

    expr: str
    value: float | None = None

    def known(self) -> bool:
        """True when the magnitude resolved to a concrete number."""
        return self.value is not None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.value is None:
            return self.expr
        return f"{self.expr}={self.value:g}"


_SYM_OPS: dict[str, _t.Callable[[float, float], float]] = {
    "+": lambda x, y: x + y, "-": lambda x, y: x - y,
    "*": lambda x, y: x * y, "/": lambda x, y: x / y,
    "//": lambda x, y: x // y, "%": lambda x, y: x % y,
    "**": lambda x, y: x ** y,
}


def sym_bin(op: str, a: Sym, b: Sym) -> Sym:
    """Combine two :class:`Sym` under a binary operator, tracking both the
    expression string and (when both sides resolved) the value."""
    value: float | None = None
    if a.known() and b.known():
        try:
            value = _SYM_OPS[op](a.value, b.value)
        except (OverflowError, ValueError, ZeroDivisionError):
            value = None
    return Sym(f"({a.expr} {op} {b.expr})", value)


def sym_add(a: Sym | None, b: Sym) -> Sym:
    """Accumulate ``b`` into ``a`` (None acts as the additive identity)."""
    if a is None:
        return b
    return sym_bin("+", a, b)


def sym_mul(a: Sym, b: Sym) -> Sym:
    """Multiply two Syms, eliding the multiplicative identity."""
    if b.expr == "1" or (b.known() and b.value == 1.0):
        return a
    if a.expr == "1" or (a.known() and a.value == 1.0):
        return b
    return sym_bin("*", a, b)


class DataflowProblem:
    """One monotone analysis: direction, boundary, and transfer.

    Subclasses set ``direction`` to ``"forward"`` or ``"backward"`` and
    implement :meth:`transfer`.  Join is set union (a may-analysis); a
    must-analysis would override :meth:`join`, which the solver calls
    through this interface only.
    """

    direction: str = "forward"

    def boundary(self, cfg: CFG) -> FactSet:
        """Facts holding at the entry (or exit, if backward)."""
        return frozenset()

    def join(self, facts: list[FactSet]) -> FactSet:
        """Combine predecessor (successor) outputs; default is union."""
        out: frozenset = frozenset()
        for f in facts:
            out |= f
        return out

    def transfer(self, block_stmts: list[ast.stmt],
                 facts: FactSet) -> FactSet:
        """Push a fact set through one basic block."""
        raise NotImplementedError


def solve(cfg: CFG, problem: DataflowProblem,
          ) -> dict[int, tuple[FactSet, FactSet]]:
    """Worklist fixpoint; returns ``{block: (facts_in, facts_out)}``.

    ``facts_in`` is the join over the relevant neighbours and
    ``facts_out`` the transferred set, in *analysis* direction (for a
    backward problem, ``facts_in`` holds after the block in program
    order).
    """
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit
    ins: dict[int, FactSet] = {b.index: frozenset() for b in cfg.blocks}
    outs: dict[int, FactSet] = {b.index: frozenset() for b in cfg.blocks}

    worklist = sorted(b.index for b in cfg.blocks)
    pending = set(worklist)
    while worklist:
        idx = worklist.pop(0)
        pending.discard(idx)
        block = cfg.blocks[idx]
        sources = block.preds if forward else block.succs
        joined = problem.join([outs[s] for s in sources])
        if idx == start:
            joined |= problem.boundary(cfg)
        stmts = block.stmts if forward else list(reversed(block.stmts))
        ins[idx] = joined
        new_out = problem.transfer(stmts, joined)
        if new_out != outs[idx]:
            outs[idx] = new_out
            targets = block.succs if forward else block.preds
            for t in sorted(targets):
                if t not in pending:
                    pending.add(t)
                    worklist.append(t)
    return {i: (ins[i], outs[i]) for i in ins}


# ---------------------------------------------------------------------------
# shallow def/use extraction (compound statements own only their headers)
# ---------------------------------------------------------------------------


def _target_names(target: ast.expr) -> list[str]:
    names = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


def stmt_defs(stmt: ast.stmt) -> list[str]:
    """Names a statement (shallowly) binds."""
    if isinstance(stmt, ast.Assign):
        out: list[str] = []
        for t in stmt.targets:
            out.extend(_target_names(t))
        return out
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt.target, ast.Name):
            return [stmt.target.id]
        return []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            if item.optional_vars is not None:
                out.extend(_target_names(item.optional_vars))
        return out
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [stmt.name]
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return [(a.asname or a.name).split(".")[0] for a in stmt.names]
    if isinstance(stmt, ast.Match):
        # capture-pattern bindings are per-case, but the Match header is
        # the only statement the shallow CFG keeps — attach them there
        # (a may-definition reaching every case block)
        return _pattern_names(stmt)
    return []


def _pattern_names(stmt: ast.Match) -> list[str]:
    """Names any case pattern of a ``match`` statement may bind."""
    names: list[str] = []
    for case in stmt.cases:
        for node in ast.walk(case.pattern):
            if isinstance(node, ast.MatchAs) and node.name is not None:
                names.append(node.name)
            elif isinstance(node, ast.MatchStar) and node.name is not None:
                names.append(node.name)
            elif isinstance(node, ast.MatchMapping) and node.rest is not None:
                names.append(node.rest)
    return names


def _expr_uses(expr: ast.expr | None) -> list[str]:
    if expr is None:
        return []
    return [n.id for n in ast.walk(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)]


def stmt_uses(stmt: ast.stmt) -> list[str]:
    """Names a statement (shallowly) reads."""
    if isinstance(stmt, ast.Assign):
        return _expr_uses(stmt.value)
    if isinstance(stmt, ast.AugAssign):
        uses = _expr_uses(stmt.value)
        if isinstance(stmt.target, ast.Name):
            uses.append(stmt.target.id)
        return uses
    if isinstance(stmt, ast.AnnAssign):
        return _expr_uses(stmt.value)
    if isinstance(stmt, ast.If):
        return _expr_uses(stmt.test)
    if isinstance(stmt, ast.While):
        return _expr_uses(stmt.test)
    if isinstance(stmt, ast.Match):
        # the subject plus anything the patterns and guards compare
        # against; case *bodies* live in their own CFG blocks
        out = _expr_uses(stmt.subject)
        for case in stmt.cases:
            for node in ast.walk(case.pattern):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load):
                    out.append(node.id)
            out.extend(_expr_uses(case.guard))
        return out
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _expr_uses(stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[str] = []
        for item in stmt.items:
            out.extend(_expr_uses(item.context_expr))
        return out
    if isinstance(stmt, (ast.Return, ast.Expr)):
        return _expr_uses(stmt.value)
    if isinstance(stmt, ast.Raise):
        return _expr_uses(stmt.exc) + _expr_uses(stmt.cause)
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.Import, ast.ImportFrom,
                         ast.Pass, ast.Break, ast.Continue, ast.Global,
                         ast.Nonlocal)):
        return []
    if isinstance(stmt, (ast.Assert, ast.Delete)):
        out = []
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                out.append(node.id)
        return out
    # default: every loaded name anywhere in the statement
    return [n.id for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)]


class ReachingDefinitions(DataflowProblem):
    """Forward-may: which ``(name, line)`` definitions reach a point."""

    direction = "forward"

    def boundary(self, cfg: CFG) -> FactSet:
        # parameters are definitions at line 0 of the function
        args = cfg.func.args
        params = [a.arg for a in
                  args.posonlyargs + args.args + args.kwonlyargs]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra.arg)
        return frozenset((p, 0) for p in params)

    def transfer(self, block_stmts: list[ast.stmt],
                 facts: FactSet) -> FactSet:
        current = set(facts)
        for stmt in block_stmts:
            for name in stmt_defs(stmt):
                current = {f for f in current if f[0] != name}
                current.add((name, stmt.lineno))
        return frozenset(current)


class Liveness(DataflowProblem):
    """Backward-may: which names are live (read later) at a point."""

    direction = "backward"

    def transfer(self, block_stmts: list[ast.stmt],
                 facts: FactSet) -> FactSet:
        # block_stmts arrive reversed (analysis order) from the solver
        live = set(facts)
        for stmt in block_stmts:
            for name in stmt_defs(stmt):
                live.discard(name)
            live.update(stmt_uses(stmt))
        return frozenset(live)


# ---------------------------------------------------------------------------
# loop-nest structure + trip-count inference
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Loop:
    """One loop in a function's nest tree."""

    node: ast.While | ast.For
    line: int
    kind: str            # "for" | "while"
    bounded: bool        # False only for while-loops
    trip: Sym | None     # resolved trip count when inferable
    depth: int
    children: list[Loop] = dataclasses.field(default_factory=list)


Evaluator = _t.Callable[[ast.expr], Sym | None]


def _const_evaluator(expr: ast.expr) -> Sym | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        return Sym(repr(expr.value), float(expr.value))
    if (isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub)
            and isinstance(expr.operand, ast.Constant)
            and isinstance(expr.operand.value, (int, float))):
        return Sym(f"-{expr.operand.value!r}", -float(expr.operand.value))
    return None


def _range_trip(call: ast.Call, evaluate: Evaluator) -> Sym | None:
    args = [evaluate(a) for a in call.args]
    if any(a is None for a in args):
        return None
    syms = _t.cast("list[Sym]", args)
    if len(syms) == 1:
        return syms[0]
    if len(syms) == 2:
        lo, hi = syms
        value = (hi.value - lo.value
                 if lo.known() and hi.known() else None)
        return Sym(f"({hi.expr} - {lo.expr})", value)
    if len(syms) == 3:
        lo, hi, step = syms
        if lo.known() and hi.known() and step.known() and step.value:
            trips = max(0.0, -(-(hi.value - lo.value) // step.value))
            return Sym(f"len(range({lo.expr}, {hi.expr}, {step.expr}))",
                       trips)
        return None
    return None


def _loop_trip(node: ast.While | ast.For,
               evaluate: Evaluator) -> tuple[bool, Sym | None]:
    if isinstance(node, ast.While):
        return False, None
    it = node.iter
    if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
            and it.func.id in {"range", "enumerate"}):
        if it.func.id == "enumerate" and it.args:
            inner = it.args[0]
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "range"):
                return True, _range_trip(inner, evaluate)
            return True, None
        if it.func.id == "range":
            return True, _range_trip(it, evaluate)
    # a for-loop over any other iterable is bounded with unknown trip
    return True, None


def loop_nests(func: ast.FunctionDef | ast.AsyncFunctionDef,
               evaluate: Evaluator | None = None) -> list[Loop]:
    """Return the tree of loops in ``func`` with trip counts inferred.

    ``evaluate`` resolves bound expressions to :class:`Sym`; the default
    handles numeric literals only (the traffic analyzer passes its
    config-aware evaluator).  Nested function bodies are not descended
    into — they have their own nests.
    """
    evaluate = evaluate or _const_evaluator

    def walk(stmts: _t.Sequence[ast.stmt], depth: int) -> list[Loop]:
        loops: list[Loop] = []
        for stmt in stmts:
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                node = _t.cast("ast.While | ast.For", stmt)
                bounded, trip = _loop_trip(node, evaluate)
                loop = Loop(
                    node=node, line=stmt.lineno,
                    kind="while" if isinstance(stmt, ast.While) else "for",
                    bounded=bounded, trip=trip, depth=depth)
                loop.children = walk(stmt.body, depth + 1)
                loops.append(loop)
                loops.extend(walk(stmt.orelse, depth))
            elif isinstance(stmt, ast.If):
                loops.extend(walk(stmt.body, depth))
                loops.extend(walk(stmt.orelse, depth))
            elif isinstance(stmt, ast.Try):
                loops.extend(walk(stmt.body, depth))
                for handler in stmt.handlers:
                    loops.extend(walk(handler.body, depth))
                loops.extend(walk(stmt.orelse, depth))
                loops.extend(walk(stmt.finalbody, depth))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                loops.extend(walk(stmt.body, depth))
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    loops.extend(walk(case.body, depth))
        return loops

    return walk(func.body, 0)


def iter_loops(loops: list[Loop]) -> _t.Iterator[Loop]:
    """Depth-first iterator over a loop-nest tree."""
    for loop in loops:
        yield loop
        yield from iter_loops(loop.children)
