"""Control-flow graphs over the ``ast`` module (the dataflow substrate).

:func:`build_cfg` lowers one function body into basic blocks connected by
directed edges, covering the statement shapes application and strategy
code actually uses: ``if``/``elif``/``else``, ``while``/``for`` (with
``break``/``continue`` and loop-``else``), ``try``/``except``/``else``/
``finally``, ``with``, ``match``, ``return`` and ``raise``.  Compound statements are
*shallow* — an ``ast.If`` node appears in the block that evaluates its
test, while its branches live in successor blocks — so a transfer
function over a block never sees nested-branch statements.

Exception edges are conservative: every ``except`` handler is reachable
both from the block that enters the ``try`` and from the end of its body
(an exception may fire before any or after all body statements).  That
over-approximation is the right direction for the may-analyses built on
top (:mod:`repro.lint.dataflow`): facts can only be *added*, never
wrongly proven absent.

The graph renders deterministically (:meth:`CFG.render`) so tests can
golden-match shapes instead of asserting edge soup.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

__all__ = ["BasicBlock", "CFG", "build_cfg"]


@dataclasses.dataclass
class BasicBlock:
    """A maximal straight-line statement sequence."""

    index: int
    stmts: list[ast.stmt] = dataclasses.field(default_factory=list)
    succs: list[int] = dataclasses.field(default_factory=list)
    preds: list[int] = dataclasses.field(default_factory=list)

    def describe(self) -> str:
        inner = ", ".join(f"L{s.lineno} {type(s).__name__}"
                          for s in self.stmts)
        return inner or "(empty)"


class CFG:
    """Basic blocks + edges for one function; block 0 is the entry."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[BasicBlock] = []
        self.entry = 0
        self.exit = -1  # fixed up by build_cfg

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def render(self) -> str:
        """Deterministic text form for golden tests."""
        lines = []
        for block in self.blocks:
            tag = ""
            if block.index == self.entry:
                tag = " [entry]"
            elif block.index == self.exit:
                tag = " [exit]"
            succs = " ".join(f"bb{i}" for i in block.succs) or "-"
            lines.append(f"bb{block.index}{tag}: {block.describe()} "
                         f"-> {succs}")
        return "\n".join(lines)


def _pattern_irrefutable(pattern: ast.pattern) -> bool:
    """True when a match pattern always binds (``case _:`` / ``case x:``)."""
    if isinstance(pattern, ast.MatchAs):
        return pattern.pattern is None or _pattern_irrefutable(pattern.pattern)
    if isinstance(pattern, ast.MatchOr):
        return any(_pattern_irrefutable(p) for p in pattern.patterns)
    return False


class _Unreachable(Exception):
    """Internal marker: the current insertion point has no live block."""


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = CFG(func)
        self.cur: int | None = self.cfg.new_block().index
        #: (continue target, break target) per enclosing loop
        self.loops: list[tuple[int, int]] = []
        self.exit = self.cfg.new_block().index
        self.cfg.exit = self.exit

    # -- plumbing -----------------------------------------------------------

    def _emit(self, stmt: ast.stmt) -> None:
        if self.cur is None:
            # dead code after return/break; park it in its own island so
            # dataflow still terminates and the renderer shows it
            self.cur = self.cfg.new_block().index
        self.cfg.blocks[self.cur].stmts.append(stmt)

    def _branch_to_new(self) -> int:
        """Close the current block and return a fresh successor index."""
        new = self.cfg.new_block().index
        if self.cur is not None:
            self.cfg.add_edge(self.cur, new)
        self.cur = new
        return new

    def _edge_from_cur(self, dst: int) -> None:
        if self.cur is not None:
            self.cfg.add_edge(self.cur, dst)

    # -- statement dispatch -------------------------------------------------

    def body(self, stmts: _t.Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        handler = getattr(self, f"_stmt_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self._emit(node)

    def _stmt_Return(self, node: ast.Return) -> None:
        self._emit(node)
        self._edge_from_cur(self.exit)
        self.cur = None

    def _stmt_Raise(self, node: ast.Raise) -> None:
        self._emit(node)
        self._edge_from_cur(self.exit)
        self.cur = None

    def _stmt_Break(self, node: ast.Break) -> None:
        self._emit(node)
        if self.loops:
            self._edge_from_cur(self.loops[-1][1])
        else:
            self._edge_from_cur(self.exit)
        self.cur = None

    def _stmt_Continue(self, node: ast.Continue) -> None:
        self._emit(node)
        if self.loops:
            self._edge_from_cur(self.loops[-1][0])
        else:
            self._edge_from_cur(self.exit)
        self.cur = None

    def _stmt_If(self, node: ast.If) -> None:
        self._emit(node)  # the test evaluates in the current block
        test_block = self.cur
        after = self.cfg.new_block().index

        then = self.cfg.new_block().index
        self.cfg.add_edge(_t.cast(int, test_block), then)
        self.cur = then
        self.body(node.body)
        self._edge_from_cur(after)

        if node.orelse:
            orelse = self.cfg.new_block().index
            self.cfg.add_edge(_t.cast(int, test_block), orelse)
            self.cur = orelse
            self.body(node.orelse)
            self._edge_from_cur(after)
        else:
            self.cfg.add_edge(_t.cast(int, test_block), after)
        self.cur = after

    def _loop(self, node: ast.While | ast.For) -> None:
        head = self._branch_to_new()
        self._emit(node)  # test / iterator evaluates in the header
        after = self.cfg.new_block().index
        body = self.cfg.new_block().index
        self.cfg.add_edge(head, body)
        self.cfg.add_edge(head, after)

        self.loops.append((head, after))
        self.cur = body
        self.body(node.body)
        self._edge_from_cur(head)  # back edge
        self.loops.pop()

        if node.orelse:
            # loop-else runs on normal (non-break) termination; modelled
            # on the head->after edge by interposing the else chain
            orelse = self.cfg.new_block().index
            self.cfg.blocks[head].succs.remove(after)
            self.cfg.blocks[after].preds.remove(head)
            self.cfg.add_edge(head, orelse)
            self.cur = orelse
            self.body(node.orelse)
            self._edge_from_cur(after)
        self.cur = after

    _stmt_While = _loop
    _stmt_For = _loop
    _stmt_AsyncFor = _loop

    def _stmt_Try(self, node: ast.Try) -> None:
        self._emit(node)  # marker: the try is entered here
        entry_block = _t.cast(int, self.cur)
        after = self.cfg.new_block().index

        body = self.cfg.new_block().index
        self.cfg.add_edge(entry_block, body)
        self.cur = body
        self.body(node.body)
        body_end = self.cur

        handler_ends: list[int | None] = []
        for handler in node.handlers:
            hblock = self.cfg.new_block().index
            # conservative: the exception may fire before any or after
            # all body statements
            self.cfg.add_edge(entry_block, hblock)
            if body_end is not None:
                self.cfg.add_edge(body_end, hblock)
            self.cur = hblock
            self.body(handler.body)
            handler_ends.append(self.cur)

        self.cur = body_end
        if node.orelse:
            self.body(node.orelse)

        join = self.cfg.new_block().index
        self._edge_from_cur(join)
        for end in handler_ends:
            if end is not None:
                self.cfg.add_edge(end, join)
        self.cur = join
        if node.finalbody:
            self.body(node.finalbody)

    _stmt_TryStar = _stmt_Try

    def _stmt_With(self, node: ast.With) -> None:
        self._emit(node)  # context managers + as-names bind here
        self.body(node.body)

    _stmt_AsyncWith = _stmt_With

    def _stmt_Match(self, node: ast.Match) -> None:
        """``match``: the subject evaluates in the current block, each
        case body is a branch to the join.  Without an irrefutable final
        case (a bare ``case _:`` with no guard) the subject may match
        nothing, so the header keeps a direct fall-through edge."""
        self._emit(node)
        head = _t.cast(int, self.cur)
        after = self.cfg.new_block().index
        irrefutable = False
        for case in node.cases:
            block = self.cfg.new_block().index
            self.cfg.add_edge(head, block)
            self.cur = block
            self.body(case.body)
            self._edge_from_cur(after)
            if case.guard is None and _pattern_irrefutable(case.pattern):
                irrefutable = True
        if not irrefutable:
            self.cfg.add_edge(head, after)
        self.cur = after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function's body to a :class:`CFG`.

    Nested function/class definitions are kept as opaque single
    statements (their bodies get their own CFGs if analyzed).
    """
    builder = _Builder(func)
    builder.body(func.body)
    builder._edge_from_cur(builder.exit)
    return builder.cfg
