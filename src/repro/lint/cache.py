"""Fingerprint-keyed on-disk cache for lint / guidance analysis results.

``repro lint`` and ``repro guide`` re-parse and re-analyze every target
file on each invocation; on a warm tree that work is pure waste.  This
cache stores finished analysis payloads under
``.repro-cache/lint/<fingerprint>/<key>.json`` — the same cache root
(and the same :func:`repro.exec.fingerprint.code_fingerprint`
generation scheme) the experiment result cache uses, so editing any
simulator source, switching ``$REPRO_SOLVER`` or pointing
``$REPRO_GUIDANCE`` elsewhere starts a fresh generation while ``cache
clear`` wipes both caches at once.

The entry key is a SHA-256 over the *content* of every analyzed file
(resolved through the same :func:`~repro.lint.static_checker.
iter_python_files` expansion the analysis itself uses), so editing a
lint *target* — even one outside the repro package — invalidates
exactly the affected entry.  Only successful analyses are stored:
a crash (:class:`~repro.lint.traffic.AnalyzerCrash`) propagates before
any write, and the ``_FORCE_CRASH`` test hook bypasses lookups so an
injected failure can never be masked by a warm entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import typing as _t
from pathlib import Path

from repro.lint.findings import Finding, LintReport, Severity

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.guidance import GuidanceFile

__all__ = ["AnalysisCache", "cached_check_paths", "cached_build_guidance",
           "findings_to_payload", "findings_from_payload"]


def findings_to_payload(findings: _t.Iterable[Finding]) -> list[dict]:
    """Findings as JSON-serializable dicts (inverse of ``from_payload``)."""
    return [{"rule": f.rule, "severity": f.severity.value,
             "message": f.message, "file": f.file, "line": f.line,
             "chare": f.chare, "entry": f.entry} for f in findings]


def findings_from_payload(payload: _t.Iterable[dict]) -> list[Finding]:
    """Rebuild findings stored by :func:`findings_to_payload`."""
    return [Finding(rule=row["rule"], severity=Severity(row["severity"]),
                    message=row["message"], file=row["file"],
                    line=row["line"], chare=row["chare"],
                    entry=row["entry"]) for row in payload]


class AnalysisCache:
    """Content-addressed store for lint/guidance analysis payloads."""

    def __init__(self, root: "Path | str | None" = None, *,
                 enabled: bool = True):
        if root is None:
            from repro.exec.cache import default_cache_root
            root = default_cache_root()
        self.root = Path(root) / "lint"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying ----------------------------------------------------------

    def _generation(self) -> Path:
        from repro.exec.fingerprint import code_fingerprint
        return self.root / code_fingerprint()[:16]

    def _active(self) -> bool:
        # the test hook injects analyzer crashes; a cached success would
        # hide exactly the failure the hook exists to produce
        from repro.lint import traffic
        return self.enabled and traffic._FORCE_CRASH is None

    def key(self, kind: str, targets: _t.Sequence[str | os.PathLike]) -> str:
        """Hash of the analysis kind plus every target file's content."""
        from repro.lint.static_checker import iter_python_files
        digest = hashlib.sha256()
        digest.update(kind.encode())
        for file in iter_python_files(targets):
            digest.update(b"\x00")
            digest.update(str(file).encode())
            digest.update(b"\x01")
            with open(file, "rb") as fh:
                digest.update(fh.read())
        return digest.hexdigest()

    # -- store/lookup ----------------------------------------------------

    def lookup(self, kind: str,
               targets: _t.Sequence[str | os.PathLike]) -> "dict | None":
        if not self._active():
            return None
        path = self._generation() / f"{self.key(kind, targets)}.json"
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, kind: str, targets: _t.Sequence[str | os.PathLike],
              payload: dict) -> None:
        if not self._active():
            return
        generation = self._generation()
        generation.mkdir(parents=True, exist_ok=True)
        path = generation / f"{self.key(kind, targets)}.json"
        # atomic publish: a concurrent reader sees the old entry or the
        # new one, never a torn write
        fd, tmp = tempfile.mkstemp(dir=generation, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1


def cached_check_paths(targets: _t.Sequence[str | os.PathLike], *,
                       cache: AnalysisCache | None = None) -> LintReport:
    """:func:`~repro.lint.static_checker.check_paths` behind the cache."""
    from repro.lint.static_checker import check_paths
    if cache is None:
        cache = AnalysisCache()
    payload = cache.lookup("lint", targets)
    if payload is not None:
        return LintReport(findings_from_payload(payload["findings"]))
    report = check_paths(targets)
    cache.store("lint", targets,
                {"findings": findings_to_payload(report)})
    return report


def cached_build_guidance(targets: _t.Sequence[str | os.PathLike], *,
                          cache: AnalysisCache | None = None
                          ) -> "GuidanceFile":
    """:func:`~repro.lint.guidance.build_guidance` behind the cache."""
    from repro.lint.guidance import GuidanceFile, build_guidance
    if cache is None:
        cache = AnalysisCache()
    payload = cache.lookup("guide", targets)
    if payload is not None:
        return GuidanceFile.loads(payload["guidance"])
    guide = build_guidance(targets)
    cache.store("guide", targets, {"guidance": guide.dumps()})
    return guide
