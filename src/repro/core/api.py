"""User-facing convenience API.

The typical application (compare §IV-A's ``.ci`` excerpt)::

    from repro.core.api import OOCRuntimeBuilder
    from repro.runtime import Chare, entry

    class Compute(Chare):
        @entry
        def setup(self, nbytes):
            self.A = self.declare_block("A", nbytes)   # CkIOHandle<double> A
            self.B = self.declare_block("B", nbytes)

        @entry(prefetch=True, readwrite=["A"], writeonly=["B"])
        def compute_kernel(self, reducer):
            yield from self.kernel(flops=..., reads=[self.A], writes=[self.B])
            reducer.contribute()

    builder = OOCRuntimeBuilder(strategy="multi-io")
    rt, manager = builder.build()
    ...

``OOCRuntimeBuilder`` wires machine, runtime, manager and strategy with the
paper's defaults so examples and benchmarks stay short.
"""

from __future__ import annotations

import typing as _t

from repro.config import ClusterMode, MachineConfig, MemoryMode
from repro.core.eviction import EvictionPolicy
from repro.core.manager import OOCManager
from repro.core.strategies import Strategy, make_strategy
from repro.machine.knl import build_knl, build_machine
from repro.machine.node import MachineNode
from repro.mem.allocator import PagedAllocator
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.trace.tracer import Tracer
from repro.units import GiB

__all__ = ["OOCRuntimeBuilder", "BuiltRuntime"]


class BuiltRuntime(_t.NamedTuple):
    """Everything a driver needs, from one builder call."""

    env: Environment
    machine: MachineNode
    runtime: CharmRuntime
    manager: OOCManager
    strategy: Strategy


class OOCRuntimeBuilder:
    """Builds env + KNL machine + runtime + OOC manager in one call."""

    def __init__(self, strategy: str | Strategy = "multi-io", *,
                 cores: int = 64,
                 memory_mode: MemoryMode = MemoryMode.FLAT,
                 cluster_mode: ClusterMode = ClusterMode.ALL_TO_ALL,
                 mcdram_capacity: int | str = 16 * GiB,
                 ddr_capacity: int | str = 96 * GiB,
                 eviction: EvictionPolicy | None = None,
                 hbm_headroom: int = 0,
                 queue_lock_cost: float = 1e-6,
                 node_level_run_queue: bool = False,
                 allocator_cls: type = PagedAllocator,
                 message_latency: float = 2e-6,
                 trace: bool = True,
                 strategy_kwargs: dict[str, _t.Any] | None = None,
                 machine_config: MachineConfig | None = None,
                 fluid_solver: str | None = None):
        #: explicit machine description; overrides the KNL knobs when set
        #: (e.g. :func:`repro.config.nvm_dram_config`)
        self.machine_config = machine_config
        self.strategy_spec = strategy
        self.cores = cores
        self.memory_mode = memory_mode
        self.cluster_mode = cluster_mode
        self.mcdram_capacity = mcdram_capacity
        self.ddr_capacity = ddr_capacity
        self.eviction = eviction
        self.hbm_headroom = hbm_headroom
        self.queue_lock_cost = queue_lock_cost
        self.node_level_run_queue = node_level_run_queue
        self.allocator_cls = allocator_cls
        self.message_latency = message_latency
        self.trace = trace
        self.strategy_kwargs = strategy_kwargs or {}
        #: fluid bandwidth solver: "incremental" (fast), "vectorized"
        #: (numpy kernel) or "full" (oracle); None defers to
        #: repro.sim.fluid.default_solver() — i.e. $REPRO_SOLVER
        self.fluid_solver = fluid_solver

    def build(self) -> BuiltRuntime:
        """Build a complete stack in a fresh environment."""
        return self.build_into(Environment())

    def build_into(self, env: Environment) -> BuiltRuntime:
        """Build a complete stack bound to an existing environment.

        Used by :class:`repro.cluster.Cluster` to place several nodes in
        one simulation.
        """
        if self.machine_config is not None:
            machine = build_machine(env, self.machine_config,
                                    allocator_cls=self.allocator_cls,
                                    fluid_solver=self.fluid_solver)
        else:
            machine = build_knl(
                env, cores=self.cores, memory_mode=self.memory_mode,
                cluster_mode=self.cluster_mode,
                mcdram_capacity=self.mcdram_capacity,
                ddr_capacity=self.ddr_capacity,
                allocator_cls=self.allocator_cls,
                fluid_solver=self.fluid_solver)
        tracer = Tracer(env, enabled=self.trace)
        runtime = CharmRuntime(machine, tracer=tracer,
                               message_latency=self.message_latency)
        if isinstance(self.strategy_spec, Strategy):
            strategy = self.strategy_spec
        else:
            strategy = make_strategy(self.strategy_spec,
                                     **self.strategy_kwargs)
        manager = OOCManager(
            runtime, strategy,
            eviction=self.eviction,
            hbm_headroom=self.hbm_headroom,
            queue_lock_cost=self.queue_lock_cost,
            node_level_run_queue=self.node_level_run_queue)
        return BuiltRuntime(env, machine, runtime, manager, strategy)
