"""The OOC manager: the interception layer installed into the runtime.

Owns the strategy, the HBM tracker, the eviction policy and the
"pre-processing / post-processing" glue that charmxi would generate for
``[prefetch]`` entry methods (§IV-B).  Implements the
:class:`repro.runtime.interception.Interceptor` protocol.
"""

from __future__ import annotations

import typing as _t

from repro.core.eviction import EvictionPolicy, OwnBlocksEviction
from repro.core.hbm import HBMTracker
from repro.core.ooc_task import OOCTask, TaskState
from repro.errors import SchedulingError
from repro.mem.block import BlockState, DataBlock
from repro.metrics import hooks as _mx
from repro.obs import hooks as _oh
from repro.runtime.message import Message
from repro.runtime.pe import PE
from repro.runtime.runtime import CharmRuntime
from repro.sim.events import Event
from repro.trace.events import TraceCategory

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.strategies.base import Strategy

__all__ = ["OOCManager"]


class OOCManager:
    """Glue between the runtime, a strategy, the tracker and the tracer."""

    def __init__(self, runtime: CharmRuntime, strategy: "Strategy", *,
                 eviction: EvictionPolicy | None = None,
                 hbm_headroom: int = 0,
                 queue_lock_cost: float = 1e-6,
                 node_level_run_queue: bool = False):
        self.runtime = runtime
        self.env = runtime.env
        self.machine = runtime.machine
        self.topology = self.machine.topology
        self.registry = self.machine.registry
        self.mover = self.machine.mover
        self.tracer = runtime.tracer
        self.hbm = self.topology.hbm
        self.ddr = self.topology.ddr
        self.tracker = HBMTracker(self.hbm, headroom=hbm_headroom)
        self.eviction = eviction if eviction is not None else OwnBlocksEviction()
        #: cost of one lock-protected queue operation (§IV-B lock delays)
        self.queue_lock_cost = queue_lock_cost
        #: paper future work: one node-level run queue instead of per-PE
        self.node_level_run_queue = node_level_run_queue
        self.strategy = strategy
        #: per-block in-flight move completion events
        self._inflight: dict[int, Event] = {}
        self.tasks_intercepted = 0
        self.tasks_readied = 0
        self.tasks_completed = 0
        self.placement_done = False
        #: bumped whenever eviction candidacy may have changed (task
        #: completions, moves); lets scanners memoize negative results
        self.change_epoch = 0
        #: (time, hbm bytes in use) samples, one per completed move, when
        #: tracing is on — drives the occupancy timeline
        self.occupancy_log: list[tuple[float, int]] = []
        #: active :class:`repro.lint.sanitizer.SimSanitizer`, or None (set
        #: by ``SimSanitizer.install(manager)``)
        self.sanitizer: _t.Any = None
        strategy.attach(self)
        runtime.install_interceptor(self)

    # -- placement ------------------------------------------------------------

    def finalize_placement(self) -> None:
        """Place every registered block per the strategy's initial rule.

        Call after the application declared its blocks (setup phase) and
        before compute messages flow.
        """
        if self.placement_done:
            raise SchedulingError("finalize_placement called twice")
        unplaced = [b for b in self.registry
                    if b.allocation is None or not b.allocation.live]
        self.strategy.place_initial(unplaced)
        self.placement_done = True

    # -- Interceptor protocol ----------------------------------------------------

    def wants(self, message: Message) -> bool:
        return self.strategy.intercepts and message.entry.prefetch

    def intercept(self, pe: PE, message: Message) -> _t.Generator:
        """Pre-processing: encapsulate as OOCTask, hand to the strategy."""
        if not self.placement_done:
            raise SchedulingError(
                "a [prefetch] message arrived before finalize_placement()")
        deps = message.entry.resolve_deps(message.target)
        task = OOCTask(message, pe.id, deps, self.env.now)
        for block in task.blocks:
            block.add_demand(task.tid)
        if task.total_dep_bytes > self.tracker.budget:
            raise SchedulingError(
                f"task #{task.tid} needs {task.total_dep_bytes}B of HBM but "
                f"the budget is {self.tracker.budget}B; decompose further")
        self.tasks_intercepted += 1
        yield from self.strategy.submit(pe, task)

    def post_process(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Post-processing: drop refcounts, let the strategy evict/wake."""
        for block in task.blocks:
            if block.state is not BlockState.INHBM:
                raise SchedulingError(
                    f"block {block.name!r} left HBM while task #{task.tid} "
                    "was running (refcount gating failed)")
        task.state = TaskState.DONE
        task.finished_at = self.env.now
        task.release_all()
        for block in task.blocks:
            block.drop_demand(task.tid)
        self.tasks_completed += 1
        self.change_epoch += 1
        yield from self.strategy.task_finished(pe, task)

    def retry(self, pe: PE) -> _t.Generator:
        """A :class:`~repro.runtime.interception.RetryFetch` arrived."""
        yield from self.strategy.retry_waiting(pe)

    # -- helpers used by strategies -------------------------------------------------

    def charge_queue_op(self, lane: str) -> _t.Generator:
        """Charge one lock-protected queue operation to ``lane``."""
        if self.queue_lock_cost > 0:
            started = self.env.now
            yield self.env.timeout(self.queue_lock_cost)
            if self.tracer.enabled:
                self.tracer.record(lane, TraceCategory.SCHEDULING,
                                   started, self.env.now, label="queue-op")
            if _oh.collector is not None:
                _oh.collector.on_queue_op(lane, started, self.env.now)

    def pick_run_queue(self, origin: PE) -> PE:
        """Which run queue a ready task goes to.

        Per-PE by default (the paper's implementation); with the node-level
        option, the shortest run queue wins (the paper's planned
        improvement for load imbalance).
        """
        if not self.node_level_run_queue:
            return origin
        return min(self.runtime.pes,
                   key=lambda p: (len(p.run_queue), p.id))

    # -- in-flight move registry ------------------------------------------------------

    def begin_inflight(self, block: DataBlock) -> Event:
        if block.bid in self._inflight:
            raise SchedulingError(
                f"two concurrent moves of block {block.name!r}")
        event = self.env.event(name=f"inflight:{block.name}")
        self._inflight[block.bid] = event
        return event

    def end_inflight(self, block: DataBlock, event: Event) -> None:
        current = self._inflight.pop(block.bid, None)
        if current is not event:
            raise SchedulingError(
                f"in-flight bookkeeping mismatch for {block.name!r}")
        if self.tracer.enabled:
            self.occupancy_log.append((self.env.now, self.hbm.used))
        if _mx.registry is not None:
            # sampled at exactly the occupancy-log points, so the gauge's
            # high-water mark agrees with occupancy_stats' peak
            _mx.registry.gauge("repro_hbm_used_bytes",
                               "HBM bytes in use at move completions"
                               ).set(self.hbm.used)
        event.succeed(block)

    def inflight_event(self, block: DataBlock) -> Event:
        """Event to wait on when someone else is moving ``block``."""
        try:
            return self._inflight[block.bid]
        except KeyError:
            # The move finished between the caller's check and this call;
            # return an already-fired event.
            done = self.env.event(name=f"inflight:{block.name}:done")
            done.succeed(block)
            return done

    # -- sanitizer glue -----------------------------------------------------------

    def check_quiescent(self) -> int:
        """Run the sanitizer's end-of-run invariant sweep, if one is active.

        Returns the number of violations found (0 with no sanitizer).
        Drivers call this after their last reduction completes.
        """
        if self.sanitizer is None:
            return 0
        return self.sanitizer.check_quiescent(self)

    # -- stats -----------------------------------------------------------------------

    def summary(self) -> dict[str, _t.Any]:
        return {
            "strategy": self.strategy.name,
            "tasks_intercepted": self.tasks_intercepted,
            "tasks_readied": self.tasks_readied,
            "tasks_completed": self.tasks_completed,
            "fetches": self.strategy.fetches,
            "evictions": self.strategy.evictions,
            "bytes_fetched": self.strategy.bytes_fetched,
            "bytes_evicted": self.strategy.bytes_evicted,
            "hbm_peak_used": self.hbm.allocator.peak_used,
            "hbm_rejected_fits": self.tracker.rejected_fits,
        }
