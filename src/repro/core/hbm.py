"""HBM capacity tracking with in-flight reservations.

"The IO scheduler keeps track of the HBM memory in use out of the total
16GB by keeping track of each block size being brought into HBM.  If...
allocating a data block would exceed the remaining HBM capacity, then the
IO thread goes to sleep." (§IV-B)

Several fetchers can run concurrently (no-IO and multi-IO strategies), so a
capacity *check* alone would race: two fetchers could both see room for the
last 1 GB.  The tracker therefore hands out **reservations** that are held
from the fetch decision until the move's destination allocation is final.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.mem.device import MemoryDevice

__all__ = ["HBMTracker"]


class HBMTracker:
    """Reservation ledger over the HBM device's allocator."""

    def __init__(self, hbm: MemoryDevice, *, headroom: int = 0):
        if headroom < 0:
            raise SchedulingError("headroom must be >= 0")
        self.hbm = hbm
        #: bytes deliberately kept free (the paper's baseline leaves ~1 GB)
        self.headroom = int(headroom)
        self.reserved = 0
        self.peak_reserved = 0
        self.rejected_fits = 0
        self.granted_reservations = 0

    # -- queries ------------------------------------------------------------

    @property
    def budget(self) -> int:
        """Capacity available to the OOC scheduler."""
        return self.hbm.capacity - self.headroom

    @property
    def in_use(self) -> int:
        """Bytes allocated on the device (resident blocks + in-flight dsts)."""
        return self.hbm.used

    @property
    def uncommitted(self) -> int:
        """Budget minus resident bytes minus outstanding reservations."""
        return self.budget - self.hbm.used - self.reserved

    def can_fit(self, nbytes: int) -> bool:
        fits = nbytes <= self.uncommitted
        if not fits:
            self.rejected_fits += 1
        return fits

    # -- reservations -----------------------------------------------------------

    def reserve(self, nbytes: int) -> int:
        """Reserve space ahead of a fetch; returns the reservation size.

        Raises :class:`SchedulingError` when the space is not there — call
        :meth:`can_fit` first (the strategies always do; a failure here
        means a bookkeeping bug, not a full HBM).
        """
        if nbytes < 0:
            raise SchedulingError("cannot reserve negative bytes")
        if nbytes > self.uncommitted:
            raise SchedulingError(
                f"reservation of {nbytes}B exceeds uncommitted capacity "
                f"({self.uncommitted}B)")
        self.reserved += nbytes
        self.peak_reserved = max(self.peak_reserved, self.reserved)
        self.granted_reservations += 1
        return nbytes

    def unreserve(self, nbytes: int) -> None:
        """Release a reservation (after the real allocation landed)."""
        if nbytes > self.reserved:
            raise SchedulingError(
                f"unreserve of {nbytes}B exceeds outstanding {self.reserved}B")
        self.reserved -= nbytes

    def __repr__(self) -> str:
        return (f"<HBMTracker used={self.hbm.used} reserved={self.reserved} "
                f"budget={self.budget}>")
