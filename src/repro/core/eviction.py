"""Eviction policies, gated on reference counts.

The paper's rule (§IV-B): "When a task finishes execution, it evicts its
data dependences to DDR4, if they are not currently in use by another task,
by checking the data blocks' reference counts."

:class:`OwnBlocksEviction` is that rule.  :class:`LRUEviction` is an
ablation that instead frees least-recently-used refcount-zero blocks when
space is actually needed (keeping hot blocks resident — beneficial under
reuse, as MatMul's read-only panels show).  :class:`NoEviction` disables
eviction (useful to demonstrate the HBM-full deadlock the paper's design
avoids, and as the policy for the static baselines).
"""

from __future__ import annotations

import typing as _t

from repro.mem.block import BlockState, DataBlock
from repro.mem.registry import BlockRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.hbm import HBMTracker
    from repro.core.ooc_task import OOCTask

__all__ = ["EvictionPolicy", "OwnBlocksEviction", "LRUEviction", "NoEviction"]


def _evictable(block: DataBlock) -> bool:
    return (block.state is BlockState.INHBM and not block.in_use
            and not block.pinned)


class EvictionPolicy:
    """Strategy object deciding which HBM-resident blocks to push out."""

    name = "abstract"

    def post_task_victims(self, task: "OOCTask",
                          tracker: "HBMTracker | None" = None) -> list[DataBlock]:
        """Blocks to evict right after ``task`` finished."""
        raise NotImplementedError

    def make_space_victims(self, registry: BlockRegistry, needed_bytes: int,
                           include_demanded: bool = True) -> list[DataBlock]:
        """Blocks to evict so that ``needed_bytes`` can be fetched."""
        raise NotImplementedError


def _lru_victims(registry: BlockRegistry, needed_bytes: int,
                 include_demanded: bool = True) -> list[DataBlock]:
    """LRU victims, demand-aware: blocks that queued tasks still reference
    (``demand > 0``) are only chosen once every unreferenced candidate is
    exhausted — evicting a block that a waiting task is about to fetch
    back is pure thrash.  ``include_demanded=False`` excludes them
    entirely (used by the proactive watermark evictor, which must never
    churn hot data)."""
    victims: list[DataBlock] = []
    freed = 0
    # Idle (demand-0) blocks go first, oldest-use first (LRU).  Among
    # still-demanded blocks the FIFO wait queues make next use knowable:
    # evict the block whose earliest pending task is *farthest away*
    # (Belady's rule), not the LRU one — for cyclic reuse patterns LRU
    # would evict exactly the block needed soonest.
    candidates = sorted(
        (b for b in registry if _evictable(b)
         and (include_demanded or b.demand == 0)),
        key=lambda b: (
            (0, b.last_scheduled_at if b.last_scheduled_at is not None
             else -1.0, b.bid)
            if b.demand == 0 else
            (1, -b.next_use, b.bid)))
    for block in candidates:
        if freed >= needed_bytes:
            break
        victims.append(block)
        freed += block.nbytes
    return victims


class OwnBlocksEviction(EvictionPolicy):
    """The paper's policy: a finishing task evicts its own idle blocks.

    Algorithm 1 also states the general rule "Data blocks not in use are
    evicted to DDR4": when a fetch cannot proceed because HBM is clogged
    with idle blocks whose dependent tasks all finished long ago (shared
    read-only blocks are prone to this), we fall back to demand-evicting
    them in LRU order.  Without this fallback the pure post-task policy
    deadlocks once every runnable task's working set is blocked by stale
    resident data.
    """

    name = "own-blocks"

    def __init__(self, *, pressure_threshold: float = 0.92):
        #: eager post-task eviction only engages above this HBM utilisation;
        #: below it, idle blocks stay resident for reuse and space is made
        #: on demand instead.  0.0 reproduces the paper's always-eager text
        #: literally (at the cost of evicting reusable blocks into a 95%%
        #: empty HBM, which is what kills read-only reuse).
        self.pressure_threshold = pressure_threshold

    def post_task_victims(self, task: "OOCTask",
                          tracker: "HBMTracker | None" = None) -> list[DataBlock]:
        if tracker is not None and self.pressure_threshold > 0.0:
            utilisation = ((tracker.in_use + tracker.reserved)
                           / max(tracker.budget, 1))
            if utilisation < self.pressure_threshold:
                return []
        # Keep blocks some queued task still needs: the runtime can see
        # every wait queue, so evicting them is avoidable thrash.
        return [b for b in task.blocks if _evictable(b) and b.demand == 0]

    def make_space_victims(self, registry: BlockRegistry, needed_bytes: int,
                           include_demanded: bool = True) -> list[DataBlock]:
        return _lru_victims(registry, needed_bytes, include_demanded)


class LRUEviction(EvictionPolicy):
    """Ablation: keep everything resident; evict LRU blocks on demand."""

    name = "lru"

    def post_task_victims(self, task: "OOCTask",
                          tracker: "HBMTracker | None" = None) -> list[DataBlock]:
        return []

    def make_space_victims(self, registry: BlockRegistry, needed_bytes: int,
                           include_demanded: bool = True) -> list[DataBlock]:
        return _lru_victims(registry, needed_bytes, include_demanded)


class NoEviction(EvictionPolicy):
    """Never evict (static baselines / deadlock demonstrations)."""

    name = "none"

    def post_task_victims(self, task: "OOCTask",
                          tracker: "HBMTracker | None" = None) -> list[DataBlock]:
        return []

    def make_space_victims(self, registry: BlockRegistry, needed_bytes: int,
                           include_demanded: bool = True) -> list[DataBlock]:
        return []
