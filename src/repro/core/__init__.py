"""The paper's contribution: memory-heterogeneity-aware OOC scheduling.

Provides the :class:`~repro.core.manager.OOCManager` (the interception layer
added to Converse), the HBM capacity tracker, reference-count-gated eviction
policies, and the three scheduling strategies of §IV-B plus the three static
baselines of the evaluation:

========================  =========================================
strategy                  paper name
========================  =========================================
``NaiveStrategy``         Baseline / "Naive" (HBM until full, spill)
``DDROnlyStrategy``       DDR4only
``HBMOnlyStrategy``       (Figure 2's in-HBM configuration)
``SingleIOThreadStrategy``Multiple queues, Single IO thread
``NoIOThreadStrategy``    Multiple queues, no IO thread (synchronous)
``MultiIOThreadStrategy`` Multiple queues, Multiple IO threads
========================  =========================================
"""

from repro.core.ooc_task import OOCTask, TaskState
from repro.core.hbm import HBMTracker
from repro.core.eviction import (
    EvictionPolicy,
    OwnBlocksEviction,
    LRUEviction,
    NoEviction,
)
from repro.core.manager import OOCManager
from repro.core.strategies import (
    Strategy,
    NaiveStrategy,
    DDROnlyStrategy,
    HBMOnlyStrategy,
    SingleIOThreadStrategy,
    NoIOThreadStrategy,
    MultiIOThreadStrategy,
    STRATEGIES,
    make_strategy,
)

__all__ = [
    "OOCTask", "TaskState",
    "HBMTracker",
    "EvictionPolicy", "OwnBlocksEviction", "LRUEviction", "NoEviction",
    "OOCManager",
    "Strategy",
    "NaiveStrategy", "DDROnlyStrategy", "HBMOnlyStrategy",
    "SingleIOThreadStrategy", "NoIOThreadStrategy", "MultiIOThreadStrategy",
    "STRATEGIES", "make_strategy",
]
