"""Multiple queues, Single IO thread (§IV-B).

One IO thread serves every PE's wait queue round-robin, "one by one", so
that "the IO thread can serve same number of requests for each wait queue
at a time, thereby serving all PEs equally".  Fetches are serial through
the single thread — which is exactly why this strategy collapses on
Stencil3D ("the IO thread needs to perform prefetch of blocks for each
chare on each PE", Figure 8) yet keeps up on MatMul, where read-only block
reuse means most dependences are already resident (Figure 9).

Eviction is synchronous on the finishing worker: "When a task finishes
execution, it evicts its data dependences to DDR4...  If the IO thread is
sleeping, the task wakes it up after the eviction."
"""

from __future__ import annotations

import typing as _t

from repro.core.ooc_task import OOCTask
from repro.core.strategies.base import Strategy
from repro.runtime.pe import PE
from repro.sim.sync import Gate
from repro.trace.events import TraceCategory

__all__ = ["SingleIOThreadStrategy"]

IO_LANE = "io0"


class SingleIOThreadStrategy(Strategy):
    """One wait queue per PE, a single shared IO thread."""

    name = "single-io"
    intercepts = True

    def __init__(self) -> None:
        super().__init__()
        self.gate: Gate | None = None
        self._rr_start = 0
        self.scan_passes = 0

    def setup(self) -> None:
        mgr = self._mgr()
        self._require_pes()
        self.gate = Gate(mgr.env, name="single-io.gate")
        self.io_process = mgr.env.process(self._io_main(), name="io-thread")

    def stop(self) -> None:
        proc = getattr(self, "io_process", None)
        if proc is not None and proc.is_alive:
            proc.interrupt("shutdown")

    # -- worker side ---------------------------------------------------------

    def submit(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Pre-processing: park the task; signal the IO thread."""
        mgr = self._mgr()
        yield from mgr.charge_queue_op(f"pe{pe.id}")
        pe.wait_enqueue(task)
        assert self.gate is not None
        self.gate.open()

    def task_finished(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Post-processing: synchronous eviction, then wake the IO thread."""
        mgr = self._mgr()
        for victim in mgr.eviction.post_task_victims(task, mgr.tracker):
            if victim.in_hbm and not victim.in_use and not victim.pinned:
                yield from self.evict_block(
                    victim, f"pe{pe.id}", TraceCategory.POSTPROCESS_EVICT,
                    reason="post-task")
        assert self.gate is not None
        self.gate.open()

    # -- IO thread -------------------------------------------------------------

    def _any_waiting(self) -> bool:
        return any(pe.wait_queue for pe in self._mgr().runtime.pes)

    def _io_main(self) -> _t.Generator:
        mgr = self._mgr()
        pes = mgr.runtime.pes
        assert self.gate is not None
        while True:
            self.gate.close()
            progress = yield from self._scan_once(pes)
            if progress:
                continue
            if self.gate.is_open:
                # signalled while we were scanning; rescan
                continue
            yield self.gate.wait()

    def _scan_once(self, pes: list[PE]) -> _t.Generator:
        """One fair pass: at most one task fetched per PE wait queue."""
        mgr = self._mgr()
        self.scan_passes += 1
        progress = yield from self.maintain_watermarks(IO_LANE)
        n = len(pes)
        for k in range(n):
            pe = pes[(self._rr_start + k) % n]
            if not pe.wait_queue:
                continue
            yield from mgr.charge_queue_op(IO_LANE)
            task = pe.wait_dequeue()
            assert task is not None
            if not self.can_fetch_task(task):
                # "if allocating a data block would exceed the remaining
                # HBM capacity, then the IO thread goes to sleep" — we
                # requeue and let the pass finish; sleep happens in the
                # main loop when no progress was made.
                pe.wait_requeue_front(task)
                continue
            ok = yield from self.fetch_task_blocks(
                task, IO_LANE, TraceCategory.IO_FETCH)
            if ok:
                self.make_ready(pe, task)
                progress = True
            else:
                pe.wait_requeue_front(task)
        self._rr_start = (self._rr_start + 1) % n
        return progress
