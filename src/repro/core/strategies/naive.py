"""The paper's Baseline / "Naive" strategy (§IV-B).

"In our baseline mechanism, we do not perform any prefetch or eviction of
data...  We use ``numa_alloc_onnode``... to place data blocks in HBM and
any remaining data blocks that do not fit within the 16GB HBM are placed in
DDR4."  Kernels then stream from wherever their blocks landed, so the
overflow fraction runs at DDR4 bandwidth forever.
"""

from __future__ import annotations

import typing as _t

from repro.core.strategies.base import Strategy
from repro.errors import SchedulingError
from repro.mem.block import DataBlock
from repro.runtime.pe import PE

__all__ = ["NaiveStrategy"]


class NaiveStrategy(Strategy):
    """HBM-until-full static placement; no interception, no movement."""

    name = "naive"
    intercepts = False

    def __init__(self, *, hbm_fill_limit: int | None = None):
        super().__init__()
        #: paper: "We allocate close to 15GB or more on HBM in Baseline
        #: case... ensuring that we do not over-subscribe" — a soft fill
        #: cap below the hard device capacity.  None = fill to capacity.
        self.hbm_fill_limit = hbm_fill_limit
        self.blocks_in_hbm = 0
        self.blocks_in_ddr = 0

    def place_initial(self, blocks: _t.Iterable[DataBlock]) -> None:
        mgr = self._mgr()
        limit = (self.hbm_fill_limit if self.hbm_fill_limit is not None
                 else mgr.hbm.capacity)
        for block in blocks:
            fits_soft_cap = mgr.hbm.used + block.nbytes <= limit
            if fits_soft_cap and mgr.hbm.can_allocate(block.nbytes):
                mgr.topology.place_block(block, mgr.hbm)
                self.blocks_in_hbm += 1
            else:
                mgr.topology.place_block(block, mgr.ddr)
                self.blocks_in_ddr += 1

    def submit(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("NaiveStrategy never intercepts messages")
        yield

    def task_finished(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("NaiveStrategy never intercepts messages")
        yield
