"""Scheduling strategies (§IV-B) and static baselines (§IV-B, §V)."""

from repro.core.strategies.base import Strategy
from repro.core.strategies.naive import NaiveStrategy
from repro.core.strategies.ddr_only import DDROnlyStrategy
from repro.core.strategies.hbm_only import HBMOnlyStrategy
from repro.core.strategies.single_io import SingleIOThreadStrategy
from repro.core.strategies.no_io import NoIOThreadStrategy
from repro.core.strategies.multi_io import MultiIOThreadStrategy
from repro.core.strategies.static_guided import StaticGuidedStrategy
from repro.core.strategies.phase_guided import PhaseGuidedStrategy

#: registry used by the benchmark harness (paper series names, plus the
#: bwlint-guided placements added on top of them)
STRATEGIES: dict[str, type[Strategy]] = {
    "naive": NaiveStrategy,
    "ddr-only": DDROnlyStrategy,
    "hbm-only": HBMOnlyStrategy,
    "single-io": SingleIOThreadStrategy,
    "no-io": NoIOThreadStrategy,
    "multi-io": MultiIOThreadStrategy,
    "static-guided": StaticGuidedStrategy,
    "phase-guided": PhaseGuidedStrategy,
}


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by its registry name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Strategy",
    "NaiveStrategy", "DDROnlyStrategy", "HBMOnlyStrategy",
    "SingleIOThreadStrategy", "NoIOThreadStrategy", "MultiIOThreadStrategy",
    "StaticGuidedStrategy", "PhaseGuidedStrategy", "STRATEGIES",
    "make_strategy",
]
