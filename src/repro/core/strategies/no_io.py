"""Multiple queues, no IO thread — synchronous parallel fetch (§IV-B).

"When a task arrives on a PE, if there is sufficient allocation space in
HBM, it fetches its own data in the preprocessing step...  If there is no
space in HBM, it adds itself to the PE's wait queue."  Fetch and eviction
are parallel across PEs (no single-thread bottleneck) but *synchronous*:
they run inside the converse loop and are charged to the worker — the
~20 ms pre-processing bars of Figure 6a.

One completion beyond the paper's text: a PE whose waiters could not fetch
is only re-checked "when a task finishes execution ... on its PE".  If the
space was freed by *another* PE's eviction, the starved PE would never look
again — a real deadlock on working sets that clog HBM with shared blocks.
We close the gap by posting a :class:`~repro.runtime.interception.RetryFetch`
nudge to starved PEs after evictions elsewhere.
"""

from __future__ import annotations

import typing as _t

from repro.core.ooc_task import OOCTask
from repro.core.strategies.base import Strategy
from repro.runtime.interception import RetryFetch
from repro.runtime.pe import PE
from repro.trace.events import TraceCategory

__all__ = ["NoIOThreadStrategy"]


class NoIOThreadStrategy(Strategy):
    """Each task fetches/evicts its own data on its worker PE."""

    name = "no-io"
    intercepts = True

    def __init__(self) -> None:
        super().__init__()
        self.parked_tasks = 0
        self.retries_posted = 0
        #: PEs with a RetryFetch already queued (avoid flooding)
        self._retry_pending: set[int] = set()

    # -- worker side -----------------------------------------------------------

    def submit(self, pe: PE, task: OOCTask) -> _t.Generator:
        mgr = self._mgr()
        yield from mgr.charge_queue_op(f"pe{pe.id}")
        if self.can_fetch_task(task):
            ok = yield from self.fetch_task_blocks(
                task, f"pe{pe.id}",
                TraceCategory.PREPROCESS_FETCH,
                evict_category=TraceCategory.POSTPROCESS_EVICT)
            if ok:
                self.make_ready(pe, task)
                return
        self.parked_tasks += 1
        pe.wait_enqueue(task)

    def task_finished(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Evict own blocks, then try to schedule waiters on this PE.

        "After evicting its own data, it checks in the wait queue on its
        PE, to see if there are any tasks waiting to be scheduled on the
        PE.  As a result of its own data eviction, it can now bring in data
        blocks for a waiting task and schedules the task."
        """
        mgr = self._mgr()
        lane = f"pe{pe.id}"
        evicted = False
        for victim in mgr.eviction.post_task_victims(task, mgr.tracker):
            if victim.in_hbm and not victim.in_use and not victim.pinned:
                yield from self.evict_block(
                    victim, lane, TraceCategory.POSTPROCESS_EVICT,
                    reason="post-task")
                evicted = True
        yield from self.maintain_watermarks(
            lane, TraceCategory.POSTPROCESS_EVICT)
        yield from self._drain_waiters(pe)
        # Always nudge: this completion released refcounts, so another
        # PE's parked task may now be schedulable even if nothing was
        # physically evicted here.
        self._nudge_starved_pes(except_pe=pe.id)

    def retry_waiting(self, pe: PE) -> _t.Generator:
        """RetryFetch handler: re-attempt this PE's wait queue."""
        self._retry_pending.discard(pe.id)
        yield from self._drain_waiters(pe)

    # -- internals -----------------------------------------------------------------

    def _drain_waiters(self, pe: PE) -> _t.Generator:
        mgr = self._mgr()
        lane = f"pe{pe.id}"
        while pe.wait_queue:
            head = pe.wait_queue[0]
            if not self.can_fetch_task(head):
                break
            yield from mgr.charge_queue_op(lane)
            waiting = pe.wait_dequeue()
            assert waiting is head
            ok = yield from self.fetch_task_blocks(
                waiting, lane, TraceCategory.PREPROCESS_FETCH,
                evict_category=TraceCategory.POSTPROCESS_EVICT)
            if ok:
                self.make_ready(pe, waiting)
            else:
                pe.wait_requeue_front(waiting)
                break

    def _nudge_starved_pes(self, except_pe: int) -> None:
        """Post RetryFetch to parked PEs whose head task could now fit."""
        mgr = self._mgr()
        for other in mgr.runtime.pes:
            if other.id == except_pe or not other.wait_queue:
                continue
            if other.id in self._retry_pending:
                continue
            # cheap pre-filter: skip PEs whose head task still cannot fit
            # even before demand eviction (avoids retry storms)
            head = other.wait_queue[0]
            if self.missing_bytes(head) > mgr.tracker.budget - mgr.tracker.reserved:
                continue
            self._retry_pending.add(other.id)
            self.retries_posted += 1
            other.run_queue.put(RetryFetch())
