"""Multiple queues, Multiple IO threads — fully asynchronous (§IV-B).

"There is one IO thread per worker thread...  Each IO thread pops tasks
from the wait queue of that PE and brings in data till the HBM is full.
All IO threads are likely working in parallel, hence there is no starvation
problem."  IO threads are pinned to the SMT sibling of their worker's core
("scheduled on the hyperthread cores corresponding to the worker threads").

Eviction defaults to the IO thread (``evict_mode="io"``) so that both fetch
*and* evict are asynchronous, matching the strategy's stated benefit; the
§IV-B narration where the finishing worker evicts inline is available as
``evict_mode="worker"`` for the ablation bench.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.core.ooc_task import OOCTask
from repro.core.strategies.base import Strategy
from repro.errors import ConfigError
from repro.mem.block import DataBlock
from repro.runtime.pe import PE
from repro.sim.sync import Gate
from repro.trace.events import TraceCategory

__all__ = ["MultiIOThreadStrategy"]


class MultiIOThreadStrategy(Strategy):
    """One wait queue and one IO thread per PE; asynchronous fetch/evict."""

    name = "multi-io"
    intercepts = True

    def __init__(self, *, evict_mode: str = "io",
                 wake_all_after_evict: bool = True,
                 prefetch_ahead: int = 4):
        super().__init__()
        if evict_mode not in ("io", "worker"):
            raise ConfigError(f"evict_mode must be 'io' or 'worker', "
                              f"got {evict_mode!r}")
        if prefetch_ahead < 1:
            raise ConfigError("prefetch_ahead must be >= 1")
        self.evict_mode = evict_mode
        #: ready-task depth per PE the IO thread may build up.  The paper
        #: prefetches "till the HBM is full", but with 64 IO threads that
        #: over-pins HBM (every ready task holds refcounts on its blocks)
        #: and forces demand-eviction churn of shared blocks; a small
        #: bound keeps the pipeline fed while leaving room for reuse.
        self.prefetch_ahead = prefetch_ahead
        #: broadcast-wake after evictions so IO threads sleeping on a full
        #: HBM (whose space was freed by *another* PE) make progress; the
        #: paper wakes only the local IO thread, which is deadlock-prone.
        self.wake_all_after_evict = wake_all_after_evict
        self.gates: dict[int, Gate] = {}
        self.evict_requests: dict[int, deque[DataBlock]] = {}
        self.io_processes: list = []
        #: SMT lanes the IO threads are pinned to, for inspection
        self.io_pinning: dict[int, int] = {}

    def setup(self) -> None:
        mgr = self._mgr()
        for pe in self._require_pes():
            self.gates[pe.id] = Gate(mgr.env, name=f"multi-io.gate{pe.id}")
            self.evict_requests[pe.id] = deque()
            sibling = pe.core.smt_sibling() if len(pe.core.threads) > 1 \
                else pe.core.primary_thread
            self.io_pinning[pe.id] = sibling.global_id
            self.io_processes.append(mgr.env.process(
                self._io_main(pe), name=f"io-thread-{pe.id}"))

    def stop(self) -> None:
        """Tear down IO threads.  Idempotent: processes that already exited
        (or were interrupted by an earlier ``stop``) are skipped."""
        for proc in self.io_processes:
            if proc.is_alive:
                proc.interrupt("shutdown")

    # -- worker side ---------------------------------------------------------

    def submit(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Pre-processing is now trivial: enqueue and wake the local IO thread."""
        mgr = self._mgr()
        yield from mgr.charge_queue_op(f"pe{pe.id}")
        pe.wait_enqueue(task)
        self.gates[pe.id].open()

    def task_finished(self, pe: PE, task: OOCTask) -> _t.Generator:
        mgr = self._mgr()
        victims = self.post_task_victims(task)
        if self.evict_mode == "worker":
            for victim in victims:
                if victim.in_hbm and not victim.in_use and not victim.pinned:
                    yield from self.evict_block(
                        victim, f"pe{pe.id}", TraceCategory.POSTPROCESS_EVICT,
                        reason="post-task")
        else:
            self.evict_requests[pe.id].extend(victims)
        # A completion releases reference counts, which can make blocks
        # evictable for *other* PEs' stalled fetches — broadcast the wake
        # (the paper wakes only the local IO thread, which can deadlock
        # when capacity is freed logically rather than by an eviction).
        self._wake_after_evict(pe, True)

    def post_task_victims(self, task: OOCTask) -> list[DataBlock]:
        """Eviction candidates after ``task`` completed (overridable).

        The base policy delegates to the manager's eviction policy;
        subclasses with more context (e.g. a phase timeline proving a
        block is about to be reused) may filter the list.
        """
        mgr = self._mgr()
        return mgr.eviction.post_task_victims(task, mgr.tracker)

    def _wake_after_evict(self, pe: PE, evicted: bool) -> None:
        self.gates[pe.id].open()
        if evicted and self.wake_all_after_evict:
            for gate in self.gates.values():
                gate.open()

    # -- IO thread (one per PE, pinned to the SMT sibling) ------------------------

    def _io_main(self, pe: PE) -> _t.Generator:
        mgr = self._mgr()
        gate = self.gates[pe.id]
        lane = f"io{pe.id}"
        requests = self.evict_requests[pe.id]
        while True:
            gate.close()
            progress = False
            # Serve eviction requests first: they create the space fetches
            # need ("allowing any more additional tasks to have their data
            # prefetched and be scheduled").
            evicted_any = False
            while requests:
                victim = requests.popleft()
                if victim.in_hbm and not victim.in_use and not victim.pinned:
                    yield from self.evict_block(
                        victim, lane, TraceCategory.IO_EVICT,
                        reason="post-task")
                    progress = True
                    evicted_any = True
            if evicted_any:
                self._wake_after_evict(pe, True)
                gate.close()
            # Keep the free-space reserve topped up so fetches below never
            # wait on eviction.
            wm = yield from self.maintain_watermarks(lane)
            if wm:
                progress = True
                self._wake_after_evict(pe, True)
                gate.close()
            # Fetch "till the HBM is full" — bounded by the ready-depth
            # limit so the pipeline stays fed without over-pinning HBM.
            while pe.wait_queue and len(pe.run_queue) < self.prefetch_ahead:
                yield from mgr.charge_queue_op(lane)
                task = pe.wait_dequeue()
                assert task is not None
                if not self.can_fetch_task(task):
                    pe.wait_requeue_front(task)
                    break
                ok = yield from self.fetch_task_blocks(
                    task, lane, TraceCategory.IO_FETCH)
                if ok:
                    self.make_ready(pe, task)
                    progress = True
                else:
                    pe.wait_requeue_front(task)
                    break
            if progress or gate.is_open:
                continue
            # Idle: let subclasses use the spare IO bandwidth (e.g.
            # phase-guided lookahead prefetch) before parking on the gate.
            busy = yield from self.io_idle_work(pe, lane)
            if busy:
                continue
            yield gate.wait()

    def io_idle_work(self, pe: PE, lane: str) -> _t.Generator:
        """Extra work for an otherwise idle IO thread (generator).

        Called when the wait queue is drained and no evictions are
        pending, before the thread parks on its gate.  Returns True if
        progress was made (the loop re-runs instead of sleeping).  The
        base strategy has nothing to do off the demand path.
        """
        return False
        yield  # pragma: no cover
