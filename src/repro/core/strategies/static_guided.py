"""Compiler-guided static placement (bwlint guidance as the 7th policy).

Where :class:`~repro.core.strategies.naive.NaiveStrategy` fills HBM in
block-arrival order, this strategy is driven *purely* by a
:class:`~repro.lint.guidance.GuidanceFile` that
:func:`repro.lint.guidance.build_guidance` inferred from application
source: blocks are ranked by their site's statically inferred traffic
density (bytes moved per byte resident), sites the analyzer proved
traffic-dead are pinned to DDR outright, and only then does the
HBM-until-full fill run.  Like the baseline it never intercepts
messages — the interesting part happened at lint time.

Guidance resolution order: an explicit ``guidance=`` object or
``guidance_path=`` argument, the ``$REPRO_GUIDANCE`` environment
variable, else a one-shot in-process analysis of :mod:`repro.apps`
(cached per interpreter, so sweeps do not re-parse per run).

A runtime block labelled ``"StencilChare[3].grid"`` maps to guidance
site ``"StencilChare.grid"``; node-group-shared blocks
(``"MatMulPanels[nodegroup].shared('A', 2)"``) map to
``"MatMulPanels.A"``.
"""

from __future__ import annotations

import os
import typing as _t

from repro.core.strategies.naive import NaiveStrategy
from repro.errors import SchedulingError
from repro.mem.block import DataBlock
from repro.runtime.pe import PE

if _t.TYPE_CHECKING:
    from repro.lint.guidance import GuidanceFile

__all__ = ["StaticGuidedStrategy", "block_site_id"]

#: one-shot module-level cache for the auto-built repro.apps guidance
_DEFAULT_GUIDANCE: _t.Optional["GuidanceFile"] = None


def block_site_id(block: DataBlock) -> str | None:
    """Map a runtime block label back to its static allocation site."""
    head, sep, name = block.name.partition("].")
    if not sep:
        return None
    cls = head.split("[", 1)[0]
    if name.startswith("shared"):
        # share_block keys render as shared('A', 2) / shared3 / shared'x'
        key = name[len("shared"):]
        if key.startswith("("):
            key = key[1:].split(",", 1)[0]
        key = key.strip().strip("'\"")
        if not key:
            return None
        name = key
    return f"{cls}.{name}"


def _default_guidance() -> "GuidanceFile":
    global _DEFAULT_GUIDANCE
    if _DEFAULT_GUIDANCE is None:
        import repro.apps as _apps
        from repro.lint.guidance import build_guidance
        _DEFAULT_GUIDANCE = build_guidance(
            [os.path.dirname(_apps.__file__)])
    return _DEFAULT_GUIDANCE


class StaticGuidedStrategy(NaiveStrategy):
    """Static placement ordered by bwlint's inferred traffic density."""

    name = "static-guided"
    intercepts = False

    def __init__(self, *, hbm_fill_limit: int | None = None,
                 guidance: "GuidanceFile | None" = None,
                 guidance_path: str | None = None):
        super().__init__(hbm_fill_limit=hbm_fill_limit)
        self._guidance = guidance
        self._guidance_path = guidance_path
        self.blocks_pinned_ddr = 0

    def guidance(self) -> "GuidanceFile":
        if self._guidance is None:
            from repro.lint.guidance import load_guidance
            path = self._guidance_path or os.environ.get("REPRO_GUIDANCE")
            if path:
                self._guidance = load_guidance(path)
            else:
                self._guidance = _default_guidance()
        return self._guidance

    def place_initial(self, blocks: _t.Iterable[DataBlock]) -> None:
        guide = self.guidance()
        mgr = self._mgr()
        ranked: list[tuple[float, int, DataBlock]] = []
        pinned: list[DataBlock] = []
        for seq, block in enumerate(blocks):
            site = block_site_id(block)
            if site is not None and guide.tier(site) == "ddr":
                pinned.append(block)
                continue
            priority = guide.priority(site) if site is not None else 1.0
            ranked.append((priority, seq, block))
        # highest traffic density claims HBM first; equal densities keep
        # arrival order, so a uniform-density app places exactly like the
        # naive baseline (stable sort on the negated key)
        ranked.sort(key=lambda item: (-item[0], item[1]))
        super().place_initial(block for _prio, _seq, block in ranked)
        for block in pinned:
            mgr.topology.place_block(block, mgr.ddr)
            self.blocks_in_ddr += 1
            self.blocks_pinned_ddr += 1

    def submit(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError(
            "StaticGuidedStrategy never intercepts messages")
        yield

    def task_finished(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError(
            "StaticGuidedStrategy never intercepts messages")
        yield
