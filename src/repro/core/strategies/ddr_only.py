"""DDR4-only placement: the evaluation's lower bound (Figures 2, 8, 9)."""

from __future__ import annotations

import typing as _t

from repro.core.strategies.base import Strategy
from repro.errors import SchedulingError
from repro.mem.block import DataBlock
from repro.runtime.pe import PE

__all__ = ["DDROnlyStrategy"]


class DDROnlyStrategy(Strategy):
    """Everything on the low-bandwidth pool; no interception, no movement."""

    name = "ddr-only"
    intercepts = False

    def place_initial(self, blocks: _t.Iterable[DataBlock]) -> None:
        mgr = self._mgr()
        for block in blocks:
            mgr.topology.place_block(block, mgr.ddr)

    def submit(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("DDROnlyStrategy never intercepts messages")
        yield

    def task_finished(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("DDROnlyStrategy never intercepts messages")
        yield
