"""Phase-scheduled placement replaying the bwlint v2 timeline (8th policy).

:class:`~repro.core.strategies.static_guided.StaticGuidedStrategy`
consumes only the *aggregate* per-site traffic of a GuidanceFile; this
strategy replays the schema-2 **phase timeline**
(:mod:`repro.lint.phases`) on top of the full multi-IO machinery:

* the current phase is observed from the entry methods being submitted
  (``"Cls.entry"`` mapped through the guidance phase table — the
  runtime never re-analyzes source, same contract as static-guided);
* at a phase boundary, blocks whose site the analyzer proved
  *phase-dead* (``last_phase`` behind the new phase) are enqueued for
  asynchronous eviction — the REP310 remediation, applied at runtime;
* idle IO threads prefetch blocks whose site first becomes hot in the
  *next* phase (:meth:`MultiIOThreadStrategy.io_idle_work`), so the
  lookahead fetch rides otherwise-wasted IO bandwidth and never blocks
  the demand path.

With a schema-1 guidance file (no phase table) every hook degrades to a
no-op and the strategy behaves exactly like ``multi-io``.
"""

from __future__ import annotations

import os
import typing as _t

from repro.core.ooc_task import OOCTask
from repro.core.strategies.multi_io import MultiIOThreadStrategy
from repro.core.strategies.static_guided import (_default_guidance,
                                                 block_site_id)
from repro.mem.block import BlockState, DataBlock
from repro.runtime.pe import PE
from repro.trace.events import TraceCategory

if _t.TYPE_CHECKING:
    from repro.lint.guidance import GuidanceFile

__all__ = ["PhaseGuidedStrategy"]


class PhaseGuidedStrategy(MultiIOThreadStrategy):
    """Multi-IO scheduling driven by the bwlint v2 phase timeline."""

    name = "phase-guided"
    intercepts = True

    def __init__(self, *, guidance: "GuidanceFile | None" = None,
                 guidance_path: str | None = None, **kwargs):
        super().__init__(**kwargs)
        self._guidance = guidance
        self._guidance_path = guidance_path
        #: highest phase index observed from submitted entries
        self.phase = -1
        self.phase_advances = 0
        #: phase-dead blocks handed to the IO eviction queues
        self.phase_evictions_requested = 0
        #: blocks brought in by the next-phase lookahead prefetch
        self.lookahead_prefetches = 0
        #: post-task victims kept resident because their site is still
        #: hot in the current (or a later) phase
        self.hot_retentions = 0
        #: "Cls.entry" -> earliest phase containing that entry
        self._entry_phase: dict[str, int] = {}
        #: site id -> (first_phase, last_phase)
        self._intervals: dict[str, tuple[int, int]] = {}
        #: memoized lookahead plan: (phase it was built for, blocks)
        self._lookahead: tuple[int, list[DataBlock]] = (-2, [])
        #: recomputed at each phase boundary: True when the phase-hot
        #: working set fits HBM, enabling post-task victim retention
        self._retain_hot = False

    # -- guidance resolution (same order as StaticGuidedStrategy) ----------

    def guidance(self) -> "GuidanceFile":
        if self._guidance is None:
            from repro.lint.guidance import load_guidance
            path = self._guidance_path or os.environ.get("REPRO_GUIDANCE")
            if path:
                self._guidance = load_guidance(path)
            else:
                self._guidance = _default_guidance()
        return self._guidance

    def setup(self) -> None:
        super().setup()
        guide = self.guidance()
        for ph in guide.phase_table():
            for entry in ph.get("entries", ()):
                prev = self._entry_phase.get(entry)
                if prev is None or ph["index"] < prev:
                    self._entry_phase[entry] = ph["index"]
        for site_id in guide.sites:
            first = guide.first_phase(site_id)
            last = guide.last_phase(site_id)
            if first is not None and last is not None:
                self._intervals[site_id] = (first, last)

    # -- phase tracking ----------------------------------------------------

    def _task_entry_id(self, task: OOCTask) -> str:
        return f"{type(task.chare).__name__}.{task.message.entry.name}"

    def _observe_phase(self, pe: PE, task: OOCTask) -> None:
        phase = self._entry_phase.get(self._task_entry_id(task))
        if phase is None or phase <= self.phase:
            return
        self.phase = phase
        self.phase_advances += 1
        self._retain_hot = self._phase_set_fits()
        self._request_phase_dead_evictions(pe)

    def _phase_set_fits(self) -> bool:
        """Does the current phase's hot working set fit the HBM budget?

        Retaining post-task victims only pays when the whole phase-hot
        set can stay resident; in a streaming phase (hot set larger than
        HBM) retention merely shifts the same evictions onto the demand
        path, serial with the fetches they unblock.
        """
        mgr = self._mgr()
        hot_bytes = 0
        for block in mgr.registry:
            site = block_site_id(block)
            interval = self._intervals.get(site) if site else None
            if interval is not None \
                    and interval[0] <= self.phase <= interval[1]:
                hot_bytes += block.nbytes
        budget = mgr.tracker.budget
        return hot_bytes <= (1.0 - self.watermark_high) * budget

    def _request_phase_dead_evictions(self, pe: PE) -> None:
        """Queue blocks of phase-dead sites onto this PE's IO thread.

        The IO thread applies the usual in-use/pinned guards before the
        actual eviction, so a site the analyzer believed dead but which a
        straggler task still holds simply stays resident.
        """
        mgr = self._mgr()
        requests = self.evict_requests[pe.id]
        queued = {block.bid for block in requests}
        for block in mgr.registry:
            if block.bid in queued or block.state is not BlockState.INHBM:
                continue
            site = block_site_id(block)
            interval = self._intervals.get(site) if site else None
            if interval is not None and interval[1] < self.phase:
                requests.append(block)
                self.phase_evictions_requested += 1
        if requests:
            self.gates[pe.id].open()

    # -- worker side -------------------------------------------------------

    def submit(self, pe: PE, task: OOCTask) -> _t.Generator:
        self._observe_phase(pe, task)
        yield from super().submit(pe, task)

    def post_task_victims(self, task: OOCTask) -> list[DataBlock]:
        """Keep phase-hot blocks resident; evict only what the timeline
        allows.

        The eviction policy nominates everything a finished task used,
        which on an iterative phase (stencil's exchange, trips=N) evicts
        blocks the very next iteration refetches.  A site whose liveness
        interval still covers the current phase is provably about to be
        reused — dropping it from the victim list converts that churn
        into residency.  Demand eviction still reclaims them if a fetch
        genuinely needs the space.
        """
        victims = super().post_task_victims(task)
        if self.phase < 0 or not self._retain_hot:
            return victims
        kept: list[DataBlock] = []
        for victim in victims:
            site = block_site_id(victim)
            interval = self._intervals.get(site) if site else None
            if interval is not None and interval[1] >= self.phase:
                self.hot_retentions += 1
                continue
            kept.append(victim)
        return kept

    # -- IO-thread lookahead -----------------------------------------------

    def _lookahead_blocks(self) -> list[DataBlock]:
        """Blocks whose site first becomes hot in the next phase."""
        target = self.phase + 1
        built_for, blocks = self._lookahead
        if built_for == target:
            return blocks
        mgr = self._mgr()
        blocks = []
        for block in mgr.registry:
            site = block_site_id(block)
            interval = self._intervals.get(site) if site else None
            if interval is not None and interval[0] == target:
                blocks.append(block)
        self._lookahead = (target, blocks)
        return blocks

    def io_idle_work(self, pe: PE, lane: str) -> _t.Generator:
        """Prefetch next-phase-hot blocks with the idle IO bandwidth."""
        progress = False
        mgr = self._mgr()
        for block in self._lookahead_blocks():
            if block.state is BlockState.INHBM or block.moving:
                continue
            if not mgr.tracker.can_fit(block.nbytes):
                break  # never demand-evict for a lookahead fetch
            fetched = yield from self.fetch_block(
                block, lane, TraceCategory.IO_FETCH)
            if not fetched:
                break
            self.lookahead_prefetches += 1
            progress = True
        return progress
