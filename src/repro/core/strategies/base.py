"""Strategy base class with the shared fetch/evict machinery.

Everything timing-critical is a generator meant to run inside a simulated
process (a worker PE's converse loop or an IO thread).  The base class
centralises the fiddly parts every strategy needs:

* fetching a block (reserve HBM space → move → unreserve), including
  waiting on a move already in flight from another fetcher;
* verifying all of a task's dependences are resident and re-fetching
  stragglers ("It then verifies that all its dependences have been brought
  into HBM", §IV-B);
* marking a task ready: bump refcounts and push a
  :class:`~repro.runtime.interception.ReadyTask` onto the PE run queue;
* evicting a block back to DDR4.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CapacityError, ConfigError, SchedulingError
from repro.mem.block import BlockState, DataBlock
from repro.metrics import hooks as _mx
from repro.obs import hooks as _oh
from repro.runtime.interception import ReadyTask
from repro.runtime.pe import PE
from repro.core.ooc_task import OOCTask, TaskState
from repro.trace.events import TraceCategory

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import OOCManager

__all__ = ["Strategy"]


class Strategy:
    """Base class for all scheduling strategies."""

    #: registry name (paper series label)
    name = "abstract"
    #: False for static-placement baselines (messages are never intercepted)
    intercepts = True

    def __init__(self) -> None:
        self.manager: "OOCManager | None" = None
        self.fetches = 0
        self.evictions = 0
        self.bytes_fetched = 0
        self.bytes_evicted = 0
        #: set by can_fetch_task when the fetch must demand-evict first
        self._needs_demand_evict = False
        #: memoized watermark scan: (epoch, nothing_found)
        self._wm_seen_epoch = -1
        #: memoized freeable-bytes estimate: (epoch, bytes)
        self._freeable_cache: tuple[int, int] = (-1, 0)

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, manager: "OOCManager") -> None:
        self.manager = manager
        self.setup()

    def setup(self) -> None:
        """Spawn IO threads etc.  Called once, from :meth:`attach`."""

    def stop(self) -> None:
        """Tear down IO threads at end of run."""

    # -- placement ---------------------------------------------------------------

    def place_initial(self, blocks: _t.Iterable[DataBlock]) -> None:
        """Initial residency before the application starts.

        Prefetch strategies allocate everything on DDR4: "data is allocated
        on DDR4 and fetched into MCDRAM before being accessed" (§V-B).
        Baselines override this.
        """
        mgr = self._mgr()
        for block in blocks:
            mgr.topology.place_block(block, mgr.ddr)

    # -- scheduling hooks (called by the OOC manager) ------------------------------

    def submit(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Pre-processing for an intercepted task, on the worker PE."""
        raise NotImplementedError
        yield  # pragma: no cover

    def task_finished(self, pe: PE, task: OOCTask) -> _t.Generator:
        """Post-processing after the entry method ran, on the worker PE."""
        raise NotImplementedError
        yield  # pragma: no cover

    def retry_waiting(self, pe: PE) -> _t.Generator:
        """Re-attempt this PE's waiting tasks (RetryFetch handler)."""
        return
        yield  # pragma: no cover

    # -- shared machinery -----------------------------------------------------------

    def _mgr(self) -> "OOCManager":
        if self.manager is None:
            raise SchedulingError(f"strategy {self.name!r} is not attached")
        return self.manager

    def _require_pes(self) -> list[PE]:
        """The runtime's PEs, validated non-empty.

        IO-thread strategies scan PE wait queues round-robin (``% n``); a
        zero-PE runtime must fail loudly at :meth:`setup` instead of with a
        ``ZeroDivisionError`` on the first scan.
        """
        pes = self._mgr().runtime.pes
        if not pes:
            raise ConfigError(
                f"strategy {self.name!r} needs at least one PE; "
                "the runtime was built with zero worker threads")
        return pes

    def fetch_block(self, block: DataBlock, lane: str,
                    category: TraceCategory = TraceCategory.IO_FETCH
                    ) -> _t.Generator:
        """Bring one block into HBM (generator).

        Assumes the caller already verified capacity via
        ``manager.tracker.can_fit`` — reservation failures raise.
        If the block is being moved by someone else, waits for that move.
        """
        mgr = self._mgr()
        if block.state is BlockState.INHBM:
            if _mx.registry is not None:
                _mx.registry.counter(
                    "repro_prefetch_hits_total",
                    "fetch requests satisfied by residency",
                    lane=lane).inc()
            return True
        if block.moving:
            if _mx.registry is not None:
                _mx.registry.counter(
                    "repro_prefetch_joined_total",
                    "fetch requests joined to an in-flight move",
                    lane=lane).inc()
            yield mgr.inflight_event(block)
            return True
        started = mgr.env.now
        if _mx.registry is not None:
            _mx.registry.counter("repro_prefetch_issued_total",
                                 "block fetches started", lane=lane).inc()
        reservation = mgr.tracker.reserve(block.nbytes)
        done_event = mgr.begin_inflight(block)
        try:
            yield from mgr.mover.move(block, mgr.hbm)
        except CapacityError:
            # Fragmentation on the HBM free list: byte accounting said the
            # block fits but no contiguous range did.  Report "no space".
            if _mx.registry is not None:
                _mx.registry.counter(
                    "repro_prefetch_canceled_total",
                    "fetches abandoned (no space / fragmentation)",
                    lane=lane).inc()
            return False
        finally:
            mgr.tracker.unreserve(reservation)
            mgr.end_inflight(block, done_event)
        self.fetches += 1
        self.bytes_fetched += block.nbytes
        if _mx.registry is not None:
            _mx.registry.counter("repro_fetched_bytes_total",
                                 "bytes fetched into HBM", lane=lane
                                 ).inc(block.nbytes)
            _mx.registry.histogram("repro_fetch_latency_seconds",
                                   "reserve-to-resident fetch latency",
                                   lane=lane).observe(mgr.env.now - started)
        if mgr.tracer.enabled:
            mgr.tracer.record(lane, category, started, mgr.env.now,
                              label=f"fetch {block.name}")
        if _oh.collector is not None:
            _oh.collector.on_fetch(block, lane, category, started,
                                   mgr.env.now)
        return True

    def evict_block(self, block: DataBlock, lane: str,
                    category: TraceCategory = TraceCategory.IO_EVICT,
                    *, reason: str = "demand") -> _t.Generator:
        """Push one idle block back to DDR4 (generator).

        ``reason`` labels the eviction counter: ``post-task`` (the paper's
        synchronous post-processing eviction), ``watermark`` (proactive
        page-out-daemon style), or ``demand`` (making room for a fetch).
        """
        mgr = self._mgr()
        if block.state is not BlockState.INHBM:
            return
        if block.in_use or block.pinned:
            raise SchedulingError(
                f"evicting in-use/pinned block {block.name!r}")
        started = mgr.env.now
        done_event = mgr.begin_inflight(block)
        try:
            yield from mgr.mover.move(block, mgr.ddr)
        finally:
            mgr.end_inflight(block, done_event)
        block.evict_count += 1
        block.last_evicted_at = mgr.env.now
        self.evictions += 1
        self.bytes_evicted += block.nbytes
        if _mx.registry is not None:
            _mx.registry.counter("repro_evictions_total",
                                 "blocks evicted to DDR by cause",
                                 reason=reason).inc()
            _mx.registry.counter("repro_evicted_bytes_total",
                                 "bytes evicted to DDR by cause",
                                 reason=reason).inc(block.nbytes)
            _mx.registry.histogram("repro_evict_latency_seconds",
                                   "eviction move latency"
                                   ).observe(mgr.env.now - started)
        if mgr.tracer.enabled:
            mgr.tracer.record(lane, category, started, mgr.env.now,
                              label=f"evict {block.name}")
        if _oh.collector is not None:
            _oh.collector.on_evict(block, lane, category, started,
                                   mgr.env.now, reason)

    #: proactive eviction watermarks, as fractions of the HBM budget: when
    #: uncommitted space drops below ``low``, evict (demand-aware LRU)
    #: until ``high`` is free again.  Keeps evictions off the fetch
    #: critical path, like an OS page-out daemon.
    watermark_low = 0.06
    watermark_high = 0.12

    def maintain_watermarks(self, lane: str,
                            category: TraceCategory = TraceCategory.IO_EVICT
                            ) -> _t.Generator:
        """Proactively evict until the free-space reserve is restored.

        Returns True if anything was evicted.
        """
        mgr = self._mgr()
        budget = mgr.tracker.budget
        if mgr.tracker.uncommitted >= self.watermark_low * budget:
            return False
        # The reserve exists to feed *upcoming* fetches: size it by what
        # the tasks still sitting in wait queues actually miss.  For a
        # fitting working set (nothing missing) this is zero — evicting
        # would purge hot data the next iteration refetches.
        pending_missing = sum(
            self.missing_bytes(task)
            for pe in mgr.runtime.pes for task in pe.wait_queue)
        low = min(int(self.watermark_low * budget), pending_missing)
        if mgr.tracker.uncommitted >= low or pending_missing == 0:
            return False
        # memoize fruitless scans: candidacy only changes when a task
        # completes or a block moves (manager.change_epoch)
        if self._wm_seen_epoch == mgr.change_epoch:
            return False
        high = min(int(self.watermark_high * budget), pending_missing)
        needed = high - mgr.tracker.uncommitted
        victims = mgr.eviction.make_space_victims(mgr.registry, needed,
                                                  include_demanded=False)
        if not victims:
            self._wm_seen_epoch = mgr.change_epoch
            return False
        evicted = False
        for victim in victims:
            if victim.in_hbm and not victim.in_use and not victim.pinned:
                yield from self.evict_block(victim, lane, category,
                                            reason="watermark")
                evicted = True
        return evicted

    def missing_bytes(self, task: OOCTask) -> int:
        """Bytes of ``task``'s dependences not in (or moving to) HBM."""
        total = 0
        for block in task.blocks:
            if block.state is BlockState.INDDR:
                total += block.nbytes
        return total

    def can_fetch_task(self, task: OOCTask) -> bool:
        """Would the whole task's missing data fit right now?

        When HBM is over-committed, checks (cheaply, with early exit)
        whether enough *evictable* bytes exist to make room; the actual
        victim selection is deferred to :meth:`fetch_task_blocks` so the
        expensive demand-aware ordering runs once per fetch, not once per
        capacity probe.
        """
        mgr = self._mgr()
        need = self.missing_bytes(task)
        if need == 0:
            return True
        if mgr.tracker.can_fit(need):
            return True
        shortfall = need - mgr.tracker.uncommitted
        # One O(registry) freeable scan per change epoch (completions and
        # moves are what change candidacy); probes between epochs reuse it.
        epoch, freeable_total = self._freeable_cache
        if epoch != mgr.change_epoch:
            freeable_total = sum(
                block.nbytes for block in mgr.registry
                if block.state is BlockState.INHBM and not block.in_use
                and not block.pinned)
            self._freeable_cache = (mgr.change_epoch, freeable_total)
        # the task's own resident blocks are about to be retained, so they
        # cannot be victims — subtract them from the freeable estimate
        own_resident = sum(
            block.nbytes for block in task.blocks
            if block.state is BlockState.INHBM and not block.in_use
            and not block.pinned)
        if freeable_total - own_resident >= shortfall:
            self._needs_demand_evict = True
            return True
        return False

    def fetch_task_blocks(self, task: OOCTask, lane: str,
                          category: TraceCategory = TraceCategory.IO_FETCH,
                          evict_category: TraceCategory = TraceCategory.IO_EVICT
                          ) -> _t.Generator:
        """Fetch every missing dependence of ``task``; returns True on success.

        May return False when HBM filled up mid-fetch (partial progress is
        kept, as in the paper); the caller requeues the task.

        Dependences are *retained at fetch start* — the paper increments
        the reference counter "every time a task depending on the block is
        scheduled", i.e. when the IO thread starts processing it.  This is
        what protects shared read-only blocks (MatMul's panels) from being
        evicted between two consecutive uses: the next task's fetch has
        already pinned them.  On failure the retention is rolled back.
        """
        mgr = self._mgr()
        if _oh.collector is not None:
            _oh.collector.on_serve(task, lane)
        if not task.retained:
            task.retain_all(mgr.env.now)
        # On-demand eviction flagged by can_fetch_task: pick victims now
        # (once per fetch) with the demand-aware policy ordering.
        if self._needs_demand_evict:
            self._needs_demand_evict = False
            shortfall = self.missing_bytes(task) - mgr.tracker.uncommitted
            if shortfall > 0:
                victims = mgr.eviction.make_space_victims(mgr.registry,
                                                          shortfall)
                for victim in victims:
                    if victim.state is BlockState.INHBM and not victim.in_use:
                        yield from self.evict_block(victim, lane,
                                                    evict_category,
                                                    reason="demand")
        for _attempt in range(3):
            for block in task.blocks:
                if block.state is BlockState.INHBM:
                    continue
                if block.moving:
                    yield mgr.inflight_event(block)
                    continue
                if not mgr.tracker.can_fit(block.nbytes):
                    task.release_all()
                    return False
                fetched = yield from self.fetch_block(block, lane, category)
                if not fetched:
                    task.release_all()
                    return False
            if task.all_resident():
                return True
        # Three verification passes failed: blocks are being evicted under
        # us faster than we fetch them — treat as "no space".
        task.release_all()
        return False

    def make_ready(self, pe: PE, task: OOCTask) -> None:
        """Retain dependences and hand the task to the converse scheduler."""
        mgr = self._mgr()
        if not task.all_resident():
            raise SchedulingError(
                f"task #{task.tid} scheduled with non-resident dependences")
        if not task.retained:
            # zero-missing-dependence fast path skipped fetch_task_blocks
            task.retain_all(mgr.env.now)
        task.state = TaskState.READY
        task.ready_at = mgr.env.now
        target_pe = mgr.pick_run_queue(pe)
        target_pe.run_queue.put(ReadyTask(task.message, task))
        mgr.tasks_readied += 1
