"""HBM-only placement: Figure 2's in-HBM configuration.

Only valid when the whole working set fits in the 16 GB MCDRAM — the
regime the paper uses to establish the ~3x kernel-time gap that motivates
prefetching (Figure 2).
"""

from __future__ import annotations

import typing as _t

from repro.core.strategies.base import Strategy
from repro.errors import CapacityError, SchedulingError
from repro.mem.block import DataBlock
from repro.runtime.pe import PE
from repro.units import format_size

__all__ = ["HBMOnlyStrategy"]


class HBMOnlyStrategy(Strategy):
    """Everything in HBM; raises if the working set does not fit."""

    name = "hbm-only"
    intercepts = False

    def place_initial(self, blocks: _t.Iterable[DataBlock]) -> None:
        mgr = self._mgr()
        block_list = list(blocks)
        total = sum(b.nbytes for b in block_list)
        if total > mgr.hbm.available:
            raise CapacityError(
                f"hbm-only placement needs {format_size(total)} but only "
                f"{format_size(mgr.hbm.available)} of HBM is free; this "
                "strategy is for fits-in-HBM working sets (paper Fig. 2)",
                requested=total, available=mgr.hbm.available)
        for block in block_list:
            mgr.topology.place_block(block, mgr.hbm)

    def submit(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("HBMOnlyStrategy never intercepts messages")
        yield

    def task_finished(self, pe: PE, task) -> _t.Generator:  # pragma: no cover
        raise SchedulingError("HBMOnlyStrategy never intercepts messages")
        yield
