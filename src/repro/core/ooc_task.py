"""OOCTask: an intercepted ``[prefetch]`` entry-method invocation.

"The object along with its input dependences... and input message are
encapsulated as an OOCTask." (§IV-B)
"""

from __future__ import annotations

import enum
import typing as _t
from itertools import count

from repro.errors import SchedulingError
from repro.mem.block import AccessIntent, BlockState, DataBlock
from repro.runtime.message import Message

__all__ = ["TaskState", "OOCTask"]

_task_ids = count()


class TaskState(enum.Enum):
    """Lifecycle of an intercepted prefetch task."""

    WAITING = "waiting"      # in a wait queue, data not yet resident
    FETCHING = "fetching"    # an IO thread / worker is bringing data in
    READY = "ready"          # all dependences INHBM; queued for execution
    RUNNING = "running"
    DONE = "done"


class OOCTask:
    """A prefetch task: message + resolved, deduplicated dependences."""

    __slots__ = ("tid", "message", "pe_id", "deps", "state",
                 "submitted_at", "ready_at", "started_at", "finished_at",
                 "retained")

    def __init__(self, message: Message, pe_id: int,
                 deps: _t.Sequence[tuple[DataBlock, AccessIntent]],
                 now: float):
        self.tid = next(_task_ids)
        self.message = message
        self.pe_id = pe_id
        # Deduplicate blocks (a block listed twice keeps the strongest
        # intent; refcounts must bump once per task, not per mention).
        merged: dict[int, tuple[DataBlock, AccessIntent]] = {}
        for block, intent in deps:
            if block.bid in merged:
                prev = merged[block.bid][1]
                if prev is not intent:
                    intent = AccessIntent.READWRITE
            merged[block.bid] = (block, intent)
        self.deps: tuple[tuple[DataBlock, AccessIntent], ...] = tuple(
            merged[k] for k in sorted(merged))
        self.state = TaskState.WAITING
        self.submitted_at = now
        self.ready_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: True once refcounts were taken (so release is exactly-once)
        self.retained = False

    # -- dependence views -----------------------------------------------------

    @property
    def blocks(self) -> tuple[DataBlock, ...]:
        return tuple(block for block, _ in self.deps)

    @property
    def chare(self) -> _t.Any:
        return self.message.target

    @property
    def total_dep_bytes(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    def missing_blocks(self) -> list[DataBlock]:
        """Dependences not currently resident in HBM."""
        return [b for b in self.blocks if b.state is not BlockState.INHBM]

    def all_resident(self) -> bool:
        return all(b.state is BlockState.INHBM for b in self.blocks)

    # -- refcount lifecycle (paper: bump at scheduling, drop at finish) ---------

    def retain_all(self, now: float) -> None:
        if self.retained:
            raise SchedulingError(f"task #{self.tid} retained twice")
        for block in self.blocks:
            block.retain(now)
        self.retained = True

    def release_all(self) -> None:
        if not self.retained:
            raise SchedulingError(
                f"task #{self.tid} released without being retained")
        for block in self.blocks:
            block.release()
        self.retained = False

    # -- latency metrics ----------------------------------------------------------

    @property
    def fetch_latency(self) -> float | None:
        """Submit-to-ready time (includes queueing behind other tasks)."""
        if self.ready_at is None:
            return None
        return self.ready_at - self.submitted_at

    def __repr__(self) -> str:
        tgt = getattr(self.message.target, "label", "?")
        return (f"<OOCTask #{self.tid} {tgt}.{self.message.entry.name} "
                f"pe={self.pe_id} {self.state.value} deps={len(self.deps)}>")
