"""Byte, time and bandwidth unit helpers.

All internal quantities use base SI-ish units:

* sizes: **bytes** (int)
* time: **seconds** (float)
* bandwidth: **bytes per second** (float)

The helpers here exist so configuration and reports can speak in the units
the paper uses (GB, GiB, ms, GB/s) without sprinkling magic constants through
the codebase.  Capacities quoted by the paper ("16GB MCDRAM", "96GB DDR4")
are marketing gigabytes, i.e. binary GiB on KNL spec sheets; we expose both
and use GiB for capacities, decimal GB/s for bandwidths, matching vendor
convention.
"""

from __future__ import annotations

import re

__all__ = [
    "KB", "MB", "GB", "TB",
    "KiB", "MiB", "GiB", "TiB",
    "US", "MS", "SECOND",
    "parse_size", "format_size",
    "parse_time", "format_time",
    "parse_bandwidth", "format_bandwidth",
]

# Decimal (SI) byte units.
KB = 10 ** 3
MB = 10 ** 6
GB = 10 ** 9
TB = 10 ** 12

# Binary (IEC) byte units.
KiB = 2 ** 10
MiB = 2 ** 20
GiB = 2 ** 30
TiB = 2 ** 40

# Time units, in seconds.
US = 1e-6
MS = 1e-3
SECOND = 1.0

_SIZE_UNITS = {
    "b": 1,
    "kb": KB, "mb": MB, "gb": GB, "tb": TB,
    "kib": KiB, "mib": MiB, "gib": GiB, "tib": TiB,
}

_TIME_UNITS = {
    "ns": 1e-9, "us": US, "ms": MS, "s": SECOND, "sec": SECOND,
    "min": 60.0, "h": 3600.0,
}

_QTY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


def _parse(text: str | int | float, units: dict[str, float], default_unit: str,
           what: str) -> float:
    if isinstance(text, (int, float)):
        return float(text)
    m = _QTY_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse {what} {text!r}")
    value = float(m.group(1))
    unit = (m.group(2) or default_unit).lower()
    if unit not in units:
        raise ValueError(f"unknown {what} unit {m.group(2)!r} in {text!r}")
    return value * units[unit]


def parse_size(text: str | int | float) -> int:
    """Parse ``"16GiB"``, ``"2 GB"``, ``4096`` ... into bytes.

    Bare numbers are taken as bytes.  The result is rounded to an integer
    byte count because allocators account in whole bytes.
    """
    return int(round(_parse(text, _SIZE_UNITS, "b", "size")))


def parse_time(text: str | int | float) -> float:
    """Parse ``"20ms"``, ``"1.5 s"``, ``0.25`` ... into seconds."""
    return _parse(text, _TIME_UNITS, "s", "time")


def parse_bandwidth(text: str | int | float) -> float:
    """Parse ``"490 GB/s"``, ``"90GB/s"`` ... into bytes per second."""
    if isinstance(text, (int, float)):
        return float(text)
    cleaned = text.strip()
    if cleaned.lower().endswith("/s"):
        cleaned = cleaned[:-2]
    return float(_parse(cleaned, _SIZE_UNITS, "b", "bandwidth"))


def _format(value: float, steps: list[tuple[float, str]], digits: int) -> str:
    for factor, suffix in steps:
        if abs(value) >= factor:
            return f"{value / factor:.{digits}f}{suffix}"
    factor, suffix = steps[-1]
    return f"{value / factor:.{digits}f}{suffix}"


def format_size(nbytes: float, digits: int = 2) -> str:
    """Render a byte count with a binary suffix, e.g. ``"16.00GiB"``."""
    return _format(float(nbytes),
                   [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB"), (1, "B")],
                   digits)


def format_time(seconds: float, digits: int = 3) -> str:
    """Render a duration with an appropriate suffix, e.g. ``"12.500ms"``."""
    if seconds == 0:
        return "0s"
    return _format(seconds,
                   [(3600.0, "h"), (60.0, "min"), (1.0, "s"),
                    (MS, "ms"), (US, "us"), (1e-9, "ns")],
                   digits)


def format_bandwidth(bytes_per_s: float, digits: int = 1) -> str:
    """Render a bandwidth in decimal units, e.g. ``"485.0GB/s"``."""
    return _format(bytes_per_s,
                   [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"), (1, "B")],
                   digits) + "/s"
