"""Configuration dataclasses for machines and experiments.

Defaults are calibrated to the paper's testbed: a Stampede 2.0 Intel Xeon
Phi Knights Landing node in Flat / All-to-All mode — 68 cores (64 used),
4-way SMT, 16 GB MCDRAM at >4x the bandwidth of 96 GB DDR4 (§III-B, §V).

Bandwidth numbers are *effective STREAM-class* bandwidths, because the
fluid model equates a device port's capacity with what concurrent streaming
requestors can extract from it (Figure 1 is the calibration anchor).
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.errors import ConfigError
from repro.units import GiB, parse_size

__all__ = [
    "MemoryMode", "ClusterMode", "DeviceConfig", "MachineConfig",
    "KNL_MCDRAM", "KNL_DDR4", "NVM_DEVICE", "DRAM_DEVICE",
    "knl_config", "nvm_dram_config",
]


class MemoryMode(enum.Enum):
    """KNL MCDRAM configuration (§III-B)."""

    FLAT = "flat"
    CACHE = "cache"
    HYBRID = "hybrid"


class ClusterMode(enum.Enum):
    """KNL mesh/tag-directory configuration (§III-B)."""

    ALL_TO_ALL = "all-to-all"
    QUADRANT = "quadrant"


@dataclasses.dataclass(frozen=True)
class DeviceConfig:
    """Static description of one memory device."""

    name: str
    numa_node: int
    capacity: int
    read_bandwidth: float
    write_bandwidth: float
    latency: float = 1.5e-7

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"device {self.name!r}: capacity must be > 0")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigError(f"device {self.name!r}: bandwidth must be > 0")
        if self.latency < 0:
            raise ConfigError(f"device {self.name!r}: latency must be >= 0")

    def scaled(self, bandwidth_factor: float = 1.0,
               latency_factor: float = 1.0,
               capacity: int | None = None) -> "DeviceConfig":
        """A copy with adjusted bandwidth/latency/capacity."""
        return dataclasses.replace(
            self,
            read_bandwidth=self.read_bandwidth * bandwidth_factor,
            write_bandwidth=self.write_bandwidth * bandwidth_factor,
            latency=self.latency * latency_factor,
            capacity=self.capacity if capacity is None else capacity,
        )


#: MCDRAM (HBM): 16 GB, STREAM-class bandwidth ~4.5x DDR4 (paper Fig. 1).
KNL_MCDRAM = DeviceConfig(
    name="mcdram", numa_node=1, capacity=16 * GiB,
    read_bandwidth=460e9, write_bandwidth=380e9, latency=1.6e-7)

#: DDR4: 96 GB, the low-bandwidth / high-capacity pool.
KNL_DDR4 = DeviceConfig(
    name="ddr4", numa_node=0, capacity=96 * GiB,
    read_bandwidth=90e9, write_bandwidth=80e9, latency=1.3e-7)

#: NVM: the paper's conclusion projects the approach onto memories that are
#: both bandwidth- AND latency-restricted ([9], [10]).  Optane-DCPMM-class
#: parameters: asymmetric read/write bandwidth, microsecond-scale latency.
NVM_DEVICE = DeviceConfig(
    name="nvm", numa_node=0, capacity=512 * GiB,
    read_bandwidth=30e9, write_bandwidth=10e9, latency=1.0e-6)

#: Plain DRAM as the fast tier of an NVM+DRAM node.
DRAM_DEVICE = DeviceConfig(
    name="dram", numa_node=1, capacity=32 * GiB,
    read_bandwidth=100e9, write_bandwidth=90e9, latency=1.0e-7)


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Static description of a many-core node with heterogeneous memory."""

    name: str = "knl"
    cores: int = 64
    tiles: int = 34
    smt: int = 4
    #: peak double-precision rate per core, FLOP/s (AVX-512 dgemm-class)
    core_flops: float = 35e9
    #: memory bandwidth a single core can extract, B/s
    core_mem_bandwidth: float = 12e9
    #: single-thread memcpy bandwidth, B/s — much lower than the streaming
    #: cap on KNL's simple cores (Perarnau et al. measure single-core copy
    #: in the few-GB/s range; this is why one IO thread cannot feed 64 PEs)
    copy_bandwidth: float = 5e9
    devices: tuple[DeviceConfig, ...] = (KNL_DDR4, KNL_MCDRAM)
    memory_mode: MemoryMode = MemoryMode.FLAT
    cluster_mode: ClusterMode = ClusterMode.ALL_TO_ALL
    #: fraction of MCDRAM configured as cache in HYBRID mode
    hybrid_cache_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("cores must be > 0")
        if self.smt < 1:
            raise ConfigError("smt must be >= 1")
        if self.core_flops <= 0 or self.core_mem_bandwidth <= 0:
            raise ConfigError("core rates must be > 0")
        if not self.devices:
            raise ConfigError("a machine needs at least one memory device")
        if not 0.0 <= self.hybrid_cache_fraction <= 1.0:
            raise ConfigError("hybrid_cache_fraction must be in [0, 1]")
        nodes = [d.numa_node for d in self.devices]
        if len(set(nodes)) != len(nodes):
            raise ConfigError("duplicate numa node ids in device list")

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.smt

    def device(self, name: str) -> DeviceConfig:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise ConfigError(f"no device named {name!r}")


def knl_config(*, cores: int = 64,
               memory_mode: MemoryMode = MemoryMode.FLAT,
               cluster_mode: ClusterMode = ClusterMode.ALL_TO_ALL,
               mcdram_capacity: _t.Union[int, str] = 16 * GiB,
               ddr_capacity: _t.Union[int, str] = 96 * GiB,
               hybrid_cache_fraction: float = 0.5) -> MachineConfig:
    """The paper's testbed configuration, with knobs for ablations.

    Cluster mode: the paper uses All-to-All, noting it "has the most impact
    on memory bandwidth".  Quadrant mode shortens mesh routes: we model it
    as a mild bandwidth gain and latency cut over All-to-All.
    """
    mc = parse_size(mcdram_capacity)
    dc = parse_size(ddr_capacity)
    bw_factor, lat_factor = (1.0, 1.0)
    if cluster_mode is ClusterMode.QUADRANT:
        bw_factor, lat_factor = (1.06, 0.88)
    mcdram = KNL_MCDRAM.scaled(bw_factor, lat_factor, capacity=mc)
    ddr = KNL_DDR4.scaled(bw_factor, lat_factor, capacity=dc)
    return MachineConfig(
        name=f"knl-{memory_mode.value}-{cluster_mode.value}",
        cores=cores,
        devices=(ddr, mcdram),
        memory_mode=memory_mode,
        cluster_mode=cluster_mode,
        hybrid_cache_fraction=hybrid_cache_fraction,
    )


def nvm_dram_config(*, cores: int = 64,
                    dram_capacity: _t.Union[int, str] = 32 * GiB,
                    nvm_capacity: _t.Union[int, str] = 512 * GiB) -> MachineConfig:
    """An NVM+DRAM node: the paper's projected next target.

    DRAM plays the role MCDRAM plays on KNL (the small fast pool, NUMA
    node 1); NVM is the big slow pool (node 0).  The slow tier is worse in
    *both* bandwidth and latency, so the paper's conclusion predicts larger
    prefetch gains than on KNL — `benchmarks/bench_extension_nvm.py`
    checks that prediction.
    """
    dram = DRAM_DEVICE.scaled(capacity=parse_size(dram_capacity))
    nvm = NVM_DEVICE.scaled(capacity=parse_size(nvm_capacity))
    return MachineConfig(
        name="nvm-dram", cores=cores, tiles=max(1, cores // 2), smt=2,
        devices=(nvm, dram))
