"""Declarative run specifications with a canonical, hashable form.

A :class:`RunSpec` names one simulation run — an application kind plus
every parameter that influences its result (machine shape, strategy,
working set, seed).  Two properties make specs the unit of both
parallel fan-out and content-addressed caching:

* **Canonical JSON** — :meth:`RunSpec.canonical_json` serializes the
  ``(kind, params)`` identity with sorted keys, compact separators and
  tuples normalized to lists, so the byte form is independent of dict
  insertion order, Python version and ``PYTHONHASHSEED``.
* **Content key** — :meth:`RunSpec.key` is the SHA-256 of that byte
  form; equal keys mean "the same run".  Display hints (``cost``,
  ``label``) are deliberately excluded from the identity so tuning the
  scheduler never invalidates the cache.

:func:`stable_seed` derives reproducible integer seeds from string
parts the same way — never use the builtin ``hash()`` for seeds, it is
salted per interpreter run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

from repro.errors import ExperimentError

__all__ = ["RunSpec", "canonical_json", "stable_seed"]


def _normalize(obj: _t.Any, path: str = "$") -> _t.Any:
    """Reduce ``obj`` to JSON-safe primitives with a stable shape."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise ExperimentError(
                f"non-finite float at {path} cannot be canonicalized")
        # integral floats collapse to int so 2.0 and 2 name the same run
        return int(obj) if obj.is_integer() else obj
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj):
            if not isinstance(key, str):
                raise ExperimentError(
                    f"non-string key {key!r} at {path} in spec params")
            out[key] = _normalize(obj[key], f"{path}.{key}")
        return out
    if isinstance(obj, (list, tuple)):
        return [_normalize(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    raise ExperimentError(
        f"spec params must be JSON-able scalars/lists/dicts; "
        f"got {type(obj).__name__} at {path}")


def canonical_json(obj: _t.Any) -> str:
    """Serialize ``obj`` to its canonical byte-stable JSON form."""
    return json.dumps(_normalize(obj), sort_keys=True,
                      separators=(",", ":"))


def stable_seed(*parts: _t.Any, bits: int = 48) -> int:
    """A deterministic seed from string-able parts (hash-salt-proof)."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[: (bits + 7) // 8], "big") % (1 << bits)


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One declarative simulation run: ``kind`` + result-determining params.

    ``cost`` is a relative expected-cost hint (any monotone unit) used
    for largest-first scheduling; ``label`` is the human progress-line
    name.  Neither participates in :meth:`key`.
    """

    kind: str
    params: _t.Mapping[str, _t.Any]
    cost: float = 1.0
    label: str = ""

    def identity(self) -> dict:
        """The cache/equality identity: kind + normalized params."""
        return {"kind": self.kind, "params": _normalize(dict(self.params))}

    def canonical_json(self) -> str:
        """Byte-stable serialized identity (sorted keys, compact)."""
        return canonical_json(self.identity())

    def key(self) -> str:
        """SHA-256 content key of the canonical form."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def display(self) -> str:
        """The progress-line name (label, or a kind/key fallback)."""
        return self.label or f"{self.kind}:{self.key()[:10]}"
