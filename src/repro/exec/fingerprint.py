"""Code fingerprint: one hash naming the current simulator sources.

Cached results are only valid for the code that produced them.  The
fingerprint is the SHA-256 over every ``*.py`` file under the installed
``repro`` package (sorted relative path + content), so editing any
strategy, app or sim-core file starts a fresh cache generation while
older generations stay on disk for instant rollback re-runs.

Hashing ~150 small files costs a few milliseconds and is memoized per
process, so the engine can call it freely.

Runtime configuration that changes simulator behaviour without touching
source is folded in too: the default fluid solver (``$REPRO_SOLVER``)
selects a different rate kernel, and a ``$REPRO_GUIDANCE`` placement
file steers the ``static-guided`` strategy — so runs under different
solvers or guidance hash to different generations and can never serve
each other stale tables.  (The solvers are *supposed* to produce
identical results — but the cache must not assume what the equivalence
tests exist to verify.)
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = ["code_fingerprint"]

_memo: dict[str, str] = {}


def _guidance_digest() -> str:
    """Content hash of the ``$REPRO_GUIDANCE`` file, if one is active."""
    path = os.environ.get("REPRO_GUIDANCE")
    if not path:
        return "none"
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        # a dangling path still changes behaviour (the strategy will
        # fail to load it), so it must not alias the unset case
        return f"missing:{path}"


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def code_fingerprint(root: "Path | str | None" = None, *,
                     refresh: bool = False) -> str:
    """Hex digest naming the current source tree under ``root``.

    ``root`` defaults to the installed ``repro`` package directory.
    ``refresh`` bypasses the per-process memo (tests that rewrite
    files mid-process).
    """
    from repro.sim.fluid import default_solver

    base = Path(root) if root is not None else _package_root()
    # the memo key carries the solver: tests monkeypatch $REPRO_SOLVER
    # mid-process and must see a fresh generation immediately
    solver = default_solver()
    guidance = _guidance_digest()
    memo_key = f"{base}\x00{solver}\x00{guidance}"
    if not refresh and memo_key in _memo:
        return _memo[memo_key]
    digest = hashlib.sha256()
    digest.update(f"fluid_solver={solver}".encode())
    digest.update(b"\x01")
    digest.update(f"guidance={guidance}".encode())
    digest.update(b"\x01")
    for path in sorted(base.rglob("*.py"),
                       key=lambda p: p.relative_to(base).as_posix()):
        rel = path.relative_to(base).as_posix()
        if "__pycache__" in rel:
            continue
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    result = digest.hexdigest()
    _memo[memo_key] = result
    return result
