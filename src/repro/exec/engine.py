"""The parallel scenario-execution engine.

``Engine.run(specs)`` takes a list of :class:`~repro.exec.spec.RunSpec`
and returns one :class:`RunResult` per input spec, **in input order** —
parallelism and caching never reorder results, which is what keeps
figure tables and ``BENCH_*.json`` digests byte-identical to a serial
run.  Internally:

1. duplicate specs (same content key) collapse to one execution whose
   result is shared;
2. cache hits are answered from ``.repro-cache/`` without running
   anything;
3. cache misses are ordered largest-expected-``cost`` first and fanned
   out over a ``ProcessPoolExecutor`` (``jobs > 1``) or run inline
   (``jobs <= 1`` — no pool, no fork);
4. a spec that raises inside a worker comes back as a structured error
   row (``ok=False`` with the traceback); a worker that dies outright
   (``BrokenProcessPool``) gets its specs retried inline once;
5. fresh successes are written back to the cache.

A ``progress`` callback receives one dict per completion
(``done/total/spec/status/elapsed_s``) for live sweep narration.
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t
from concurrent import futures

from repro.exec.cache import ResultCache
from repro.exec.runners import execute_spec
from repro.exec.spec import RunSpec

__all__ = ["RunResult", "Engine", "run_specs"]

#: progress callback: one call per completed unique spec
ProgressFn = _t.Callable[[dict], None]


@dataclasses.dataclass
class RunResult:
    """Outcome of one spec: a result payload or a structured error."""

    spec: RunSpec
    ok: bool
    result: "dict | None" = None
    error: "str | None" = None
    traceback: str = ""
    elapsed_s: float = 0.0
    #: "cache", "inline" or "pool" — where the result came from
    source: str = "inline"

    @property
    def cached(self) -> bool:
        """True when the result was answered from the on-disk cache."""
        return self.source == "cache"


class Engine:
    """Fan specs out over workers, backed by the content cache."""

    def __init__(self, *, jobs: int = 1,
                 cache: "ResultCache | None" = None,
                 progress: "ProgressFn | None" = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress

    # -- internals ---------------------------------------------------------

    def _notify(self, done: int, total: int, spec: RunSpec,
                outcome: RunResult) -> None:
        if self.progress is None:
            return
        status = "cached" if outcome.cached else (
            "ok" if outcome.ok else "ERROR")
        self.progress({"done": done, "total": total, "spec": spec,
                       "status": status, "elapsed_s": outcome.elapsed_s})

    def _from_payload(self, spec: RunSpec, payload: dict,
                      source: str) -> RunResult:
        if payload.get("ok"):
            return RunResult(spec=spec, ok=True,
                             result=payload["result"],
                             elapsed_s=payload.get("elapsed_s", 0.0),
                             source=source)
        return RunResult(spec=spec, ok=False,
                         error=payload.get("error", "unknown error"),
                         traceback=payload.get("traceback", ""),
                         elapsed_s=payload.get("elapsed_s", 0.0),
                         source=source)

    def _run_inline(self, spec: RunSpec) -> RunResult:
        return self._from_payload(spec, execute_spec(
            {"kind": spec.kind, "params": dict(spec.params)}), "inline")

    def _run_pool(self, ordered: "list[RunSpec]",
                  on_done: _t.Callable[[RunSpec, RunResult], None]) -> None:
        """Fan ``ordered`` (largest first) over a process pool."""
        workers = min(self.jobs, len(ordered))
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(execute_spec, {"kind": spec.kind,
                                           "params": dict(spec.params)}): spec
                for spec in ordered
            }
            for future in futures.as_completed(pending):
                spec = pending[future]
                try:
                    outcome = self._from_payload(spec, future.result(),
                                                 "pool")
                except futures.process.BrokenProcessPool:
                    # the worker died under this spec (OOM kill, segfault
                    # in an extension): the pool is unusable, but the
                    # sweep is not — retry everything unfinished inline
                    raise
                except Exception as exc:  # noqa: BLE001 - pickling etc.
                    outcome = RunResult(
                        spec=spec, ok=False, source="pool",
                        error=f"{type(exc).__name__}: {exc}")
                on_done(spec, outcome)

    # -- public ------------------------------------------------------------

    def run(self, specs: _t.Sequence[RunSpec]) -> list[RunResult]:
        """Execute every spec; results align 1:1 with the input order."""
        keys = [spec.key() for spec in specs]
        unique: dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)

        outcomes: dict[str, RunResult] = {}
        total = len(unique)
        done = 0

        def record(spec: RunSpec, outcome: RunResult) -> None:
            nonlocal done
            outcomes[spec.key()] = outcome
            if (self.cache is not None and outcome.ok
                    and not outcome.cached):
                self.cache.put(spec, outcome.result,
                               elapsed_s=outcome.elapsed_s)
            done += 1
            self._notify(done, total, spec, outcome)

        # 1) cache pass
        misses: list[RunSpec] = []
        for key, spec in unique.items():
            entry = self.cache.get(spec) if self.cache is not None else None
            if entry is not None:
                record(spec, RunResult(
                    spec=spec, ok=True, result=entry["result"],
                    elapsed_s=entry.get("elapsed_s", 0.0), source="cache"))
            else:
                misses.append(spec)

        # 2) largest-expected-cost-first, deterministic tie-break by key
        misses.sort(key=lambda s: (-s.cost, s.key()))

        # 3) execute
        if misses:
            if self.jobs <= 1 or len(misses) == 1:
                for spec in misses:
                    record(spec, self._run_inline(spec))
            else:
                try:
                    self._run_pool(misses, record)
                except (futures.process.BrokenProcessPool, OSError):
                    # pool (or a worker) died: finish the sweep serially
                    for spec in misses:
                        if spec.key() not in outcomes:
                            record(spec, self._run_inline(spec))

        return [outcomes[key] for key in keys]


def run_specs(specs: _t.Sequence[RunSpec], *, jobs: int = 1,
              cache: "ResultCache | None" = None,
              progress: "ProgressFn | None" = None) -> list[RunResult]:
    """One-call convenience over :class:`Engine`."""
    return Engine(jobs=jobs, cache=cache, progress=progress).run(specs)
