"""Content-addressed on-disk result cache (``.repro-cache/``).

Layout::

    .repro-cache/
      <fingerprint[:16]>/          one generation per code fingerprint
        <spec-key>.json            {"spec": ..., "result": ..., ...}

The entry key is the spec's SHA-256 content key
(:meth:`repro.exec.spec.RunSpec.key`); the generation directory is the
:func:`repro.exec.fingerprint.code_fingerprint` of ``src/repro`` at
write time.  Editing any simulator source therefore invalidates every
entry at once (new generation), while re-running unchanged code is a
pure disk read.  Results are JSON — Python's ``repr``-exact float
round-trip guarantees a cache hit reproduces the original run's values
bit for bit.

Writes are atomic (temp file + rename) so a killed sweep never leaves
a torn entry behind.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
import typing as _t
from pathlib import Path

from repro.bench.regression import repo_root
from repro.exec.fingerprint import code_fingerprint
from repro.exec.spec import RunSpec

__all__ = ["ResultCache", "default_cache_root", "cache_stats",
           "clear_cache"]

#: on-disk entry schema; bump on incompatible layout changes
ENTRY_SCHEMA = 1
#: directory name chars taken from the fingerprint per generation
_GEN_CHARS = 16


def default_cache_root() -> Path:
    """``<repo root>/.repro-cache`` (CWD-based for installed trees)."""
    return repo_root() / ".repro-cache"


class ResultCache:
    """Get/put spec results under one code-fingerprint generation."""

    def __init__(self, root: "Path | str | None" = None,
                 fingerprint: str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.generation = self.root / self.fingerprint[:_GEN_CHARS]
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, spec: RunSpec) -> Path:
        """Where this spec's entry lives in the current generation."""
        return self.generation / f"{spec.key()}.json"

    def get(self, spec: RunSpec) -> "dict | None":
        """The cached result payload, or None on miss/corruption."""
        try:
            entry = json.loads(self.path(spec).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != ENTRY_SCHEMA
                or "result" not in entry):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, spec: RunSpec, result: _t.Any, *,
            elapsed_s: float = 0.0) -> Path:
        """Store one run's result atomically; returns the entry path."""
        path = self.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "fingerprint": self.fingerprint,
            "spec": spec.identity(),
            "elapsed_s": elapsed_s,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1
        return path

    def session_stats(self) -> dict[str, int]:
        """Hit/miss/store counters for this cache handle's lifetime."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


def cache_stats(root: "Path | str | None" = None) -> dict:
    """On-disk shape of the cache: entries/bytes per generation."""
    base = Path(root) if root is not None else default_cache_root()
    current = code_fingerprint()[:_GEN_CHARS]
    generations: dict[str, dict[str, int]] = {}
    total_entries = total_bytes = 0
    if base.is_dir():
        for gen in sorted(p for p in base.iterdir() if p.is_dir()):
            entries = list(gen.glob("*.json"))
            nbytes = sum(e.stat().st_size for e in entries)
            generations[gen.name] = {"entries": len(entries),
                                     "bytes": nbytes}
            total_entries += len(entries)
            total_bytes += nbytes
    return {"root": str(base), "current": current,
            "generations": generations,
            "total_entries": total_entries, "total_bytes": total_bytes}


def clear_cache(root: "Path | str | None" = None) -> int:
    """Delete the whole cache tree; returns entries removed."""
    base = Path(root) if root is not None else default_cache_root()
    removed = 0
    if base.is_dir():
        removed = sum(1 for _ in base.rglob("*.json"))
        shutil.rmtree(base)
    return removed
