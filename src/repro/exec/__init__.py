"""repro.exec — parallel experiment engine with content-addressed caching.

The evaluation surface (paper figures, ablations, schedule
exploration) is a large set of independent simulation runs.  This
package makes that set *declarative* and *incremental*:

* :mod:`repro.exec.spec` — :class:`RunSpec`, the canonical description
  of one run (app, machine, strategy, seed, overrides) with a
  byte-stable JSON form and SHA-256 content key;
* :mod:`repro.exec.runners` — the picklable executors that turn a spec
  into a result dict inside a worker process;
* :mod:`repro.exec.engine` — :class:`Engine`: dedup, cache lookup,
  largest-cost-first process-pool fan-out with per-spec crash
  isolation, deterministic merge back in spec order;
* :mod:`repro.exec.cache` — :class:`ResultCache`, the
  ``.repro-cache/`` store keyed by ``hash(spec)`` under a
  code-fingerprint generation, so editing one strategy only re-executes
  the affected figures;
* :mod:`repro.exec.fingerprint` — the source-tree hash that names
  cache generations;
* :mod:`repro.exec.context` — the process-wide :class:`ExecContext`
  the figure functions execute under (serial + uncached by default);
* :mod:`repro.exec.explore` — parallel seed exploration for
  ``repro race --explore-schedules``.
"""

from repro.exec.cache import (ResultCache, cache_stats, clear_cache,
                              default_cache_root)
from repro.exec.context import (ExecContext, execute, get_context,
                                set_context, using)
from repro.exec.engine import Engine, RunResult, run_specs
from repro.exec.explore import (ParallelExplorationReport, parallel_explore,
                                schedule_specs)
from repro.exec.fingerprint import code_fingerprint
from repro.exec.spec import RunSpec, canonical_json, stable_seed

__all__ = [
    "RunSpec", "canonical_json", "stable_seed",
    "code_fingerprint",
    "ResultCache", "default_cache_root", "cache_stats", "clear_cache",
    "Engine", "RunResult", "run_specs",
    "ExecContext", "get_context", "set_context", "using", "execute",
    "ParallelExplorationReport", "parallel_explore", "schedule_specs",
]
