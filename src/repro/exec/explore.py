"""Parallel seed exploration for ``repro race --explore-schedules``.

Each seeded schedule permutation is a pure function of its
``(app, machine, shape, seed)`` tuple, so exploration is embarrassingly
parallel: every seed becomes a ``schedule`` :class:`RunSpec`, the
engine fans them out, and the outcomes merge back **in seed order** —
the report is line-for-line identical to a serial
:func:`repro.race.explorer.explore` sweep over the same seeds.

Minimization of the first failing seed stays serial and local (it is a
binary search — inherently sequential) using the caller-provided
runner, so the replay token and its findings come from real
:class:`~repro.race.explorer.ScheduleOutcome` objects.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.exec.engine import Engine, RunResult
from repro.exec.spec import RunSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.race.explorer import Runner, ScheduleOutcome

__all__ = ["schedule_specs", "ParallelExplorationReport",
           "parallel_explore"]


def schedule_specs(app: str, app_params: _t.Mapping[str, _t.Any], *,
                   schedules: int, base_seed: int = 0) -> list[RunSpec]:
    """One ``schedule`` spec per seed in ``[base_seed, base_seed + N)``."""
    specs = []
    for seed in range(base_seed, base_seed + schedules):
        params = {"app": app, "seed": seed, "limit": None, **app_params}
        specs.append(RunSpec("schedule", params,
                             label=f"schedule/{app}/seed{seed}"))
    return specs


@dataclasses.dataclass
class ParallelExplorationReport:
    """Aggregate of one parallel sweep, render-compatible with serial.

    ``outcomes`` holds the worker-side outcome dicts (seed order);
    ``minimized`` is a locally re-run real outcome when a failure was
    minimized.
    """

    outcomes: list[dict]
    minimized: "ScheduleOutcome | None" = None

    @property
    def failing(self) -> list[dict]:
        """Outcome rows whose schedule crashed, raced or violated."""
        return [o for o in self.outcomes if o.get("failed")]

    @property
    def ok(self) -> bool:
        """True when every explored schedule was clean."""
        return not self.failing

    def render(self, *, max_findings: int = 3) -> str:
        """The serial explorer's report format, one line per schedule."""
        lines = [o["rendered"] for o in self.outcomes]
        lines.append(f"explored {len(self.outcomes)} schedule(s): "
                     f"{len(self.failing)} failing")
        if self.minimized is not None:
            lines.append(
                f"minimized replay token: seed={self.minimized.seed} "
                f"limit={self.minimized.limit} "
                f"(re-run with --seed {self.minimized.seed} "
                f"--limit {self.minimized.limit})")
            shown = (self.minimized.race_findings[:max_findings]
                     + self.minimized.san_violations[:max_findings])
            lines.extend(item.render() for item in shown)
        return "\n".join(lines)


def parallel_explore(app: str, app_params: _t.Mapping[str, _t.Any], *,
                     schedules: int, base_seed: int = 0, jobs: int = 2,
                     runner: "Runner | None" = None,
                     minimize: bool = True,
                     engine: "Engine | None" = None
                     ) -> ParallelExplorationReport:
    """Explore ``schedules`` seeds in parallel; minimize the first failure.

    A spec whose worker crashed outright (engine-level error, not a
    schedule verdict) is reported as a failed outcome with the error in
    its rendered line.
    """
    specs = schedule_specs(app, app_params, schedules=schedules,
                           base_seed=base_seed)
    eng = engine if engine is not None else Engine(jobs=jobs)
    results = eng.run(specs)
    outcomes = [_as_outcome_dict(spec, result)
                for spec, result in zip(specs, results)]
    report = ParallelExplorationReport(outcomes=outcomes)
    failing = report.failing
    if failing and minimize and runner is not None:
        first = failing[0]
        if first.get("seed") is not None:
            from repro.race.explorer import minimize_schedule, run_schedule

            local = run_schedule(runner, int(first["seed"]))
            if local.failed:
                report.minimized = minimize_schedule(runner, local)
    return report


def _as_outcome_dict(spec: RunSpec, result: RunResult) -> dict:
    if result.ok and result.result is not None:
        return result.result
    seed = spec.params.get("seed")
    return {"seed": seed, "limit": None, "decisions": 0,
            "error": "worker-error", "detail": result.error or "",
            "races": 0, "violations": 0, "tasks_completed": None,
            "failed": True,
            "rendered": f"seed={seed}: FAIL error=worker-error — "
                        f"{result.error}",
            "finding_lines": []}
