"""Process-wide execution context for figure plans.

The figure functions in :mod:`repro.bench.experiments` do not take
jobs/cache arguments — they execute their specs through the *current*
:class:`ExecContext`.  The default context is serial and uncached
(exactly the pre-engine behavior); the CLI installs a parallel + cached
context around a sweep, and tests scope one with :func:`using`.
"""

from __future__ import annotations

import contextlib
import typing as _t

from repro.errors import ExperimentError
from repro.exec.cache import ResultCache
from repro.exec.engine import Engine, ProgressFn, RunResult
from repro.exec.spec import RunSpec

__all__ = ["ExecContext", "get_context", "set_context", "using", "execute"]


class ExecContext:
    """How figure specs get executed: worker count, cache, narration."""

    def __init__(self, *, jobs: int = 1,
                 cache: "ResultCache | None" = None,
                 progress: "ProgressFn | None" = None):
        self.jobs = jobs
        self.cache = cache
        self.progress = progress

    def run(self, specs: _t.Sequence[RunSpec]) -> list[RunResult]:
        """Run specs through an engine configured like this context."""
        return Engine(jobs=self.jobs, cache=self.cache,
                      progress=self.progress).run(specs)


_current = ExecContext()


def get_context() -> ExecContext:
    """The context figure functions currently execute under."""
    return _current


def set_context(ctx: ExecContext) -> ExecContext:
    """Install ``ctx`` as the process-wide context; returns the old one."""
    global _current
    previous, _current = _current, ctx
    return previous


@contextlib.contextmanager
def using(ctx: ExecContext) -> _t.Iterator[ExecContext]:
    """Scope ``ctx`` as the current context for a ``with`` block."""
    previous = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(previous)


def execute(specs: _t.Sequence[RunSpec]) -> list[dict]:
    """Run specs under the current context, unwrapping result payloads.

    Raises :class:`~repro.errors.ExperimentError` naming every failed
    spec — assembly code downstream needs all values, so a partial
    figure is an error, not a NaN.
    """
    results = get_context().run(specs)
    failed = [r for r in results if not r.ok]
    if failed:
        lines = [f"{r.spec.display()}: {r.error}" for r in failed]
        raise ExperimentError(
            f"{len(failed)} of {len(results)} runs failed:\n  "
            + "\n  ".join(lines))
    return [_t.cast(dict, r.result) for r in results]
