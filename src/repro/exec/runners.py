"""Spec executors: the functions a worker process runs for each kind.

Every executor is a module-level function (picklable across the
``ProcessPoolExecutor`` fork) that takes a spec's ``params`` mapping
and returns a JSON-able result dict.  All simulation state is built
fresh inside the call, so a spec's result is a pure function of its
params — the property both the parallel fan-out and the content cache
rely on.

:func:`execute_spec` is the pool entrypoint: it wraps the executor in
crash isolation, returning a structured ``{"ok": False, "error": ...}``
payload instead of letting one bad config kill the whole sweep.
"""

from __future__ import annotations

import time
import traceback
import typing as _t

__all__ = ["EXECUTORS", "execute_spec"]


def run_stream_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One STREAM kernel on one memory node (Figure 1 cell)."""
    from repro.machine.knl import build_knl
    from repro.machine.stream import run_stream
    from repro.sim.environment import Environment

    env = Environment()
    node = build_knl(env)
    result = run_stream(node, params["device"], kernel=params["kernel"],
                        threads=int(params["threads"]),
                        array_bytes=int(params["array_bytes"]))
    return {"bandwidth": result.bandwidth}


def run_memcpy_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """N concurrent movers migrating equal slices (Figure 7 cell)."""
    from repro.machine.knl import build_knl
    from repro.mem.block import DataBlock
    from repro.sim.environment import Environment

    threads = int(params["threads"])
    per_thread = max(int(params["total_bytes"]) // threads, 1)
    env = Environment()
    node = build_knl(env, mcdram_capacity=int(params["mcdram"]),
                     ddr_capacity=int(params["ddr"]))
    if params["direction"] == "ddr-to-hbm":
        src, dst = node.ddr, node.hbm
    else:
        src, dst = node.hbm, node.ddr
    blocks = []
    for i in range(threads):
        block = DataBlock(f"mig{i}", per_thread)
        node.registry.register(block)
        node.topology.place_block(block, src)
        blocks.append(block)
    done = [env.process(node.mover.move(b, dst), name=f"mv{i}")
            for i, b in enumerate(blocks)]
    env.run(env.all_of(done))
    return {"elapsed": env.now}


def _build(params: _t.Mapping[str, _t.Any]) -> _t.Any:
    from repro.core.api import OOCRuntimeBuilder

    builder = OOCRuntimeBuilder(
        params["strategy"], cores=int(params["cores"]),
        mcdram_capacity=int(params["mcdram"]),
        ddr_capacity=int(params["ddr"]),
        trace=bool(params.get("trace", False)))
    replicate = int(params.get("replicate", 0))
    if replicate == 0:
        return builder.build()
    # Replicate r > 0: permute same-instant event ordering with the
    # explorer's seeded tie-breaker.  Deterministic per (spec, r) — the
    # replicate id is part of the spec identity, so every replicate is
    # its own cache entry and re-runs stay byte-identical.
    from repro.exec.spec import stable_seed
    from repro.race.explorer import SeededTieBreaker
    from repro.sim.environment import Environment

    env = Environment()
    env.set_tie_breaker(SeededTieBreaker(stable_seed("replicate", replicate)))
    return builder.build_into(env)


def run_stencil_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One Stencil3D run; traced runs add Projections-report metrics."""
    from repro.apps.stencil3d import Stencil3D, StencilConfig

    built = _build(params)
    cfg = StencilConfig(total_bytes=int(params["total"]),
                        block_bytes=int(params["block"]),
                        iterations=int(params["iterations"]))
    result = Stencil3D(built, cfg).run()
    out = {"total_time": result.total_time,
           "mean_iteration_time": result.mean_iteration_time,
           "mean_kernel_time": result.mean_kernel_time}
    if params.get("trace"):
        from repro.trace.projections import build_report

        report = build_report(built.runtime.tracer)
        tasks_per_pe = {f"pe{pe.id}": pe.tasks_executed
                        for pe in built.runtime.pes}
        out["wait_fraction"] = report.mean_wait_fraction()
        out["utilization"] = report.mean_utilization()
        out["preprocess_per_task"] = \
            report.mean_preprocess_per_task(tasks_per_pe)
    return out


def run_matmul_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One blocked-MatMul run (Figure 9 cell)."""
    from repro.apps.matmul import MatMul, MatMulConfig

    built = _build(params)
    cfg = MatMulConfig.for_working_set(int(params["working_set"]),
                                       block_dim=int(params["block_dim"]))
    result = MatMul(built, cfg).run()
    return {"total_time": result.total_time,
            "mean_kernel_time": result.mean_kernel_time}


def run_spmv_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One iterated-SpMV run (guided-placement sweep cell)."""
    from repro.apps.spmv import SpMV, SpMVConfig

    built = _build(params)
    cfg = SpMVConfig(block_rows=int(params["block_rows"]),
                     block_bytes=int(params["block_bytes"]),
                     vector_bytes=int(params["vector_bytes"]),
                     couplings=int(params["couplings"]),
                     iterations=int(params["iterations"]),
                     seed=int(params.get("seed", 0)))
    result = SpMV(built, cfg).run()
    return {"total_time": result.total_time,
            "mean_iteration_time":
                sum(result.iteration_times) / len(result.iteration_times)}


def run_stream_app_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One STREAM-over-chares run (strategy-sensitive, leaderboard cell)."""
    from repro.apps.stream_app import StreamApp, StreamAppConfig

    built = _build(params)
    cfg = StreamAppConfig(kernel=params.get("kernel", "triad"),
                          array_bytes=int(params["array_bytes"]),
                          chares=int(params["chares"]),
                          repeats=int(params.get("repeats", 2)))
    result = StreamApp(built, cfg).run()
    return {"total_time": result.elapsed_best,
            "bandwidth": result.bandwidth}


def run_schedule_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """One seeded schedule permutation under racesan+simsan."""
    from repro.race.explorer import (matmul_runner, run_schedule,
                                     spmv_runner, stencil_runner)

    machine = dict(strategy=params["strategy"], cores=int(params["cores"]),
                   mcdram=int(params["mcdram"]), ddr=int(params["ddr"]))
    if params["app"] == "stencil":
        runner = stencil_runner(total=int(params["total"]),
                                block=int(params["block"]),
                                iterations=int(params["iterations"]),
                                **machine)
    elif params["app"] == "spmv":
        runner = spmv_runner(block_rows=int(params["block_rows"]),
                             block_bytes=int(params["block_bytes"]),
                             vector_bytes=int(params["vector_bytes"]),
                             couplings=int(params["couplings"]),
                             iterations=int(params["iterations"]),
                             seed=int(params.get("matrix_seed", 0)),
                             **machine)
    else:
        runner = matmul_runner(working_set=int(params["working_set"]),
                               block_dim=int(params["block_dim"]),
                               **machine)
    seed = params.get("seed")
    limit = params.get("limit")
    outcome = run_schedule(runner, seed if seed is None else int(seed),
                           limit=limit if limit is None else int(limit))
    findings = outcome.race_findings + outcome.san_violations
    return {"seed": outcome.seed, "limit": outcome.limit,
            "decisions": outcome.decisions, "error": outcome.error,
            "detail": outcome.detail,
            "races": len(outcome.race_findings),
            "violations": len(outcome.san_violations),
            "tasks_completed": outcome.tasks_completed,
            "failed": outcome.failed,
            "rendered": outcome.render(),
            "finding_lines": [f.render() for f in findings[:8]]}


def run_selftest_spec(params: _t.Mapping[str, _t.Any]) -> dict:
    """Engine-testing kind: spin, fail on demand, or echo a value."""
    if params.get("fail"):
        raise RuntimeError(f"selftest failure: {params.get('fail')}")
    spin = int(params.get("spin", 0))
    acc = 0
    for i in range(spin):
        acc = (acc + i * i) % 1000003
    return {"value": params.get("value"), "spun": acc if spin else 0}


#: spec kind -> executor; keep every entry a top-level function
EXECUTORS: dict[str, _t.Callable[[_t.Mapping[str, _t.Any]], dict]] = {
    "stream": run_stream_spec,
    "memcpy": run_memcpy_spec,
    "stencil": run_stencil_spec,
    "matmul": run_matmul_spec,
    "spmv": run_spmv_spec,
    "stream_app": run_stream_app_spec,
    "schedule": run_schedule_spec,
    "selftest": run_selftest_spec,
}


def execute_spec(payload: _t.Mapping[str, _t.Any]) -> dict:
    """Pool entrypoint: run ``{"kind", "params"}`` with crash isolation.

    Always returns a structured payload — ``{"ok": True, "result", ...}``
    or ``{"ok": False, "error", "traceback"}`` — so one failed spec
    reports an error row instead of killing the sweep.
    """
    t0 = time.perf_counter()
    try:
        executor = EXECUTORS[payload["kind"]]
    except KeyError:
        return {"ok": False, "elapsed_s": 0.0,
                "error": f"unknown spec kind {payload.get('kind')!r}",
                "traceback": ""}
    try:
        result = executor(payload["params"])
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return {"ok": False, "elapsed_s": time.perf_counter() - t0,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc()}
    return {"ok": True, "elapsed_s": time.perf_counter() - t0,
            "result": result}
