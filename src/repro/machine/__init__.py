"""KNL-class machine models.

Binds the memory substrate to a core/tile layout and provides kernel
execution primitives (compute floor + memory flows) plus the STREAM
bandwidth measurement used to calibrate against the paper's Figure 1.
"""

from repro.machine.cpu import Core, Tile, build_cpu
from repro.machine.node import KernelResult, MachineNode
from repro.machine.knl import build_knl, build_machine
from repro.machine.stream import StreamResult, run_stream

__all__ = [
    "Core", "Tile", "build_cpu",
    "KernelResult", "MachineNode",
    "build_knl", "build_machine",
    "StreamResult", "run_stream",
]
