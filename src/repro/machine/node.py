"""A many-core node: cores + heterogeneous memory + kernel execution.

The kernel execution primitive implements the "roofline in time" model:
a task's duration is the *maximum* of its compute floor (flops at the
core's rate) and the completion of its memory traffic (fluid flows on the
devices hosting its data).  Because the flows share ports with every other
concurrent kernel, prefetch and eviction, bandwidth sensitivity — the
paper's central phenomenon — falls out of the model.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.lint import hooks as _hooks
from repro.machine.cpu import Core, build_cpu
from repro.mem.allocator import PagedAllocator
from repro.mem.device import MemoryDevice
from repro.mem.mover import DataMover
from repro.mem.registry import BlockRegistry
from repro.mem.topology import MemoryTopology
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork

__all__ = ["KernelResult", "MachineNode"]


@dataclasses.dataclass
class KernelResult:
    """Timing of one kernel execution."""

    core_id: int
    flops: float
    bytes_touched: float
    started_at: float
    finished_at: float
    compute_floor: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def memory_bound(self) -> bool:
        """True when memory time, not the compute floor, set the duration."""
        return self.duration > self.compute_floor * (1 + 1e-9)


class MachineNode:
    """A simulated node built from a :class:`MachineConfig`."""

    def __init__(self, env: Environment, config: MachineConfig, *,
                 allocator_cls: type = PagedAllocator,
                 allocator_kwargs: dict[str, _t.Any] | None = None,
                 fluid_solver: str | None = None):
        self.env = env
        self.config = config
        self.network = FluidNetwork(env, solver=fluid_solver)
        kwargs = allocator_kwargs or {}
        devices = []
        for dev_cfg in config.devices:
            allocator = allocator_cls(dev_cfg.capacity,
                                      name=f"{dev_cfg.name}.alloc", **kwargs)
            devices.append(MemoryDevice(
                name=dev_cfg.name, numa_node=dev_cfg.numa_node,
                capacity=dev_cfg.capacity,
                read_bandwidth=dev_cfg.read_bandwidth,
                write_bandwidth=dev_cfg.write_bandwidth,
                latency=dev_cfg.latency,
                allocator=allocator, network=self.network))
        self.topology = MemoryTopology(devices)
        self.registry = BlockRegistry(self.topology)
        self.mover = DataMover(env, self.topology,
                               per_thread_copy_bw=config.copy_bandwidth)
        self.cores, self.tiles = build_cpu(
            config.cores, config.tiles, config.smt,
            config.core_flops, config.core_mem_bandwidth)
        #: kernel executions completed, for sanity accounting
        self.kernels_executed = 0

    # -- lookups ------------------------------------------------------------

    @property
    def hbm(self) -> MemoryDevice:
        return self.topology.hbm

    @property
    def ddr(self) -> MemoryDevice:
        return self.topology.ddr

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise ConfigError(f"no core {core_id} (have {len(self.cores)})")
        return self.cores[core_id]

    # -- kernel execution -----------------------------------------------------

    def run_kernel(self, core: Core | int, flops: float,
                   traffic: _t.Mapping[MemoryDevice, tuple[float, float]],
                   *, weight: float = 1.0) -> _t.Generator:
        """Execute a kernel on ``core``; yields inside a simulated process.

        ``traffic`` maps each device to ``(read_bytes, write_bytes)`` the
        kernel touches there.  The kernel finishes when both the compute
        floor has elapsed and every memory flow has drained.
        """
        if isinstance(core, int):
            core = self.core(core)
        if flops < 0:
            raise ConfigError("flops must be >= 0")
        started = self.env.now
        floor = flops / core.flops if flops > 0 else 0.0

        total_bytes = sum(r + w for r, w in traffic.values())
        waits = []
        if floor > 0:
            waits.append(self.env.timeout(floor))
        if total_bytes > 0:
            # The core's memory bandwidth cap is split across devices
            # proportionally to the bytes requested from each.
            for device, (read_bytes, write_bytes) in traffic.items():
                dev_bytes = read_bytes + write_bytes
                if dev_bytes <= 0:
                    continue
                cap = core.mem_bandwidth * (dev_bytes / total_bytes)
                flow = device.mixed_flow(read_bytes, write_bytes,
                                         weight=weight, max_rate=cap)
                waits.append(flow.done)
        if waits:
            yield self.env.all_of(waits)
        self.kernels_executed += 1
        return KernelResult(
            core_id=core.core_id, flops=flops, bytes_touched=total_bytes,
            started_at=started, finished_at=self.env.now,
            compute_floor=floor)

    def run_kernel_on_blocks(self, core: Core | int, flops: float,
                             reads: _t.Iterable, writes: _t.Iterable,
                             *, traffic_scale: float = 1.0,
                             weight: float = 1.0) -> _t.Generator:
        """Kernel traffic derived from data blocks' current residency.

        ``reads``/``writes`` are :class:`~repro.mem.block.DataBlock`s; each
        contributes its size (scaled) on whatever device currently hosts it.
        This is how the Naive baseline's penalty arises: blocks left on DDR4
        drag the kernel down to DDR4 bandwidth.
        """
        reads = tuple(reads)
        writes = tuple(writes)
        if _hooks.observer is not None:
            _hooks.observer.on_kernel_access(reads, writes)
        traffic: dict[MemoryDevice, list[float]] = {}
        for block in reads:
            if block.device is None:
                raise ConfigError(f"read block {block.name!r} is not resident")
            entry = traffic.setdefault(block.device, [0.0, 0.0])
            entry[0] += block.nbytes * traffic_scale
        for block in writes:
            if block.device is None:
                raise ConfigError(f"write block {block.name!r} is not resident")
            entry = traffic.setdefault(block.device, [0.0, 0.0])
            entry[1] += block.nbytes * traffic_scale
        result = yield from self.run_kernel(
            core, flops,
            {dev: (r, w) for dev, (r, w) in traffic.items()},
            weight=weight)
        return result

    def __repr__(self) -> str:
        return (f"<MachineNode {self.config.name} cores={len(self.cores)} "
                f"devices={[d.name for d in self.topology.devices]}>")
