"""STREAM benchmark over the device model (paper Figure 1).

McCalpin's STREAM kernels and their per-element traffic (8-byte doubles):

=========  ==================  =====  ======
kernel     operation           reads  writes
=========  ==================  =====  ======
copy       a[i] = b[i]           1      1
scale      a[i] = q*b[i]         1      1
add        a[i] = b[i]+c[i]      2      1
triad      a[i] = b[i]+q*c[i]    2      1
=========  ==================  =====  ======

STREAM reports ``bytes_touched / best_time``.  We run ``threads`` concurrent
streaming kernels against one device and measure exactly that, which is the
calibration anchor for the ~4x MCDRAM:DDR4 ratio the paper's Figure 1 shows.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ExperimentError
from repro.machine.node import MachineNode
from repro.mem.device import MemoryDevice
from repro.units import MiB

__all__ = ["STREAM_KERNELS", "StreamResult", "run_stream"]

#: kernel name -> (reads per element, writes per element)
STREAM_KERNELS: dict[str, tuple[int, int]] = {
    "copy": (1, 1),
    "scale": (1, 1),
    "add": (2, 1),
    "triad": (2, 1),
}


@dataclasses.dataclass
class StreamResult:
    """One STREAM measurement."""

    kernel: str
    device: str
    threads: int
    array_bytes: int
    bytes_touched: float
    elapsed: float

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth, B/s (STREAM convention)."""
        return self.bytes_touched / self.elapsed if self.elapsed > 0 else 0.0


def run_stream(node: MachineNode, device: MemoryDevice | str, *,
               kernel: str = "triad", threads: int | None = None,
               array_bytes: int = 64 * MiB, repeats: int = 3) -> StreamResult:
    """Measure STREAM bandwidth for ``kernel`` on ``device``.

    Each thread streams its own ``array_bytes`` working array; the reported
    bandwidth is total touched bytes over the elapsed (simulated) time of
    the slowest thread, best of ``repeats`` — mirroring real STREAM.
    """
    if kernel not in STREAM_KERNELS:
        raise ExperimentError(
            f"unknown STREAM kernel {kernel!r}; choose from {sorted(STREAM_KERNELS)}")
    if isinstance(device, str):
        device = node.topology.device(device)
    nthreads = threads if threads is not None else len(node.cores)
    if nthreads < 1 or nthreads > len(node.cores):
        raise ExperimentError(
            f"threads must be in [1, {len(node.cores)}], got {nthreads}")
    reads, writes = STREAM_KERNELS[kernel]
    read_bytes = float(reads * array_bytes)
    write_bytes = float(writes * array_bytes)
    per_thread_bytes = read_bytes + write_bytes

    env = node.env
    best_elapsed = float("inf")
    for _rep in range(max(1, repeats)):
        start = env.now
        # Fast path: a streaming kernel with no compute floor is exactly one
        # mixed flow per thread, so start the flows directly instead of
        # spawning a simulated process per thread just to await them.  All
        # flows begin at the same instant, which the incremental fluid
        # solver batches into a single rate solve.
        done_events = []
        for tid in range(nthreads):
            core = node.cores[tid]
            flow = device.mixed_flow(read_bytes, write_bytes,
                                     max_rate=core.mem_bandwidth)
            done_events.append(flow.done)
            node.kernels_executed += 1
        env.run(env.all_of(done_events))
        best_elapsed = min(best_elapsed, env.now - start)

    return StreamResult(
        kernel=kernel, device=device.name, threads=nthreads,
        array_bytes=array_bytes,
        bytes_touched=per_thread_bytes * nthreads,
        elapsed=best_elapsed)
