"""KNL machine factory: memory modes and cluster modes (§III-B).

* **Flat** — MCDRAM and DDR4 are separate NUMA nodes (the paper's setup).
* **Cache** — MCDRAM is a direct-mapped cache of DDR4: the node exposes a
  single DDR4-sized pool; bandwidth experienced by kernels comes from the
  :class:`~repro.mem.cache.DirectMappedCache` model attached to the node.
* **Hybrid** — part of MCDRAM in flat mode (a smaller node-1 pool), the
  rest acting as cache.

Cluster modes scale bandwidth/latency inside :func:`repro.config.knl_config`.
"""

from __future__ import annotations

import typing as _t

from repro.config import ClusterMode, MachineConfig, MemoryMode, knl_config
from repro.errors import ConfigError
from repro.machine.node import MachineNode
from repro.mem.cache import DirectMappedCache
from repro.mem.allocator import PagedAllocator
from repro.sim.environment import Environment
from repro.units import GiB

__all__ = ["build_machine", "build_knl"]


def build_machine(env: Environment, config: MachineConfig, *,
                  allocator_cls: type = PagedAllocator,
                  allocator_kwargs: dict[str, _t.Any] | None = None,
                  fluid_solver: str | None = None) -> MachineNode:
    """Build a node from an explicit config (flat-mode semantics)."""
    node = MachineNode(env, config, allocator_cls=allocator_cls,
                       allocator_kwargs=allocator_kwargs,
                       fluid_solver=fluid_solver)
    node.mcdram_cache = None  # type: ignore[attr-defined]
    return node


def build_knl(env: Environment, *,
              cores: int = 64,
              memory_mode: MemoryMode = MemoryMode.FLAT,
              cluster_mode: ClusterMode = ClusterMode.ALL_TO_ALL,
              mcdram_capacity: int | str = 16 * GiB,
              ddr_capacity: int | str = 96 * GiB,
              hybrid_cache_fraction: float = 0.5,
              allocator_cls: type = PagedAllocator,
              allocator_kwargs: dict[str, _t.Any] | None = None,
              fluid_solver: str | None = None) -> MachineNode:
    """Build the paper's KNL node in the requested mode.

    In CACHE mode the returned node has only the DDR4 device (numa node 0)
    plus a ``mcdram_cache`` attribute carrying the cache model; HYBRID mode
    shrinks the flat MCDRAM pool and attaches a proportionally smaller
    cache.
    """
    base = knl_config(cores=cores, memory_mode=memory_mode,
                      cluster_mode=cluster_mode,
                      mcdram_capacity=mcdram_capacity,
                      ddr_capacity=ddr_capacity,
                      hybrid_cache_fraction=hybrid_cache_fraction)
    ddr_cfg = base.device("ddr4")
    mcdram_cfg = base.device("mcdram")

    if memory_mode is MemoryMode.FLAT:
        node = MachineNode(env, base, allocator_cls=allocator_cls,
                           allocator_kwargs=allocator_kwargs,
                           fluid_solver=fluid_solver)
        node.mcdram_cache = None  # type: ignore[attr-defined]
        return node

    if memory_mode is MemoryMode.CACHE:
        cfg = MachineConfig(
            name=base.name, cores=base.cores, tiles=base.tiles, smt=base.smt,
            core_flops=base.core_flops,
            core_mem_bandwidth=base.core_mem_bandwidth,
            devices=(ddr_cfg,), memory_mode=memory_mode,
            cluster_mode=cluster_mode)
        node = MachineNode(env, cfg, allocator_cls=allocator_cls,
                           allocator_kwargs=allocator_kwargs,
                           fluid_solver=fluid_solver)
        node.mcdram_cache = DirectMappedCache(  # type: ignore[attr-defined]
            mcdram_cfg.capacity,
            hit_bandwidth=mcdram_cfg.read_bandwidth,
            miss_bandwidth=ddr_cfg.read_bandwidth)
        return node

    if memory_mode is MemoryMode.HYBRID:
        cache_bytes = int(mcdram_cfg.capacity * hybrid_cache_fraction)
        flat_bytes = mcdram_cfg.capacity - cache_bytes
        if flat_bytes <= 0:
            raise ConfigError(
                "hybrid mode needs a non-empty flat MCDRAM partition")
        flat_mcdram = mcdram_cfg.scaled(capacity=flat_bytes)
        cfg = MachineConfig(
            name=base.name, cores=base.cores, tiles=base.tiles, smt=base.smt,
            core_flops=base.core_flops,
            core_mem_bandwidth=base.core_mem_bandwidth,
            devices=(ddr_cfg, flat_mcdram), memory_mode=memory_mode,
            cluster_mode=cluster_mode,
            hybrid_cache_fraction=hybrid_cache_fraction)
        node = MachineNode(env, cfg, allocator_cls=allocator_cls,
                           allocator_kwargs=allocator_kwargs,
                           fluid_solver=fluid_solver)
        if cache_bytes > 0:
            node.mcdram_cache = DirectMappedCache(  # type: ignore[attr-defined]
                cache_bytes,
                hit_bandwidth=mcdram_cfg.read_bandwidth,
                miss_bandwidth=ddr_cfg.read_bandwidth)
        else:  # pragma: no cover - guarded above
            node.mcdram_cache = None  # type: ignore[attr-defined]
        return node

    raise ConfigError(f"unknown memory mode {memory_mode!r}")
