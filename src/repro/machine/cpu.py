"""Cores, tiles and SMT threads (paper §III-B, Figure 4).

KNL packs 2 physical cores per tile (34 tiles, 68 cores, 4-way SMT → 272
hardware threads).  The runtime maps one worker PE per physical core and —
in the Multiple-IO-threads strategy — pins each IO thread to an SMT sibling
of its worker "so as to not increase the usage of the number of physical
cores" (§IV-B).  The hardware-thread objects here exist so that pinning is
explicit and testable.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError

__all__ = ["HardwareThread", "Core", "Tile", "build_cpu"]


@dataclasses.dataclass(frozen=True)
class HardwareThread:
    """One SMT context on a core."""

    global_id: int
    core_id: int
    smt_lane: int

    @property
    def is_primary(self) -> bool:
        """The lane worker PEs run on."""
        return self.smt_lane == 0


class Core:
    """A physical core with its SMT lanes."""

    def __init__(self, core_id: int, tile_id: int, smt: int,
                 flops: float, mem_bandwidth: float):
        if smt < 1:
            raise ConfigError("smt must be >= 1")
        self.core_id = core_id
        self.tile_id = tile_id
        #: peak FLOP/s of this core
        self.flops = flops
        #: memory bandwidth one core can draw by itself, B/s
        self.mem_bandwidth = mem_bandwidth
        self.threads = tuple(
            HardwareThread(global_id=core_id * smt + lane,
                           core_id=core_id, smt_lane=lane)
            for lane in range(smt))

    @property
    def primary_thread(self) -> HardwareThread:
        return self.threads[0]

    def smt_sibling(self, lane: int = 1) -> HardwareThread:
        """The SMT lane IO threads get pinned to (lane 1 by default)."""
        if lane >= len(self.threads):
            raise ConfigError(
                f"core {self.core_id} has no SMT lane {lane} "
                f"(smt={len(self.threads)})")
        return self.threads[lane]

    def __repr__(self) -> str:
        return f"<Core {self.core_id} tile={self.tile_id} smt={len(self.threads)}>"


class Tile:
    """Two cores sharing an L2 slice (KNL's tile)."""

    def __init__(self, tile_id: int, cores: tuple[Core, ...]):
        self.tile_id = tile_id
        self.cores = cores

    def __repr__(self) -> str:
        ids = ",".join(str(c.core_id) for c in self.cores)
        return f"<Tile {self.tile_id} cores=[{ids}]>"


def build_cpu(cores: int, tiles: int, smt: int, core_flops: float,
              core_mem_bandwidth: float) -> tuple[tuple[Core, ...], tuple[Tile, ...]]:
    """Lay out ``cores`` over ``tiles`` (2 per tile, KNL style)."""
    if cores <= 0 or tiles <= 0:
        raise ConfigError("cores and tiles must be > 0")
    per_tile = max(1, -(-cores // tiles))  # ceil
    core_objs = tuple(
        Core(core_id=i, tile_id=i // per_tile, smt=smt,
             flops=core_flops, mem_bandwidth=core_mem_bandwidth)
        for i in range(cores))
    tile_objs: list[Tile] = []
    for tid in range(-(-cores // per_tile)):
        members = tuple(c for c in core_objs if c.tile_id == tid)
        tile_objs.append(Tile(tid, members))
    return core_objs, tuple(tile_objs)
