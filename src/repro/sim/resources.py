"""Queued resources: stores and counted resources.

These are the building blocks for the runtime's message queues.  ``Store``
is an unbounded FIFO channel with blocking ``get``; ``PriorityStore`` pops
the smallest item; ``Resource`` models N interchangeable slots.
"""

from __future__ import annotations

import heapq
import typing as _t
from collections import deque
from itertools import count

from repro.errors import SimulationError
from repro.race import hooks as _rh
from repro.sim.environment import Environment
from repro.sim.events import PENDING, Event

__all__ = ["Store", "PriorityStore", "Resource"]

# Store.get/Resource.request run once per runtime message; cloning
# Event.__init__ inline there (as Environment.timeout does for Timeout)
# saves the constructor call frame.  Keep in sync with Event.__init__ —
# note the deliberately uninitialised ``_defused`` slot.
_new_event = Event.__new__


class Store:
    """Unbounded FIFO channel.

    ``put(item)`` never blocks.  ``get()`` returns an event that fires with
    the next item (immediately if one is queued).  Getters are served FIFO.
    """

    __slots__ = ("env", "name", "_items", "_getters", "_get_name")

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: deque[_t.Any] = deque()
        self._getters: deque[Event] = deque()
        # get() runs once per runtime message; formatting the event name
        # there would dominate the fast path, so build it once
        self._get_name = f"{name}.get"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection only)."""
        return tuple(self._items)

    def put(self, item: _t.Any) -> None:
        getters = self._getters
        if getters:
            # inlined Event.succeed() minus its already-triggered guard: a
            # parked getter is untriggered by construction.  put() runs
            # once per runtime message; the call layers were measurable.
            ev = getters.popleft()
            ev._value = item
            env = self.env
            if env._in_kernel:
                # inside a kernel drain: no tie-breaker or observer can
                # be active, and the NORMAL domain is uncounted — skip
                # their checks on the per-message hot path
                env._agenda_normal.append(ev)
                return
            if env._tie_break is None:
                env._agenda_normal.append(ev)
                env._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(ev)
            else:
                env.schedule(ev)
        else:
            # buffered handoff: the later get() succeeds from the getter's
            # own context, so without this hook the put->get causality edge
            # would be invisible to the race detector
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_put(item)
            self._items.append(item)

    def get(self) -> Event:
        env = self.env
        proc = env._current
        if proc is not None:
            # recycle the resuming process's private handle (reuse_handles
            # mode, see Process._handle): three slot resets replace the
            # allocation + eight-store init below.  _current is published
            # only by the fused kernel loop, which never runs with an
            # observer or tie-breaker installed and whose NORMAL domain
            # is uncounted — the tracker/tie-break/_live branches of the
            # general path below are statically dead here.  _cb0 keeps
            # naming the owner (the kernel attach relies on it); _cbs
            # needs no reset — every drain loop clears it at processing
            # time, so a processed handle never carries overflow
            # callbacks.  The
            # parked branch must restore _value = PENDING: conditions
            # (all_of/any_of) read ``triggered`` at construction, and a
            # stale value would make a parked handle look already fired.
            ev = proc._handle
            if ev._processed:
                ev._processed = False
                ev._cb0 = proc
                items = self._items
                if items:
                    ev._value = items.popleft()
                    env._agenda_normal.append(ev)
                else:
                    ev._value = PENDING
                    self._getters.append(ev)
                return ev
        # inlined Event(env, self._get_name): the constructor call frame
        # and the name= keyword cost ~250ns per event at this call rate
        ev = _new_event(Event)
        ev.env = env
        ev.name = self._get_name
        ev._cb0 = None
        ev._cbs = None
        ev._ok = True
        ev._processed = False
        ev._cancelled = False
        if self._items:
            item = self._items.popleft()
            tracker = _rh.tracker
            if tracker is not None:
                tracker.on_handoff_get(item)
            # inlined Event.succeed() (see put()); ev is freshly created
            ev._value = item
            if env._in_kernel:
                env._agenda_normal.append(ev)
            elif env._tie_break is None:
                env._agenda_normal.append(ev)
                env._live += 1
                if tracker is not None:
                    tracker.on_scheduled(ev)
            else:
                env.schedule(ev)
        else:
            ev._value = PENDING
            self._getters.append(ev)
        return ev

    def try_get(self) -> _t.Any | None:
        """Non-blocking pop; returns None when empty."""
        if self._items:
            item = self._items.popleft()
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_get(item)
            return item
        return None


class PriorityStore(Store):
    """A store that pops the smallest item (heap order, FIFO among equals)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, name: str = "pstore"):
        super().__init__(env, name=name)
        self._heap: list[tuple[_t.Any, int, _t.Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple:
        return tuple(item for _, _, item in sorted(self._heap))

    def put(self, item: _t.Any, priority: _t.Any = None) -> None:
        key = item if priority is None else priority
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_put(item)
            heapq.heappush(self._heap, (key, next(self._seq), item))

    def get(self) -> Event:
        ev = Event(self.env, name=self._get_name)
        if self._heap:
            item = heapq.heappop(self._heap)[2]
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_get(item)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> _t.Any | None:
        if self._heap:
            item = heapq.heappop(self._heap)[2]
            if _rh.tracker is not None:
                _rh.tracker.on_handoff_get(item)
            return item
        return None


class Resource:
    """N interchangeable slots with FIFO grant order.

    ``request()`` yields until a slot is free; ``release()`` frees one.
    """

    __slots__ = ("env", "name", "capacity", "_in_use", "_waiters",
                 "_req_name")

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        self._req_name = f"{name}.request"

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        env = self.env
        proc = env._current
        if proc is not None:
            # recycle the caller's handle — see Store.get() (the tracker /
            # tie-break/_live branches below are statically dead here too)
            ev = proc._handle
            if ev._processed:
                ev._processed = False
                ev._cb0 = proc
                in_use = self._in_use
                if in_use < self.capacity:
                    self._in_use = in_use + 1
                    ev._value = None
                    env._agenda_normal.append(ev)
                else:
                    ev._value = PENDING
                    self._waiters.append(ev)
                return ev
        # inlined Event(env, self._req_name) — see Store.get()
        ev = _new_event(Event)
        ev.env = env
        ev.name = self._req_name
        ev._cb0 = None
        ev._cbs = None
        ev._ok = True
        ev._processed = False
        ev._cancelled = False
        if self._in_use < self.capacity:
            self._in_use += 1
            # inlined Event.succeed() (see Store.put()); ev is fresh
            if env._in_kernel:
                ev._value = None
                env._agenda_normal.append(ev)
            elif env._tie_break is None:
                ev._value = None
                env._agenda_normal.append(ev)
                env._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(ev)
            else:
                ev._value = PENDING
                ev.succeed()
        else:
            ev._value = PENDING
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        waiters = self._waiters
        if waiters:
            # inlined Event.succeed() (see Store.put()): a parked waiter is
            # untriggered by construction
            ev = waiters.popleft()
            env = self.env
            if env._in_kernel:
                # inside a kernel drain — see Store.put()
                ev._value = None
                env._agenda_normal.append(ev)
                return
            if env._tie_break is None:
                ev._value = None
                env._agenda_normal.append(ev)
                env._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(ev)
            else:
                ev.succeed()
        else:
            self._in_use -= 1
