"""The simulation environment: clock + batched event queue + run loop.

The queue is split into three structures so the hot loop touches the
cheapest one that can serve the next event:

* **agenda** — two FIFO lists (urgent / normal) holding the events due at
  the *current* instant.  ``schedule(delay=0)`` — the overwhelmingly common
  case: every ``succeed()`` cascade — is a single ``list.append``; no heap
  is involved at all.  The drain loop swaps the whole list out and walks it
  with a bare ``for`` (ping-pong batching): one container operation per
  *batch* of same-instant events instead of one pop per event.
* **buckets** — future events grouped by their exact timestamp
  (``dict[time, list[Event]]``).  Same-timestamp cascades (64 movers waking
  from one timeout) cost one heap entry for the whole batch instead of one
  heap push/pop per event.
* **time heap** — a heap of plain floats, one per occupied bucket.  The
  clock advances by popping a time and draining its bucket into the agenda
  in one pass.

Processing order is identical to the previous one-entry-per-heap-push
design: events run in ``(time, priority-band, scheduling order)`` order,
with URGENT (process resumption) ahead of NORMAL at the same instant —
including URGENT events scheduled *while* a normal batch is draining,
which preempt the rest of that batch.  The one deliberate exception: a
``delay > 0`` that rounds to the current instant lands *after* the
already-queued same-instant events instead of interleaving by sequence
number (both orders are deterministic).

Cancellation is O(1): :meth:`cancel` tombstones the event in place and the
drain loops skip it.  When tombstones outnumber live entries (a long
open-loop run cancelling bandwidth wakeups forever), :meth:`_compact`
sweeps them out, so dead entries can no longer accumulate without bound.

When a same-instant tie-breaker is installed (the schedule explorer), the
environment falls back to the legacy single-heap layout whose entries
carry the permuted sequence keys — batched FIFO lists cannot represent a
permuted same-instant order.
"""

from __future__ import annotations

import os as _os
import typing as _t
from heapq import heapify as _heapify
from heapq import heappop as _heappop
from heapq import heappush as _heappush
from itertools import count

from repro.errors import DeadlockError, SimulationError
from repro.race import hooks as _rh
from repro.sim import kernel as _kernel
from repro.sim.events import Event, AllOf, AnyOf, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Environment"]

#: Priority band for normal events.
NORMAL = 1
#: Priority band for urgent events (process resumption ahead of same-time events).
URGENT = 0

#: compact when tombstones exceed both this floor and the live count
_COMPACT_MIN_DEAD = 64

#: hoisted for Environment.timeout() (one LOAD_ATTR per timeout otherwise)
_new_timeout = Timeout.__new__


class Environment:
    """Owns the simulated clock and the pending-event structures.

    Typical usage::

        env = Environment()
        env.process(my_generator(env))
        env.run()

    :meth:`schedule` returns an opaque token (the event itself in the
    batched layout, a heap entry under a tie-breaker) which may be passed
    to :meth:`cancel` for O(1) invalidation.  Cancelled entries are
    skipped lazily and swept out wholesale once they outnumber live ones.
    """

    __slots__ = ("_now", "_times", "_buckets", "_urgent_buckets",
                 "_agenda_urgent", "_agenda_normal", "_legacy_queue",
                 "_seq", "_live", "_dead", "_active", "_tie_break",
                 "_kernel", "_reuse", "_current", "_in_kernel",
                 "_tcache_t", "_tcache")

    def __init__(self, initial_time: float = 0.0, *,
                 reuse_handles: bool = False,
                 kernel: bool | None = None):
        self._now = float(initial_time)
        #: run() full drains go through the fused kernel loop
        #: (repro.sim.kernel.drain) unless disabled here or via
        #: $REPRO_SIM_KERNEL=0; both loops are order-identical
        if kernel is None:
            kernel = _os.environ.get("REPRO_SIM_KERNEL", "1") != "0"
        self._kernel = kernel
        #: opt-in: event factories may recycle the calling process's
        #: private handle event (see Process._handle for the contract)
        self._reuse = bool(reuse_handles)
        #: process currently being resumed by the kernel loop, published
        #: only when reuse_handles is on (event factories consult it)
        self._current = None
        #: True while a kernel drain is running: the NORMAL event domain
        #: is then *uncounted* — scheduling paths skip the per-event
        #: ``_live`` bookkeeping and the kernel reconciles on exit (see
        #: repro.sim.kernel for the conversion contract)
        self._in_kernel = False
        #: one-slot bucket cache for timeout(): consecutive timeouts to
        #: the same instant (the 64-lane lockstep shape) skip the float
        #: hash + dict lookup.  Invalidated wholesale wherever a bucket
        #: can leave ``_buckets`` (_advance_clock / peek / _compact).
        self._tcache_t = -1.0
        self._tcache: list[Event] | None = None
        #: heap of bucket timestamps (floats; may hold stale duplicates)
        self._times: list[float] = []
        #: future NORMAL events by exact timestamp
        self._buckets: dict[float, list[Event]] = {}
        #: future URGENT events by exact timestamp (rare: URGENT is only
        #: used for same-instant process bootstrap today)
        self._urgent_buckets: dict[float, list[Event]] = {}
        #: events due at the current instant, FIFO per priority band
        self._agenda_urgent: list[Event] = []
        self._agenda_normal: list[Event] = []
        #: legacy ``[time, priority, seq, event]`` heap (tie-breaker mode)
        self._legacy_queue: list[list] = []
        self._seq = count()
        #: number of live (non-cancelled) entries across all structures.
        #: NOTE: while a batch is draining this lags behind by the events
        #: dispatched so far in the batch (flushed at batch end).
        self._live = 0
        #: number of cancelled entries still parked in the structures
        self._dead = 0
        #: live processes, for deadlock diagnostics
        self._active: dict[int, "Process"] = {}
        #: optional same-instant tie-breaker (schedule explorer); maps the
        #: raw sequence number to the heap sequence key
        self._tie_break: _t.Callable[[int], _t.Any] | None = None

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self, name)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds.

        This is a fully inlined copy of ``Timeout.__init__`` + the
        future-bucket branch of :meth:`schedule`: one timeout is created
        per PE-loop iteration, and the constructor + scheduling call
        layers were a measurable slice of event-churn wall time.
        """
        proc = self._current
        if proc is not None:
            # recycle the resuming process's private handle (reuse_handles
            # mode): resets instead of an allocation + full slot init.
            # _current is published only by the fused kernel loop, which
            # never runs with an observer or tie-breaker installed and
            # whose NORMAL domain is uncounted — the tracker/tie-break/
            # _live bookkeeping of the general path is statically dead
            # here.  _cb0 keeps naming the owner (the kernel attach
            # relies on it); the ``delay`` slot is NOT refreshed — a
            # recycled handle's repr may show a stale delay, which the
            # opaque-handle contract permits (see Process._handle).
            ev = proc._handle
            if ev._processed:
                if delay > 0.0:
                    ev._processed = False
                    ev._cb0 = proc
                    ev._value = value
                    t = self._now + delay
                    if t == self._tcache_t:
                        self._tcache.append(ev)
                        return ev
                    buckets = self._buckets
                    bucket = buckets.get(t)
                    if bucket is None:
                        bucket = [ev]
                        buckets[t] = bucket
                        _heappush(self._times, t)
                    else:
                        bucket.append(ev)
                    self._tcache_t = t
                    self._tcache = bucket
                    return ev
                if delay == 0.0:
                    ev._processed = False
                    ev._cb0 = proc
                    ev._value = value
                    self._agenda_normal.append(ev)
                    return ev
                # negative or NaN: the validating constructor raises
                return Timeout(self, delay, value)
        if not (delay >= 0.0 and self._tie_break is None):
            return Timeout(self, delay, value)  # slow/validating path (NaN
            # and negative delays fail the >= check and get the real error)
        ev = _new_timeout(Timeout)
        ev.env = self
        ev.name = "timeout"
        ev._cb0 = None
        ev._cbs = None
        ev._ok = True
        ev._value = value
        ev._processed = False
        ev._cancelled = False
        ev.delay = delay
        if delay == 0.0:
            self._agenda_normal.append(ev)
        else:
            t = self._now + delay
            if t == self._tcache_t:
                self._tcache.append(ev)
                if self._in_kernel:
                    return ev
                self._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(ev)
                return ev
            buckets = self._buckets
            bucket = buckets.get(t)
            if bucket is None:
                bucket = [ev]
                buckets[t] = bucket
                _heappush(self._times, t)
            else:
                bucket.append(ev)
            self._tcache_t = t
            self._tcache = bucket
        if self._in_kernel:
            return ev
        self._live += 1
        if _rh.tracker is not None:
            _rh.tracker.on_scheduled(ev)
        return ev

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str = "") -> "Process":
        """Spawn a new simulated process from a generator."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> _t.Any:
        """Queue a triggered event for callback processing at ``now+delay``.

        Returns an opaque token that may be passed to :meth:`cancel`.
        """
        tie_break = self._tie_break
        if tie_break is not None:
            # legacy single-heap layout: entries carry permuted seq keys
            if delay < 0 or delay != delay:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay!r})")
            entry = [self._now + delay, priority, tie_break(next(self._seq)),
                     event]
            _heappush(self._legacy_queue, entry)
            self._live += 1
            if _rh.tracker is not None:
                _rh.tracker.on_scheduled(event)
            return entry
        if delay == 0.0:
            # current instant: plain FIFO append, no heap traffic
            if priority == URGENT:
                self._agenda_urgent.append(event)
                # URGENT entries stay counted even inside a kernel drain:
                # they are consumed via _dispatch, which decrements
                self._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(event)
                return event
            self._agenda_normal.append(event)
        elif delay > 0.0:
            t = self._now + delay
            if priority == URGENT:
                store = self._urgent_buckets
                bucket = store.get(t)
                if bucket is None:
                    store[t] = [event]
                    _heappush(self._times, t)
                else:
                    bucket.append(event)
                self._live += 1
                if _rh.tracker is not None:
                    _rh.tracker.on_scheduled(event)
                return event
            store = self._buckets
            bucket = store.get(t)
            if bucket is None:
                store[t] = [event]
                _heappush(self._times, t)
            else:
                bucket.append(event)
            if t == self._tcache_t and bucket is not self._tcache:
                # defensive: never let the timeout cache alias a bucket
                # this path just replaced (cannot happen today — the
                # cache is invalidated wherever buckets are dropped —
                # but the check is one compare on a cold path)
                self._tcache_t = -1.0  # pragma: no cover
        else:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay!r})")
        # NORMAL domain: uncounted while a kernel drain is running (the
        # drain reconciles _live on exit; see repro.sim.kernel)
        if self._in_kernel:
            return event
        self._live += 1
        if _rh.tracker is not None:
            _rh.tracker.on_scheduled(event)
        return event

    def set_tie_breaker(
            self, fn: "_t.Callable[[int], _t.Any] | None") -> None:
        """Install a same-instant ordering permuter (schedule explorer).

        ``fn`` maps each raw sequence number to the sequence key actually
        used in the heap — events with equal ``(time, priority)`` are then
        processed in key order instead of FIFO, while the keys stay unique
        so cross-time/priority ordering is untouched.  Must be installed
        before anything is scheduled: the batched FIFO layout cannot
        retrofit permuted keys onto already-queued events.
        """
        if self._live or self._dead or self._legacy_queue:
            raise SimulationError(
                "set_tie_breaker() requires an empty event queue")
        self._tie_break = fn

    def cancel(self, entry: _t.Any) -> bool:
        """Invalidate a scheduled entry in place (O(1)).

        The entry's callbacks will never run; the dead entry is discarded
        lazily (and swept wholesale once tombstones outnumber live
        entries).  Returns False if the entry was already cancelled or
        processed.
        """
        if type(entry) is list:  # legacy-mode heap entry
            if entry[3] is None:
                return False
            if _rh.tracker is not None:
                _rh.tracker.on_descheduled(entry[3])
            entry[3] = None
            self._live -= 1
            self._dead += 1
            if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
                self._compact()
            return True
        event: Event = entry
        if event._cancelled or event._processed:
            return False
        if _rh.tracker is not None:
            _rh.tracker.on_descheduled(event)
        event._cancelled = True
        if not self._in_kernel:
            # mid-drain the NORMAL domain is uncounted (and URGENT
            # entries are never exposed for cancellation), so there is
            # nothing to decrement; the tombstone is reconciled by the
            # skip sites (see repro.sim.kernel)
            self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()
        return True

    def _compact(self) -> None:
        """Sweep tombstones out of every queue structure.

        Triggered from :meth:`cancel` once dead entries outnumber live
        ones (and exceed a small floor), so the sweep is amortized O(1)
        per cancellation and the structures hold at most
        ``2 * live + 64`` entries at any time.  All containers are
        mutated *in place* — the run loop may alias them.
        """
        self._tcache_t = -1.0  # the sweep below may drop buckets
        if self._tie_break is not None:
            queue = self._legacy_queue
            queue[:] = [e for e in queue if e[3] is not None]
            _heapify(queue)
            self._dead = 0
            return
        for agenda in (self._agenda_urgent, self._agenda_normal):
            if agenda:
                agenda[:] = [e for e in agenda if not e._cancelled]
        for store in (self._buckets, self._urgent_buckets):
            for t in list(store):
                bucket = store[t]
                keep = [e for e in bucket if not e._cancelled]
                if keep:
                    bucket[:] = keep
                else:
                    del store[t]
        times = self._times
        times[:] = list(self._buckets.keys() | self._urgent_buckets.keys())
        _heapify(times)
        # an in-flight drain batch is unreachable from here, so any
        # tombstones it still holds were not swept; the drain loop's
        # per-event decrement may then push _dead slightly negative,
        # which only postpones the next sweep by that many cancels
        self._dead = 0

    # -- introspection -------------------------------------------------------

    def live_entry_count(self) -> int:
        """O(pending) recount of live entries (simsan conservation check).

        Only meaningful at quiescence or between :meth:`step` calls — an
        in-flight drain batch is invisible to this walk.
        """
        if self._tie_break is not None:
            return sum(1 for e in self._legacy_queue if e[3] is not None)
        n = sum(1 for e in self._agenda_urgent if not e._cancelled)
        n += sum(1 for e in self._agenda_normal if not e._cancelled)
        for store in (self._buckets, self._urgent_buckets):
            for bucket in store.values():
                n += sum(1 for e in bucket if not e._cancelled)
        return n

    def stored_entry_count(self) -> int:
        """Total parked entries including tombstones (leak diagnostics)."""
        if self._tie_break is not None:
            return len(self._legacy_queue)
        n = len(self._agenda_urgent) + len(self._agenda_normal)
        for store in (self._buckets, self._urgent_buckets):
            for bucket in store.values():
                n += len(bucket)
        return n

    # -- run loop -----------------------------------------------------------

    def _advance_clock(self) -> bool:
        """Drain the next non-empty bucket into the agenda; move the clock.

        Returns False when no live future event exists.  The clock only
        lands on instants that still hold at least one live entry.
        """
        self._tcache_t = -1.0  # buckets may leave the dict below
        times = self._times
        buckets, ubuckets = self._buckets, self._urgent_buckets
        if self._dead == 0 and not ubuckets:
            # no tombstones anywhere and no urgent futures (the common
            # case): move the whole bucket without per-event checks
            while times:
                t = _heappop(times)
                nb = buckets.pop(t, None)
                if nb is None:
                    continue  # stale duplicate timestamp
                self._agenda_normal.extend(nb)
                self._now = t
                return True
            return False
        while times:
            t = _heappop(times)
            ub = ubuckets.pop(t, None)
            nb = buckets.pop(t, None)
            if ub is None and nb is None:
                continue  # stale duplicate timestamp
            moved = False
            if ub is not None:
                urgent = self._agenda_urgent
                for event in ub:
                    if event._cancelled:
                        self._dead -= 1
                    else:
                        urgent.append(event)
                        moved = True
            if nb is not None:
                normal = self._agenda_normal
                for event in nb:
                    if event._cancelled:
                        self._dead -= 1
                    else:
                        normal.append(event)
                        moved = True
            if moved:
                self._now = t
                return True
        return False

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        self._tcache_t = -1.0  # the sweep below may drop buckets
        if self._tie_break is not None:
            queue = self._legacy_queue
            while queue and queue[0][3] is None:
                _heappop(queue)
                self._dead -= 1
            return queue[0][0] if queue else float("inf")
        for agenda in (self._agenda_urgent, self._agenda_normal):
            if agenda:
                live = [e for e in agenda if not e._cancelled]
                if len(live) != len(agenda):
                    self._dead -= len(agenda) - len(live)
                    agenda[:] = live
                if agenda:
                    return self._now
        times = self._times
        while times:
            t = times[0]
            live_t = False
            for store in (self._urgent_buckets, self._buckets):
                bucket = store.get(t)
                if bucket is not None:
                    keep = [e for e in bucket if not e._cancelled]
                    self._dead -= len(bucket) - len(keep)
                    if keep:
                        bucket[:] = keep
                        live_t = True
                    else:
                        del store[t]
            if live_t:
                return t
            _heappop(times)
        return float("inf")

    def step(self) -> None:
        """Process exactly one live event (advancing the clock to it)."""
        if self._tie_break is not None:
            self._legacy_step()
            return
        urgent, normal = self._agenda_urgent, self._agenda_normal
        while True:
            if urgent:
                event = urgent.pop(0)
            elif normal:
                event = normal.pop(0)
            elif not self._advance_clock():
                raise SimulationError("step() on an empty event queue")
            else:
                urgent, normal = self._agenda_urgent, self._agenda_normal
                continue
            if event._cancelled:
                self._dead -= 1
                continue
            break
        self._dispatch(event)

    def _legacy_step(self) -> None:
        queue = self._legacy_queue
        while True:
            if not queue:
                raise SimulationError("step() on an empty event queue")
            entry = _heappop(queue)
            when, event = entry[0], entry[3]
            if event is not None:
                break
            self._dead -= 1
        # mark the entry consumed so a late cancel() is a no-op
        entry[3] = None
        self._now = when
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Consume one live event: run its callbacks, surface failures."""
        event._processed = True
        self._live -= 1
        if _rh.tracker is not None:
            _rh.tracker.on_processing(event)
        event._process()
        if not event._ok and not event._defused:
            # Nobody handled this failure: surface it instead of silently
            # dropping a crashed process.
            raise event._value

    def _drain_all(self) -> None:
        """Run every pending event until the queue dries.

        Dispatches to the fused kernel loop (:func:`repro.sim.kernel.drain`)
        unless it is disabled or an observer (race tracker / sanitizer)
        is installed — observers get the reference loop, whose per-event
        hook points are the observable contract.  Both loops process
        events in identical order.
        """
        if self._kernel and _rh.tracker is None:
            _kernel.drain(self)
        else:
            self._drain_reference()

    def _drain_reference(self) -> None:
        """The reference hot loop: batched drain with inlined dispatch.

        This is the pure scheduling loop with an inlined copy of the
        callback dispatch (`Event._process` + the failure surfacing of
        :meth:`_dispatch`): at millions of events per run, the method
        call layers are a measurable fraction of total wall time.  Any
        semantic change here must be mirrored in :meth:`step` /
        :meth:`_dispatch` and in :func:`repro.sim.kernel.drain` (the
        fused production loop), which must stay order-identical.

        Batching: the current-instant agenda list is swapped out whole
        and walked with a bare ``for`` (one container op per batch, not
        per event); events appended meanwhile land in the fresh list and
        form the next batch — exactly FIFO order.  URGENT events that
        arrive mid-batch preempt the rest of the normal batch, matching
        the old heap's ``(time, priority, seq)`` order.
        """
        advance = self._advance_clock
        spare_u: list[Event] = []
        spare_n: list[Event] = []
        while True:
            tracker = _rh.tracker
            batch = self._agenda_urgent
            if batch:
                # URGENT batches are rare (process bootstrap only), so they
                # take the readable reference dispatch; failure splicing
                # matches the normal-batch path below.
                self._agenda_urgent = spare_u
                try:
                    for event in batch:
                        if event._cancelled:
                            self._dead -= 1
                        else:
                            self._dispatch(event)
                except BaseException:
                    self._agenda_urgent[:0] = batch[batch.index(event) + 1:]
                    raise
                batch.clear()
                spare_u = batch
                continue
            batch = self._agenda_normal
            if batch:
                self._agenda_normal = spare_n
            elif advance():
                continue
            else:
                if self._live:  # pragma: no cover - conservation net
                    raise SimulationError(
                        f"{self._live} live entr(ies) unreachable by "
                        "the run loop (queue conservation broken)")
                return
            # _live accounting is batched: per-event position is recovered
            # with batch.index() on the rare paths (failure, preemption)
            # instead of paying a counter increment on every event.
            u_agenda = self._agenda_urgent
            skipped = 0
            flushed = 0
            for event in batch:
                if event._cancelled:
                    self._dead -= 1
                    skipped += 1
                    continue
                # -- inlined dispatch (see _dispatch / Event._process).
                # _cb0/_cbs are deliberately not cleared here: _processed
                # already gates every callback-view and add-after-process
                # path, and the batch list drops the refs when cleared.
                event._processed = True
                if tracker is not None:
                    tracker.on_processing(event)
                callback = event._cb0
                if callback is not None:
                    callback(event)
                callbacks = event._cbs
                if callbacks is not None:
                    # cleared so a processed *handle* (reuse mode) can be
                    # recycled without re-checking overflow callbacks; the
                    # reference semantics (_process) clear here anyway
                    event._cbs = None
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # surface the unhandled failure; the rest of the batch
                    # goes back to the head of its agenda so a follow-up
                    # run() resumes exactly where this one stopped
                    idx = batch.index(event)
                    self._live -= idx + 1 - skipped - flushed
                    self._agenda_normal[:0] = batch[idx + 1:]
                    raise event._value
                # URGENT arrivals (process bootstrap) preempt the rest of
                # this NORMAL batch, matching the old heap's
                # (time, priority, seq) order.
                if u_agenda:
                    dispatched = batch.index(event) + 1 - skipped
                    self._live -= dispatched - flushed
                    flushed = dispatched
                    while u_agenda:
                        uev = u_agenda.pop(0)
                        if uev._cancelled:
                            self._dead -= 1
                        else:
                            self._dispatch(uev)
            self._live -= len(batch) - skipped - flushed
            batch.clear()
            spare_n = batch

    def run(self, until: "float | Event | None" = None) -> _t.Any:
        """Run until the queue drains, a deadline, or an event fires.

        * ``until=None`` — drain the queue completely.
        * ``until=<float>`` — run to that simulated time.
        * ``until=<Event>`` — run until that event is processed and return
          its value.  Raises :class:`DeadlockError` if the queue drains
          first (the event can then never fire).
        """
        if until is None:
            if self._tie_break is not None:
                while self._live:
                    self._legacy_step()
                return None
            self._drain_all()
            return None

        if isinstance(until, Event):
            target = until
            done: list = []
            target.add_callback(done.append)
            while self._live and not done:
                self.step()
            if not done:
                raise DeadlockError(
                    f"event queue drained before {target!r} fired",
                    waiting=tuple(sorted(p.name for p in self._active.values())),
                )
            if not target.ok:
                target.defuse()
                raise target.value
            return target.value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline!r}) is in the past (now={self._now!r})")
        while self._live and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None

    # -- diagnostics ----------------------------------------------------------

    def register_process(self, process: "Process") -> None:
        self._active[id(process)] = process

    def unregister_process(self, process: "Process") -> None:
        self._active.pop(id(process), None)

    @property
    def active_process_names(self) -> tuple[str, ...]:
        """Names of processes that have started and not yet finished."""
        return tuple(sorted(p.name for p in self._active.values()))

    def __repr__(self) -> str:
        return f"<Environment t={self._now:g} pending={self._live}>"
