"""The simulation environment: clock + event heap + run loop."""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Environment"]

#: Priority band for normal events.
NORMAL = 1
#: Priority band for urgent events (process resumption ahead of same-time events).
URGENT = 0


class Environment:
    """Owns the simulated clock and the pending-event heap.

    Typical usage::

        env = Environment()
        env.process(my_generator(env))
        env.run()

    The heap is keyed ``(time, priority, sequence)`` — the sequence number
    makes same-time processing deterministic (FIFO in scheduling order).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        #: live processes, for deadlock diagnostics
        self._active: dict[int, "Process"] = {}

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str = "") -> "Process":
        """Spawn a new simulated process from a generator."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue a triggered event for callback processing at ``now+delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    # -- run loop -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event.ok and not event._defused:
            # Nobody handled this failure: surface it instead of silently
            # dropping a crashed process.
            exc = event.value
            raise exc

    def run(self, until: "float | Event | None" = None) -> _t.Any:
        """Run until the queue drains, a deadline, or an event fires.

        * ``until=None`` — drain the queue completely.
        * ``until=<float>`` — run to that simulated time.
        * ``until=<Event>`` — run until that event is processed and return
          its value.  Raises :class:`DeadlockError` if the queue drains
          first (the event can then never fire).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            target = until
            done = []
            target.add_callback(done.append)
            while self._queue and not done:
                self.step()
            if not done:
                raise DeadlockError(
                    f"event queue drained before {target!r} fired",
                    waiting=tuple(sorted(p.name for p in self._active.values())),
                )
            if not target.ok:
                target.defuse()
                raise target.value
            return target.value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline!r}) is in the past (now={self._now!r})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    # -- diagnostics ----------------------------------------------------------

    def register_process(self, process: "Process") -> None:
        self._active[id(process)] = process

    def unregister_process(self, process: "Process") -> None:
        self._active.pop(id(process), None)

    @property
    def active_process_names(self) -> tuple[str, ...]:
        """Names of processes that have started and not yet finished."""
        return tuple(sorted(p.name for p in self._active.values()))

    def __repr__(self) -> str:
        return f"<Environment t={self._now:g} pending={len(self._queue)}>"
