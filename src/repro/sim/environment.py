"""The simulation environment: clock + event heap + run loop."""

from __future__ import annotations

import typing as _t
from heapq import heappop as _heappop
from heapq import heappush as _heappush
from itertools import count

from repro.errors import DeadlockError, SimulationError
from repro.race import hooks as _rh
from repro.sim.events import AllOf, AnyOf, Event, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Environment"]

#: Priority band for normal events.
NORMAL = 1
#: Priority band for urgent events (process resumption ahead of same-time events).
URGENT = 0


class Environment:
    """Owns the simulated clock and the pending-event heap.

    Typical usage::

        env = Environment()
        env.process(my_generator(env))
        env.run()

    The heap is keyed ``(time, priority, sequence)`` — the sequence number
    makes same-time processing deterministic (FIFO in scheduling order).

    Heap entries support O(1) *invalidation*: :meth:`schedule` returns the
    entry, and :meth:`cancel` voids it in place instead of re-heapifying.
    Cancelled entries are skipped (and discarded) lazily by :meth:`peek`
    and :meth:`step`.  The fluid bandwidth model uses this to retire
    superseded "next completion" wakeups without processing them.
    """

    __slots__ = ("_now", "_queue", "_seq", "_live", "_active", "_tie_break")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: heap of ``[time, priority, seq, event-or-None]`` entries;
        #: ``None`` in the event slot marks a cancelled entry
        self._queue: list[list] = []
        self._seq = count()
        #: number of live (non-cancelled) entries in the heap
        self._live = 0
        #: live processes, for deadlock diagnostics
        self._active: dict[int, "Process"] = {}
        #: optional same-instant tie-breaker (schedule explorer); maps the
        #: raw sequence number to the heap sequence key
        self._tie_break: _t.Callable[[int], _t.Any] | None = None

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str = "") -> "Process":
        """Spawn a new simulated process from a generator."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> list:
        """Queue a triggered event for callback processing at ``now+delay``.

        Returns the heap entry, which may be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq: _t.Any = next(self._seq)
        if self._tie_break is not None:
            seq = self._tie_break(seq)
        entry = [self._now + delay, priority, seq, event]
        _heappush(self._queue, entry)
        self._live += 1
        if _rh.tracker is not None:
            _rh.tracker.on_scheduled(event)
        return entry

    def set_tie_breaker(
            self, fn: "_t.Callable[[int], _t.Any] | None") -> None:
        """Install a same-instant ordering permuter (schedule explorer).

        ``fn`` maps each raw sequence number to the sequence key actually
        used in the heap — events with equal ``(time, priority)`` are then
        processed in key order instead of FIFO, while the keys stay unique
        so cross-time/priority ordering is untouched.  Must be installed
        before anything is scheduled: mixing plain and mapped keys in one
        heap would make same-instant entries incomparable.
        """
        if self._queue:
            raise SimulationError(
                "set_tie_breaker() requires an empty event queue")
        self._tie_break = fn

    def cancel(self, entry: list) -> bool:
        """Invalidate a scheduled heap entry in place (O(1)).

        The entry's callbacks will never run; the dead entry is discarded
        lazily when it reaches the head of the heap.  Returns False if the
        entry was already cancelled or processed.
        """
        if entry[3] is None:
            return False
        if _rh.tracker is not None:
            _rh.tracker.on_descheduled(entry[3])
        entry[3] = None
        self._live -= 1
        return True

    # -- run loop -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        queue = self._queue
        while queue and queue[0][3] is None:
            _heappop(queue)
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (advancing the clock to it)."""
        queue = self._queue
        while True:
            if not queue:
                raise SimulationError("step() on an empty event queue")
            entry = _heappop(queue)
            when, event = entry[0], entry[3]
            if event is not None:
                break
        # mark the entry consumed so a late cancel() is a no-op
        entry[3] = None
        self._live -= 1
        self._now = when
        if _rh.tracker is not None:
            _rh.tracker.on_processing(event)
        event._process()
        if not event._ok and not event._defused:
            # Nobody handled this failure: surface it instead of silently
            # dropping a crashed process.
            raise event._value

    def run(self, until: "float | Event | None" = None) -> _t.Any:
        """Run until the queue drains, a deadline, or an event fires.

        * ``until=None`` — drain the queue completely.
        * ``until=<float>`` — run to that simulated time.
        * ``until=<Event>`` — run until that event is processed and return
          its value.  Raises :class:`DeadlockError` if the queue drains
          first (the event can then never fire).
        """
        if until is None:
            while self._live:
                self.step()
            return None

        if isinstance(until, Event):
            target = until
            done = []
            target.add_callback(done.append)
            while self._live and not done:
                self.step()
            if not done:
                raise DeadlockError(
                    f"event queue drained before {target!r} fired",
                    waiting=tuple(sorted(p.name for p in self._active.values())),
                )
            if not target.ok:
                target.defuse()
                raise target.value
            return target.value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline!r}) is in the past (now={self._now!r})")
        while self._live and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None

    # -- diagnostics ----------------------------------------------------------

    def register_process(self, process: "Process") -> None:
        self._active[id(process)] = process

    def unregister_process(self, process: "Process") -> None:
        self._active.pop(id(process), None)

    @property
    def active_process_names(self) -> tuple[str, ...]:
        """Names of processes that have started and not yet finished."""
        return tuple(sorted(p.name for p in self._active.values()))

    def __repr__(self) -> str:
        return f"<Environment t={self._now:g} pending={self._live}>"
