"""Generator-based simulated processes.

A :class:`Process` drives a generator: each ``yield``-ed :class:`Event`
suspends the process until the event fires.  A process is itself an event
that fires when the generator returns (value = the generator's return value)
or raises (failure).  This lets processes wait on each other::

    def child(env):
        yield env.timeout(1.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        assert result == 42
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessKilled, SimulationError
from repro.race import hooks as _rh
from repro.sim.environment import URGENT, Environment
from repro.sim.events import Event, PENDING, Timeout

__all__ = ["Process"]

#: hoisted allocator for the reusable handle event (see Process._handle)
_new_timeout = Timeout.__new__

#: every reusable handle shares this one name *object*; the kernel loop
#: recognises handles by identity (``event.name is HANDLE_NAME``), which
#: lets it skip the type/_ok checks of the general dispatch path.  Built
#: via join so it is NOT the interned literal — a user event created with
#: ``name="proc.handle"`` can never alias it.
HANDLE_NAME = "".join(("proc.", "handle"))


class _Init(Event):
    """Internal bootstrap event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: Environment):
        super().__init__(env, name="init")
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running generator coroutine inside the simulation."""

    __slots__ = ("generator", "_target", "_send", "_throw", "_resume_cb",
                 "_handle")

    def __init__(self, env: Environment, generator: _t.Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}; "
                "did you forget a 'yield'?")
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        # bound methods cached once: _resume runs per event on the hottest
        # loop in the simulator, and send/throw lookups add up.  The process
        # itself is callable (``__call__ = _resume``), so it is its own
        # resume callback: the kernel loop recognises a process waiter by
        # type and fuses the resume, and no method object is ever allocated
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self
        #: the event this process is currently waiting on (None if running/finished)
        self._target: Event | None = None
        if env._reuse:
            # The process's private *handle*: a recyclable event the
            # factories (Store.get / Resource.request / env.timeout) hand
            # back instead of a fresh allocation when this process calls
            # them during its own turn.  Ownership contract (opt-in via
            # Environment(reuse_handles=True)): the awaited event may not
            # be retained past the resume — keep the delivered value, not
            # the event object.  Born processed=True: "ready for reuse".
            handle = _new_timeout(Timeout)
            handle.env = env
            handle.name = HANDLE_NAME
            handle._cb0 = None
            handle._cbs = None
            handle._ok = True
            handle._value = None
            handle._processed = True
            handle._cancelled = False
            handle.delay = 0.0
            self._handle = handle
        else:
            self._handle = None
        env.register_process(self)
        _Init(env).add_callback(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def waiting_on(self) -> Event | None:
        """The event this process is blocked on, for diagnostics."""
        return self._target

    def interrupt(self, cause: _t.Any = None) -> None:
        """Kill the process by throwing :class:`ProcessKilled` into it."""
        if not self.is_alive:
            return
        kill = self.env.event(name=f"interrupt({self.name})")
        kill.fail(ProcessKilled(cause if cause is not None else self.name))
        kill.defuse()
        # Detach from whatever it was waiting on and resume with the failure.
        kill.add_callback(self._resume)

    # -- driving the generator ------------------------------------------------

    def _resume(self, event: Event) -> None:
        # direct slot access throughout: this callback runs once per event
        # on the hottest loop in the simulator, and the property layer
        # (is_alive / ok / value / defuse) costs a measurable fraction
        if self._value is not PENDING:
            return
        if _rh.tracker is not None:
            _rh.tracker.on_resume(self, event)
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                event._defused = True
                next_event = self._throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env.unregister_process(self)
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self._target = None
            self.env.unregister_process(self)
            self._ok = False
            self._value = killed
            self._defused = True
            self.env.schedule(self)
            return
        except BaseException as exc:
            self._target = None
            self.env.unregister_process(self)
            self.fail(exc)
            return

        # Yield-target validation rides on the slot accesses themselves: a
        # non-Event (no _cb0/_processed slots) raises AttributeError, turned
        # into the diagnostic below — the valid path pays no isinstance
        # call.  Yielding an event bound to a *different* Environment is
        # not detected (same as simpy): processes and their events must
        # share one environment.
        try:
            self._target = next_event
            # inlined add_callback() single-waiter branch (the ~universal
            # case: the yielded event has no other waiter yet).  An
            # unprocessed event with _cb0 unset cannot have overflow
            # callbacks either — add_callback always fills _cb0 first and
            # only processing clears it — so _cbs needs no check here.
            if next_event._cb0 is None and not next_event._processed:
                next_event._cb0 = self
            else:
                next_event.add_callback(self)
        except AttributeError:
            self._target = None
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}; processes may "
                "only yield Event instances") from None

    # The process is its own resume callback: generic dispatch paths call
    # ``event._cb0(event)`` without caring whether the waiter is a plain
    # function or a process, and the kernel loop fuses the resume after a
    # single ``type(callback) is Process`` check.
    __call__ = _resume
