"""Events: the unit of causality in the simulation kernel.

An :class:`Event` is a one-shot future.  Processes wait on events by
``yield``-ing them; the environment resumes the process when the event fires.
Events may *succeed* (carrying a value) or *fail* (carrying an exception that
is re-raised inside every waiting process).

Callback storage is slot-based: the overwhelmingly common case is exactly
one waiter (the process that ``yield``-ed the event), so the first callback
lives in a dedicated ``_cb0`` slot and an overflow list is only allocated
for the second waiter onwards.  This halves the allocations per simulated
event against the previous one-list-per-event layout.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.race import hooks as _rh

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

__all__ = ["PENDING", "Event", "Timeout", "AllOf", "AnyOf"]


class _Pending:
    """Sentinel for 'this event has not been triggered yet'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot future bound to an :class:`Environment`.

    Lifecycle::

        created --(succeed/fail)--> triggered --(loop pops it)--> processed

    Callbacks run exactly once, at processing time, in registration
    order.  After processing, newly added callbacks run immediately (so a
    process can always safely wait on an already-finished event).
    """

    __slots__ = ("env", "name", "_cb0", "_cbs", "_value", "_ok", "_defused",
                 "_processed", "_cancelled")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        #: first callback (slot-based fast path; most events have one waiter)
        self._cb0: _t.Callable[[Event], None] | None = None
        #: overflow callbacks, allocated lazily for the second waiter onwards
        self._cbs: list[_t.Callable[[Event], None]] | None = None
        self._value: _t.Any = PENDING
        self._ok = True
        # NOTE: the ``_defused`` slot is *not* initialised here.  It is only
        # ever read behind a ``not _ok`` short-circuit, and every path that
        # clears ``_ok`` (fail(), the ProcessKilled branch of
        # Process._resume) writes it first — skipping the store here saves
        # a measurable slice of event-alloc cost on the hot paths.
        self._processed = False
        #: set by Environment.cancel(); the queue drain loops skip the event
        #: in place instead of paying a per-entry wrapper allocation
        self._cancelled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event loop has run the callbacks."""
        return self._processed

    @property
    def callbacks(self) -> list[_t.Callable[["Event"], None]] | None:
        """Registered callbacks (``None`` once processed); read-only view."""
        if self._processed:
            return None
        out: list[_t.Callable[[Event], None]] = []
        if self._cb0 is not None:
            out.append(self._cb0)
        if self._cbs is not None:
            out.extend(self._cbs)
        return out

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The success value or the failure exception."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: _t.Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule callback processing."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # inlined Environment.schedule() fast path: succeed-at-now is the
        # single hottest call in the simulator (every store handoff,
        # resource grant and process resumption lands here)
        env = self.env
        if delay == 0.0 and env._tie_break is None:
            env._agenda_normal.append(self)
            if env._in_kernel:
                # NORMAL domain is uncounted during a kernel drain (the
                # drain reconciles _live on exit; see repro.sim.kernel)
                return self
            env._live += 1
            if _rh.tracker is not None:
                _rh.tracker.on_scheduled(self)
        else:
            env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiters will see ``exception`` raised."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if not hasattr(self, "_defused"):  # lazily initialised; see __init__
            self._defused = False
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the loop does not re-raise it."""
        self._defused = True

    # -- waiting -----------------------------------------------------------

    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs synchronously.
        """
        if self._processed:
            callback(self)
        elif self._cb0 is None and self._cbs is None:
            self._cb0 = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)

    def _process(self) -> None:
        """Run the callbacks exactly once (called by the event loop)."""
        self._processed = True
        cb0, self._cb0 = self._cb0, None
        cbs, self._cbs = self._cbs, None
        if cb0 is not None:
            cb0(self)
        if cbs is not None:
            for callback in cbs:
                callback(self)

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: _t.Any = None):
        if delay < 0 or delay != delay:
            raise SimulationError(f"bad timeout delay {delay!r}")
        # flattened Event.__init__ (no super() chain): timeouts are created
        # once per PE-loop iteration, and the extra call frame plus the
        # PENDING round trip through succeed() were measurable.  The name
        # is constant; __repr__ still shows the delay.  NOTE: the hot
        # construction path is Environment.timeout(), which clones this
        # body inline — keep the two in sync.
        self.env = env
        self.name = "timeout"
        self._cb0 = None
        self._cbs = None
        self._ok = True
        self._value = value
        self._processed = False
        self._cancelled = False
        self.delay = delay
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<Timeout {self.delay:g}s {state}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: _t.Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict[Event, _t.Any]:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; fails fast on child failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect())
