"""Max-min fair-share fluid bandwidth model.

Memory traffic is modelled as *flows* over capacity-limited *links* (one
link per memory-device port).  At any instant, active flows receive rates
according to weighted max-min fairness — the same progressive-filling
abstraction network/HPC simulators such as SimGrid use.  This is what makes
contention effects come out of the model instead of being scripted:

* 64 STREAM threads on one device each get ~1/64 of its bandwidth;
* a `memcpy` between devices is bottlenecked by the slower of the two ports
  (so HBM→DDR4 costs slightly more than DDR4→HBM, Figure 7);
* prefetch traffic slows concurrently running kernels, and vice versa.

The model is event-driven: whenever the flow set changes, every flow's
progress is advanced at its old rate, rates are recomputed, and the next
completion is scheduled.  With the modest flow counts in our experiments
(hundreds), the O(flows x links) recompute is cheap.
"""

from __future__ import annotations

import math
import typing as _t
from itertools import count

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

__all__ = ["Link", "Flow", "FluidNetwork"]

#: Flows with fewer remaining bytes than this are considered complete.
#: (Float progress integration leaves sub-byte residue.)
_EPSILON_BYTES = 1e-3


class Link:
    """A capacity-limited pipe, e.g. the read port of a memory device."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise SimulationError(f"link {name!r} capacity must be > 0")
        self.name = name
        #: bytes per second
        self.capacity = float(capacity)
        self.flows: set["Flow"] = set()

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of capacity in use (post-recompute)."""
        return sum(f.rate for f in self.flows) / self.capacity

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:g} flows={len(self.flows)}>"


class Flow:
    """A transfer of ``nbytes`` across one or more links.

    ``done`` is an Event that fires (with the flow) at completion time.
    ``max_rate`` models per-requestor limits (e.g. a single core cannot
    saturate MCDRAM by itself).
    """

    __slots__ = ("fid", "links", "remaining", "total", "weight", "max_rate",
                 "rate", "done", "started_at", "finished_at")

    def __init__(self, fid: int, links: tuple[Link, ...], nbytes: float,
                 weight: float, max_rate: float, done: Event, now: float):
        self.fid = fid
        self.links = links
        self.total = float(nbytes)
        self.remaining = float(nbytes)
        self.weight = float(weight)
        self.max_rate = float(max_rate)
        self.rate = 0.0
        self.done = done
        self.started_at = now
        self.finished_at: float | None = None

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    def __repr__(self) -> str:
        links = "+".join(l.name for l in self.links)
        return (f"<Flow #{self.fid} {links} {self.remaining:.0f}/{self.total:.0f}B "
                f"@{self.rate:g}B/s>")


class FluidNetwork:
    """The set of links plus the progressive-filling rate solver."""

    def __init__(self, env: Environment):
        self.env = env
        self._links: dict[str, Link] = {}
        self._flows: set[Flow] = set()
        self._fid = count()
        self._last_advance = env.now
        # The pending "next completion" wakeup; superseded wakeups are
        # detected by generation counting.
        self._wake_generation = 0
        #: total bytes moved to completion through this network
        self.completed_bytes = 0.0
        self.completed_flows = 0

    # -- topology -------------------------------------------------------------

    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise SimulationError(f"duplicate link name {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise SimulationError(f"unknown link {name!r}") from None

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._flows)

    # -- flow lifecycle ---------------------------------------------------------

    def start_flow(self, nbytes: float, links: _t.Sequence[Link | str],
                   weight: float = 1.0, max_rate: float = math.inf) -> Flow:
        """Begin a transfer; returns the Flow whose ``.done`` can be awaited."""
        if nbytes < 0:
            raise SimulationError(f"flow size must be >= 0, got {nbytes!r}")
        if weight <= 0:
            raise SimulationError(f"flow weight must be > 0, got {weight!r}")
        resolved = tuple(self.link(l) if isinstance(l, str) else l for l in links)
        if not resolved and nbytes > 0:
            raise SimulationError("a non-empty flow needs at least one link")
        done = self.env.event(name="flow.done")
        flow = Flow(next(self._fid), resolved, nbytes, weight, max_rate,
                    done, self.env.now)
        if nbytes <= _EPSILON_BYTES:
            flow.remaining = 0.0
            flow.finished_at = self.env.now
            self.completed_flows += 1
            done.succeed(flow)
            return flow
        self._advance()
        self._flows.add(flow)
        for link in resolved:
            link.flows.add(flow)
        self._recompute_and_reschedule()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an in-flight flow; its ``done`` event fails."""
        if flow not in self._flows:
            return
        self._advance()
        self._detach(flow)
        flow.finished_at = self.env.now
        exc = SimulationError(f"flow #{flow.fid} cancelled")
        flow.done.fail(exc)
        flow.done.defuse()
        self._recompute_and_reschedule()

    # -- solver ------------------------------------------------------------------

    def _detach(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for link in flow.links:
            link.flows.discard(flow)

    def _advance(self) -> None:
        """Integrate progress since the last rate change; finish flows."""
        now = self.env.now
        dt = now - self._last_advance
        self._last_advance = now
        if dt < 0:
            raise SimulationError("fluid network clock went backwards")
        finished: list[Flow] = []
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
                if flow.remaining <= _EPSILON_BYTES:
                    flow.remaining = 0.0
                    finished.append(flow)
        for flow in sorted(finished, key=lambda f: f.fid):
            self._detach(flow)
            flow.finished_at = now
            self.completed_bytes += flow.total
            self.completed_flows += 1
            flow.done.succeed(flow)

    def _recompute(self) -> None:
        """Weighted max-min fair allocation via progressive filling.

        Each flow's personal ``max_rate`` is honoured by treating it as a
        candidate bottleneck alongside its links.
        """
        unfrozen = set(self._flows)
        for flow in unfrozen:
            flow.rate = 0.0
        residual = {link: link.capacity for link in self._links.values()}
        live_weight = {link: sum(f.weight for f in link.flows if f in unfrozen)
                       for link in self._links.values()}
        # Repeated subtraction leaves ~1e-16 residues in live_weight and
        # residual; a link whose flows all froze must read exactly empty,
        # or its ~0/~0 ratio poisons the next bottleneck computation with
        # an arbitrary (even negative) share.
        weight_floor = 1e-9 * max(
            (f.weight for f in self._flows), default=1.0)

        while unfrozen:
            # Fair share per unit weight on every still-loaded link.
            bottleneck_share = math.inf
            for link, cap in residual.items():
                w = live_weight[link]
                if w > weight_floor:
                    bottleneck_share = min(bottleneck_share,
                                           max(cap, 0.0) / w)
            # Flows capped below the link share freeze at their cap first.
            capped = [f for f in unfrozen
                      if f.max_rate < bottleneck_share * f.weight]
            if capped:
                # Freeze the most-constrained capped flows, then re-iterate.
                tightest = min(f.max_rate / f.weight for f in capped)
                batch = [f for f in capped
                         if f.max_rate / f.weight <= tightest * (1 + 1e-12)]
                for flow in batch:
                    flow.rate = flow.max_rate
                    unfrozen.discard(flow)
                    for link in flow.links:
                        residual[link] -= flow.rate
                        live_weight[link] -= flow.weight
                continue
            if not math.isfinite(bottleneck_share):
                # Remaining flows traverse no loaded link: unconstrained
                # except by their own caps (handled above), so they can
                # only be flows with max_rate == inf and no links — which
                # start_flow forbids for nbytes > 0.  Freeze at cap anyway.
                for flow in unfrozen:
                    flow.rate = flow.max_rate if math.isfinite(flow.max_rate) else 0.0
                break
            # Freeze every flow whose bottleneck link is saturated at this share.
            saturated = [link for link, cap in residual.items()
                         if live_weight[link] > weight_floor
                         and max(cap, 0.0) / live_weight[link]
                         <= bottleneck_share * (1 + 1e-12) + 1e-18]
            froze_any = False
            for link in saturated:
                for flow in [f for f in link.flows if f in unfrozen]:
                    flow.rate = bottleneck_share * flow.weight
                    unfrozen.discard(flow)
                    froze_any = True
                    for l2 in flow.links:
                        residual[l2] -= flow.rate
                        live_weight[l2] -= flow.weight
            if not froze_any:  # pragma: no cover - numeric safety valve
                for flow in unfrozen:
                    flow.rate = bottleneck_share * flow.weight
                break

    def _recompute_and_reschedule(self) -> None:
        self._recompute()
        self._wake_generation += 1
        generation = self._wake_generation
        horizon = math.inf
        for flow in self._flows:
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
        if not math.isfinite(horizon):
            return
        wake = self.env.timeout(max(horizon, 0.0))
        wake.add_callback(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later flow-set change
        self._advance()
        self._recompute_and_reschedule()

    # -- instantaneous queries ------------------------------------------------

    def instantaneous_rate(self, flow: Flow) -> float:
        """Current fair-share rate of an active flow (B/s)."""
        return flow.rate

    def snapshot(self) -> dict[str, float]:
        """Per-link utilisation snapshot for tracing."""
        return {name: link.utilization for name, link in self._links.items()}
