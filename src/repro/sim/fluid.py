"""Max-min fair-share fluid bandwidth model.

Memory traffic is modelled as *flows* over capacity-limited *links* (one
link per memory-device port).  At any instant, active flows receive rates
according to weighted max-min fairness — the same progressive-filling
abstraction network/HPC simulators such as SimGrid use.  This is what makes
contention effects come out of the model instead of being scripted:

* 64 STREAM threads on one device each get ~1/64 of its bandwidth;
* a `memcpy` between devices is bottlenecked by the slower of the two ports
  (so HBM→DDR4 costs slightly more than DDR4→HBM, Figure 7);
* prefetch traffic slows concurrently running kernels, and vice versa.

The model is event-driven: whenever the flow set changes, every affected
flow's progress is advanced at its old rate, rates are recomputed, and the
next completion is scheduled.

Two solvers are available (``solver=`` constructor flag):

* ``"incremental"`` (default) — flow arrivals/departures mark their links
  *dirty*; the recompute is deferred to a flush event at the same simulated
  timestamp, so any number of same-instant changes (64 movers starting at
  once, a whole wave completing together) cost **one** solve.  The solve
  itself is restricted to the connected component of the flow↔link graph
  reachable from the dirty links — flows on untouched components keep
  their rates, which is exact because max-min allocations decompose per
  component.  Rates are never stale from the outside: reading
  ``Flow.rate`` / ``Link.utilization`` / ``snapshot()`` settles any pending
  recompute first, and no simulated time can pass while links are dirty
  (the flush is scheduled at the current instant).

* ``"full"`` — the original eager solver: every change recomputes every
  flow on every link immediately.  Kept as the cross-check oracle; the
  other solvers must produce identical simulated timelines.

* ``"vectorized"`` — incremental scheduling with a numpy progressive-
  filling kernel for large components: flows are array columns, links are
  rows, and each filling round computes the bottleneck share, the capped
  set and the saturated set as masked array reductions instead of python
  loops.  The freeze *order* and the per-link residual subtraction order
  replicate the scalar kernel exactly, so the computed rates are
  bit-identical to ``"incremental"`` — only the per-round share/mask
  arithmetic is vectorized (reductions over IEEE doubles are exact and
  order-independent for min/max and elementwise compare).  Small
  components fall back to the scalar kernel, which is identical by
  construction.

The epsilon/wake contract: a flow whose ``remaining`` falls to
``_EPSILON_BYTES`` or below — or whose ETA is too small for the event
clock to represent an instant strictly after ``now`` — is force-completed
at the current instant by :meth:`FluidNetwork._schedule_wake` instead of
being rescheduled.  Accumulated float error can therefore never produce a
zero-progress wake loop, and ``finished_at`` is never later than the
true completion instant.  Rate-zero flows (all links saturated by
higher-weight traffic, or ``max_rate == 0``) are parked with no wake at
all; the next ``_mark_dirty`` re-solve picks them back up.
"""

from __future__ import annotations

import math
import os
import typing as _t
from itertools import count
from time import perf_counter as _perf_counter

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a project dependency
    _np = None

__all__ = ["Link", "Flow", "FluidNetwork", "SOLVERS", "default_solver"]

#: Flows with fewer remaining bytes than this are considered complete.
#: (Float progress integration leaves sub-byte residue.)  One shared
#: tolerance: start_flow's instant-complete check, _advance's completion
#: sweep and _schedule_wake's force-completion all compare against it.
_EPSILON_BYTES = 1e-3

#: recognised ``FluidNetwork(solver=...)`` values
SOLVERS = ("incremental", "full", "vectorized")

#: below this flows*links size the vectorized solver uses the scalar
#: kernel — numpy array setup costs more than it saves on tiny components
_VEC_MIN_CELLS = 32

#: flow-set-signature memo bound (entries); FIFO eviction.  Steady-state
#: applications cycle through a handful of phase configurations, so a few
#: hundred entries cover every realistic phase alphabet while bounding
#: worst-case memory on adversarial workloads.
_MEMO_MAX = 512


def default_memo() -> bool:
    """Whether new networks memoize solves (``$REPRO_SOLVER_MEMO``).

    Defaults to on; set ``REPRO_SOLVER_MEMO=0`` to disable (the property
    suite runs the cross-check both ways).
    """
    return os.environ.get("REPRO_SOLVER_MEMO", "1") != "0"


def default_solver() -> str:
    """The solver used when ``FluidNetwork(solver=None)``.

    Reads ``$REPRO_SOLVER`` (CI runs the tier-1 suite once with
    ``REPRO_SOLVER=vectorized``), defaulting to ``"incremental"``.  The
    exec-engine result cache folds this into its code fingerprint, so
    flipping the variable can never serve stale cached tables.
    """
    solver = os.environ.get("REPRO_SOLVER", "incremental")
    if solver not in SOLVERS:
        raise SimulationError(
            f"$REPRO_SOLVER={solver!r} is not one of {SOLVERS}")
    return solver


class Link:
    """A capacity-limited pipe, e.g. the read port of a memory device."""

    __slots__ = ("name", "capacity", "flows", "uid", "network")

    def __init__(self, name: str, capacity: float, *, uid: int = 0,
                 network: "FluidNetwork | None" = None):
        if capacity <= 0:
            raise SimulationError(f"link {name!r} capacity must be > 0")
        self.name = name
        #: bytes per second
        self.capacity = float(capacity)
        #: active flows crossing this link, as an insertion-ordered set
        #: (dict keys) so solver iteration order is deterministic
        self.flows: dict["Flow", None] = {}
        #: creation index, for deterministic dirty-set ordering
        self.uid = uid
        self.network = network

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of capacity in use."""
        network = self.network
        if network is not None and network._dirty:
            network._ensure_current()
        return sum(f._rate for f in self.flows) / self.capacity

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:g} flows={len(self.flows)}>"


class Flow:
    """A transfer of ``nbytes`` across one or more links.

    ``done`` is an Event that fires (with the flow) at completion time.
    ``max_rate`` models per-requestor limits (e.g. a single core cannot
    saturate MCDRAM by itself).
    """

    __slots__ = ("fid", "links", "remaining", "total", "weight", "max_rate",
                 "_rate", "done", "started_at", "finished_at", "network")

    def __init__(self, fid: int, links: tuple[Link, ...], nbytes: float,
                 weight: float, max_rate: float, done: Event, now: float,
                 network: "FluidNetwork | None" = None):
        self.fid = fid
        self.links = links
        self.total = float(nbytes)
        self.remaining = float(nbytes)
        self.weight = float(weight)
        self.max_rate = float(max_rate)
        self._rate = 0.0
        self.done = done
        self.started_at = now
        self.finished_at: float | None = None
        self.network = network

    @property
    def rate(self) -> float:
        """Current fair-share rate (B/s); settles any pending recompute."""
        network = self.network
        if network is not None and network._dirty:
            network._ensure_current()
        return self._rate

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    def __repr__(self) -> str:
        links = "+".join(l.name for l in self.links)
        return (f"<Flow #{self.fid} {links} {self.remaining:.0f}/{self.total:.0f}B "
                f"@{self._rate:g}B/s>")


class FluidNetwork:
    """The set of links plus the progressive-filling rate solver."""

    def __init__(self, env: Environment, *, solver: str | None = None,
                 memo: bool | None = None):
        if solver is None:
            solver = default_solver()
        if solver not in SOLVERS:
            raise SimulationError(
                f"unknown fluid solver {solver!r}; choose from {SOLVERS}")
        if memo is None:
            memo = default_memo()
        self.env = env
        self.solver = solver
        # "vectorized" shares the incremental dirty/flush scheduling and
        # swaps only the rate kernel, so its timelines match by construction
        self._incremental = solver != "full"
        self._vectorized = solver == "vectorized"
        self._links: dict[str, Link] = {}
        #: active flows as an insertion-ordered set (dict keys)
        self._flows: dict[Flow, None] = {}
        self._fid = count()
        self._link_uid = count()
        self._last_advance = env.now
        #: links whose flow set changed at the current instant (incremental)
        self._dirty: set[Link] = set()
        #: pending same-instant flush event, if any (incremental)
        self._flush_event: Event | None = None
        #: schedule() token of the pending "next completion" wakeup, if any
        #: (an Event in the batched event loop, a heap entry under a
        #: schedule-explorer tie-breaker; env.cancel accepts either)
        self._wake_entry: object | None = None
        #: total bytes moved to completion through this network
        self.completed_bytes = 0.0
        self.completed_flows = 0
        #: rate-kernel invocations (memo hits do NOT count: no kernel ran)
        self.solves = 0
        #: wall-clock seconds spent inside _solve (kernel + memo machinery)
        self.solve_wall_s = 0.0
        # Flow-set-signature memo (incremental/vectorized only; the full
        # solver stays the unmemoized oracle).  Max-min rates depend only
        # on the component's *structure* — link capacities, per-flow
        # (weight, max_rate, link incidence) and the per-link membership
        # order the freeze loops walk — never on remaining bytes, so
        # identical configurations can replay the cached rate vector.
        # Content keying subsumes invalidation: any topology or demand
        # mutation (capacity, weight, max_rate, membership) changes the
        # signature and simply misses.
        self._memo_enabled = bool(memo) and solver != "full"
        self._memo: dict[tuple, tuple[float, ...]] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # -- topology -------------------------------------------------------------

    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise SimulationError(f"duplicate link name {name!r}")
        link = Link(name, capacity, uid=next(self._link_uid), network=self)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise SimulationError(f"unknown link {name!r}") from None

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links.values())

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._flows)

    # -- flow lifecycle ---------------------------------------------------------

    def start_flow(self, nbytes: float, links: _t.Sequence[Link | str],
                   weight: float = 1.0, max_rate: float = math.inf) -> Flow:
        """Begin a transfer; returns the Flow whose ``.done`` can be awaited."""
        if not nbytes >= 0:  # rejects negatives and NaN in one comparison
            raise SimulationError(f"flow size must be >= 0, got {nbytes!r}")
        if not weight > 0:
            raise SimulationError(f"flow weight must be > 0, got {weight!r}")
        if not max_rate >= 0:
            raise SimulationError(
                f"flow max_rate must be >= 0, got {max_rate!r}")
        resolved = tuple(self.link(l) if isinstance(l, str) else l for l in links)
        if not resolved and nbytes > 0:
            raise SimulationError("a non-empty flow needs at least one link")
        done = self.env.event(name="flow.done")
        flow = Flow(next(self._fid), resolved, nbytes, weight, max_rate,
                    done, self.env.now, network=self)
        if nbytes <= _EPSILON_BYTES:
            flow.remaining = 0.0
            flow.finished_at = self.env.now
            self.completed_flows += 1
            done.succeed(flow)
            return flow
        self._advance()
        self._flows[flow] = None
        for link in resolved:
            link.flows[flow] = None
        if self._incremental:
            self._mark_dirty(resolved)
        else:
            self._recompute_and_reschedule()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an in-flight flow; its ``done`` event fails.

        Idempotent: cancelling a flow that already finished, was already
        cancelled, or was never started here is a no-op — including the
        race where the flow reaches zero bytes at the *exact* cancel
        instant (``_advance`` below may complete it, in which case its
        ``done`` already succeeded and must not be failed on top).
        """
        if flow not in self._flows:
            return
        self._advance()
        if flow not in self._flows:
            # _advance() integrated the final dt and completed the flow at
            # this very instant: it finished before the cancel landed.
            return
        self._detach(flow)
        flow.finished_at = self.env.now
        exc = SimulationError(f"flow #{flow.fid} cancelled")
        flow.done.fail(exc)
        flow.done.defuse()
        if self._incremental:
            self._mark_dirty(flow.links)
        else:
            self._recompute_and_reschedule()

    # -- solver ------------------------------------------------------------------

    def _detach(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        for link in flow.links:
            link.flows.pop(flow, None)

    def _advance(self) -> None:
        """Integrate progress since the last rate change; finish flows."""
        now = self.env.now
        dt = now - self._last_advance
        self._last_advance = now
        if dt < 0:
            raise SimulationError("fluid network clock went backwards")
        if dt == 0:
            return
        if self._dirty:  # pragma: no cover - defensive invariant
            raise SimulationError(
                "fluid rates were stale across a time step (dirty links "
                "survived past their flush instant)")
        finished: list[Flow] = []
        for flow in self._flows:
            flow.remaining -= flow._rate * dt
            if flow.remaining <= _EPSILON_BYTES:
                flow.remaining = 0.0
                finished.append(flow)
        if not finished:
            return
        touched: list[Link] = []
        for flow in sorted(finished, key=lambda f: f.fid):
            touched.extend(flow.links)
            self._complete(flow, now)
        if self._incremental:
            self._mark_dirty(touched)

    def _complete(self, flow: Flow, now: float) -> None:
        """Finish a flow: detach, stamp, count, fire ``done``.

        Shared by _advance's completion sweep and _schedule_wake's
        sub-epsilon force-completion so the two paths cannot drift.
        """
        self._detach(flow)
        flow.remaining = 0.0
        flow.finished_at = now
        self.completed_bytes += flow.total
        self.completed_flows += 1
        flow.done.succeed(flow)

    # -- incremental bookkeeping ---------------------------------------------

    def _mark_dirty(self, links: _t.Iterable[Link]) -> None:
        """Record a flow-set change; defer the solve to the flush instant."""
        self._dirty.update(links)
        if not self._dirty:
            # nothing to re-solve, but the completion horizon may have moved
            self._schedule_wake()
            return
        if self._wake_entry is not None:
            # the pending completion wake is computed from now-stale rates
            self.env.cancel(self._wake_entry)
            self._wake_entry = None
        if self._flush_event is None:
            flush = Event(self.env, name="fluid.flush")
            flush._ok = True
            flush._value = None
            # NORMAL priority: the flush lands *after* every same-instant
            # event already in the queue, so a burst of arrivals (64 movers
            # resuming from the same timeout) batches into one solve.
            self.env.schedule(flush)
            flush.add_callback(self._on_flush)
            self._flush_event = flush

    def _on_flush(self, _event: Event) -> None:
        self._flush_event = None
        if self._dirty:
            self._ensure_current()
        elif self._wake_entry is None:
            # a rate read mid-instant already settled the solve but further
            # changes may have cancelled the wake it scheduled
            self._schedule_wake()

    def _ensure_current(self) -> None:
        """Solve the components touched by dirty links; re-arm the wake."""
        dirty, self._dirty = self._dirty, set()
        # Connected-component closure over the flow<->link bipartite graph.
        # Flows outside the closure share no links with it (directly or
        # transitively), so their max-min rates are unaffected.
        comp_flows: dict[Flow, None] = {}
        comp_links: dict[Link, None] = {}
        stack = sorted(dirty, key=lambda l: l.uid)
        for link in stack:
            comp_links[link] = None
        while stack:
            link = stack.pop()
            for flow in link.flows:
                if flow not in comp_flows:
                    comp_flows[flow] = None
                    for other in flow.links:
                        if other not in comp_links:
                            comp_links[other] = None
                            stack.append(other)
        if comp_flows:
            self._solve(comp_flows, comp_links)
        self._schedule_wake()

    # -- the max-min solve -----------------------------------------------------

    def _signature(self, flows_l: list[Flow],
                   links_l: list[Link]) -> tuple:
        """Canonical content key of a solve's component.

        Captures everything the rate kernels read, in the exact iteration
        order they read it: link capacities (in ``links`` order), per-flow
        ``(weight, max_rate, link indices)`` (in ``flows`` order) and each
        link's membership as flow indices (in ``link.flows`` insertion
        order — the freeze loops walk that order, and float subtraction
        order shapes the low bits of the computed rates).  Two isomorphic
        configurations therefore share one entry, and the replayed vector
        is bit-identical to what the kernel would recompute.
        """
        # One flat tuple instead of nested per-flow tuples: this runs on
        # every solve request (hit or miss), and the flat encoding halves
        # the allocation + hash-dispatch cost.  The two count prefixes and
        # the -1 row terminators make the encoding parseable left-to-right
        # (no field can be -1: capacities/weights > 0, max_rate/indices
        # >= 0), hence injective over configurations.
        parts: list = [len(links_l), len(flows_l)]
        append = parts.append
        link_idx = {}
        for j, link in enumerate(links_l):
            link_idx[id(link)] = j
            append(link.capacity)
        flow_idx = {}
        for i, f in enumerate(flows_l):
            flow_idx[id(f)] = i
            append(f.weight)
            append(f.max_rate)
            for l in f.links:
                append(link_idx[id(l)])
            append(-1)
        for link in links_l:
            for f in link.flows:
                append(flow_idx[id(f)])
            append(-1)
        return tuple(parts)

    def _solve(self, flows: _t.Iterable[Flow], links: _t.Iterable[Link]) -> None:
        """Weighted max-min fair allocation via progressive filling.

        ``flows`` must be closed over ``links``: every flow crossing a link
        in ``links`` is in ``flows`` and vice versa.  Each flow's personal
        ``max_rate`` is honoured by treating it as a candidate bottleneck
        alongside its links.
        """
        t0 = _perf_counter()
        if self._memo_enabled:
            flows_l = list(flows)
            links_l = list(links)
            key = self._signature(flows_l, links_l)
            memo = self._memo
            rates = memo.get(key)
            if rates is not None:
                self.memo_hits += 1
                for f, r in zip(flows_l, rates):
                    f._rate = r
                self.solve_wall_s += _perf_counter() - t0
                return
            self.memo_misses += 1
            self._dispatch_solve(flows_l, links_l)
            if len(memo) >= _MEMO_MAX:
                del memo[next(iter(memo))]  # FIFO: oldest insertion first
            memo[key] = tuple(f._rate for f in flows_l)
            self.solve_wall_s += _perf_counter() - t0
            return
        self._dispatch_solve(flows, links)
        self.solve_wall_s += _perf_counter() - t0

    def _dispatch_solve(self, flows: _t.Iterable[Flow],
                        links: _t.Iterable[Link]) -> None:
        """Run the configured rate kernel (counted as one solve)."""
        self.solves += 1
        if self._vectorized and _np is not None:
            flows_l = list(flows)
            if len(flows_l) > 1:
                links_l = list(links)
                if len(flows_l) * len(links_l) >= _VEC_MIN_CELLS:
                    self._solve_vectorized(flows_l, links_l)
                    return
        self._solve_scalar(flows, links)

    def _solve_scalar(self, flows: _t.Iterable[Flow],
                      links: _t.Iterable[Link]) -> None:
        unfrozen = dict.fromkeys(flows)
        if len(unfrozen) == 1:
            # Lone-flow fast path (the common case for a solitary mover):
            # arithmetic-identical to one trip through the loop below.
            flow = next(iter(unfrozen))
            if flow.links:
                weight = flow.weight
                share = min(link.capacity / weight for link in flow.links)
                if flow.max_rate < share * weight:
                    flow._rate = flow.max_rate
                else:
                    flow._rate = share * weight
                return
        for flow in unfrozen:
            flow._rate = 0.0
        residual = {link: link.capacity for link in links}
        live_weight = {link: sum(f.weight for f in link.flows)
                       for link in residual}
        # Repeated subtraction leaves ~1e-16 residues in live_weight and
        # residual; a link whose flows all froze must read exactly empty,
        # or its ~0/~0 ratio poisons the next bottleneck computation with
        # an arbitrary (even negative) share.
        weight_floor = 1e-9 * max(
            (f.weight for f in unfrozen), default=1.0)

        while unfrozen:
            # Fair share per unit weight on every still-loaded link.
            bottleneck_share = math.inf
            for link, cap in residual.items():
                w = live_weight[link]
                if w > weight_floor:
                    bottleneck_share = min(bottleneck_share,
                                           max(cap, 0.0) / w)
            # Flows capped below the link share freeze at their cap first.
            capped = [f for f in unfrozen
                      if f.max_rate < bottleneck_share * f.weight]
            if capped:
                # Freeze the most-constrained capped flows, then re-iterate.
                tightest = min(f.max_rate / f.weight for f in capped)
                batch = [f for f in capped
                         if f.max_rate / f.weight <= tightest * (1 + 1e-12)]
                for flow in batch:
                    flow._rate = flow.max_rate
                    unfrozen.pop(flow, None)
                    for link in flow.links:
                        residual[link] -= flow._rate
                        live_weight[link] -= flow.weight
                continue
            if not math.isfinite(bottleneck_share):
                # Remaining flows traverse no loaded link: unconstrained
                # except by their own caps (handled above), so they can
                # only be flows with max_rate == inf and no links — which
                # start_flow forbids for nbytes > 0.  Freeze at cap anyway.
                for flow in unfrozen:
                    flow._rate = flow.max_rate if math.isfinite(flow.max_rate) else 0.0
                break
            # Freeze every flow whose bottleneck link is saturated at this share.
            saturated = [link for link, cap in residual.items()
                         if live_weight[link] > weight_floor
                         and max(cap, 0.0) / live_weight[link]
                         <= bottleneck_share * (1 + 1e-12) + 1e-18]
            froze_any = False
            for link in saturated:
                for flow in [f for f in link.flows if f in unfrozen]:
                    flow._rate = bottleneck_share * flow.weight
                    unfrozen.pop(flow, None)
                    froze_any = True
                    for l2 in flow.links:
                        residual[l2] -= flow._rate
                        live_weight[l2] -= flow.weight
            if not froze_any:  # pragma: no cover - numeric safety valve
                for flow in unfrozen:
                    flow._rate = bottleneck_share * flow.weight
                break

    def _solve_vectorized(self, flows_l: list[Flow],
                          links_l: list[Link]) -> None:
        """Progressive filling with the per-round reductions as numpy ops.

        Flows are array columns, links are rows.  Each round the bottleneck
        share, the capped-flow mask and the saturated-link mask come out of
        masked array arithmetic; freezing still walks the matched flows in
        the scalar kernel's exact order, subtracting each frozen flow from
        its links one at a time, so every float in ``residual`` /
        ``live_weight`` sees the same operation sequence as the scalar
        kernel and the resulting rates are bit-identical.  (Elementwise
        divides/multiplies over IEEE doubles match python float ops
        exactly, and min reductions are exact regardless of order; only
        *accumulation* order matters, which is why the subtractions stay
        sequential per flow.)
        """
        np = _np
        m = len(links_l)
        link_idx = {link: j for j, link in enumerate(links_l)}
        flow_idx = {f: i for i, f in enumerate(flows_l)}
        weights = [f.weight for f in flows_l]
        caps_v = np.array([f.max_rate for f in flows_l])
        weights_v = np.array(weights)
        # cap/weight ratios: each is the same lone IEEE division the scalar
        # kernel performs on demand, so precomputing cannot change bits
        with np.errstate(invalid="ignore"):  # inf/inf -> nan, never selected
            ratios_v = caps_v / weights_v
        cols = [[link_idx[link] for link in f.links] for f in flows_l]
        residual = np.array([link.capacity for link in links_l])
        live_weight = np.empty(m)
        for j, link in enumerate(links_l):
            acc = 0.0  # same left-to-right accumulation as the scalar sum()
            for f in link.flows:
                acc += f.weight
            live_weight[j] = acc
        for f in flows_l:
            f._rate = 0.0
        weight_floor = 1e-9 * max(weights)
        unfrozen = np.ones(len(flows_l), dtype=bool)
        n_left = len(flows_l)

        with np.errstate(divide="ignore"):
            while n_left:
                active = live_weight > weight_floor
                shares = np.full(m, math.inf)
                np.divide(np.maximum(residual, 0.0), live_weight,
                          out=shares, where=active)
                bottleneck_share = float(shares.min())
                capped_m = unfrozen & (caps_v < bottleneck_share * weights_v)
                if capped_m.any():
                    tightest = float(ratios_v[capped_m].min())
                    batch_m = capped_m & (ratios_v <= tightest * (1 + 1e-12))
                    # nonzero() ascends = flows_l order = the scalar
                    # kernel's insertion-ordered unfrozen iteration
                    for i in np.nonzero(batch_m)[0]:
                        f = flows_l[i]
                        rate = f.max_rate
                        f._rate = rate
                        w = f.weight
                        for j in cols[i]:
                            residual[j] -= rate
                            live_weight[j] -= w
                    unfrozen &= ~batch_m
                    n_left = int(unfrozen.sum())
                    continue
                if not math.isfinite(bottleneck_share):
                    for i in np.nonzero(unfrozen)[0]:
                        f = flows_l[i]
                        f._rate = (f.max_rate if math.isfinite(f.max_rate)
                                   else 0.0)
                    break
                # shares is still current: nothing froze since it was
                # computed, exactly like the scalar kernel's re-division
                sat_m = active & (
                    shares <= bottleneck_share * (1 + 1e-12) + 1e-18)
                froze_any = False
                # link-major freeze order over ascending link rows matches
                # the scalar walk over residual's insertion order; within a
                # link, flows freeze in link.flows insertion order
                for j in np.nonzero(sat_m)[0]:
                    for f in links_l[j].flows:
                        i = flow_idx[f]
                        if not unfrozen[i]:
                            continue
                        rate = bottleneck_share * f.weight
                        f._rate = rate
                        unfrozen[i] = False
                        froze_any = True
                        w = f.weight
                        for jj in cols[i]:
                            residual[jj] -= rate
                            live_weight[jj] -= w
                if not froze_any:  # pragma: no cover - numeric safety valve
                    for i in np.nonzero(unfrozen)[0]:
                        f = flows_l[i]
                        f._rate = bottleneck_share * f.weight
                    break
                n_left = int(unfrozen.sum())

    # -- completion scheduling --------------------------------------------------

    def _recompute_and_reschedule(self) -> None:
        """Eager (``solver="full"``) path: solve everything, re-arm the wake."""
        self._solve(self._flows, self._links.values())
        self._schedule_wake()

    def _schedule_wake(self) -> None:
        """(Re-)arm the next-completion wakeup from current rates.

        Two guard rails before any wake is scheduled:

        * a flow whose ``remaining`` already sits at or below
          ``_EPSILON_BYTES``, or whose ETA is so small that
          ``now + eta == now`` in float, is force-completed *now* — a wake
          scheduled for such a flow would fire at the same instant with
          ``dt == 0``, make no progress, and re-arm itself forever;
        * rate-zero flows contribute no horizon: when every flow is
          rate-zero (starved or ``max_rate == 0``) no wake is scheduled at
          all, and the flow parks until the next ``_mark_dirty`` re-solve
          changes its rate.
        """
        if self._wake_entry is not None:
            self.env.cancel(self._wake_entry)
            self._wake_entry = None
        now = self.env.now
        finished = [flow for flow in self._flows
                    if flow.remaining <= _EPSILON_BYTES
                    or (flow._rate > 0.0
                        and now + flow.remaining / flow._rate <= now)]
        if finished:
            touched: list[Link] = []
            for flow in sorted(finished, key=lambda f: f.fid):
                touched.extend(flow.links)
                self._complete(flow, now)
            if self._incremental:
                # the departures free capacity at this instant; the flush
                # re-solves and re-enters here with the survivors
                self._mark_dirty(touched)
            else:
                self._recompute_and_reschedule()
            return
        horizon = math.inf
        for flow in self._flows:
            if flow._rate > 0.0:
                candidate = flow.remaining / flow._rate
                if candidate < horizon:
                    horizon = candidate
        if not math.isfinite(horizon):
            return
        wake = Event(self.env, name="fluid.wake")
        wake._ok = True
        wake._value = None
        self._wake_entry = self.env.schedule(wake, delay=horizon)
        wake.add_callback(self._on_wake)

    def _on_wake(self, _event: Event) -> None:
        self._wake_entry = None
        self._advance()
        if self._incremental:
            if not self._dirty:
                # nothing actually finished (float slop): just re-arm
                self._schedule_wake()
            # else: _advance marked the departures dirty and scheduled a
            # same-instant flush, which batches with any follow-on arrivals
        else:
            self._recompute_and_reschedule()

    # -- instantaneous queries ------------------------------------------------

    def instantaneous_rate(self, flow: Flow) -> float:
        """Current fair-share rate of an active flow (B/s)."""
        return flow.rate

    def snapshot(self) -> dict[str, float]:
        """Per-link utilisation snapshot for tracing."""
        if self._dirty:
            self._ensure_current()
        return {name: link.utilization for name, link in self._links.items()}
