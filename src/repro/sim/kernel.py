"""The extracted simulation kernel: fused drain loop over plain structures.

This module is the interpreter-friendly core of the event loop.  It holds
exactly one entry point, :func:`drain`, which runs the environment's
pending-event structures dry.  The loop body touches only locals, lists,
dicts and scalar slots — no closures, no property layers, no per-event
method-object allocation — so a future mypyc/Cython pass has a single
self-contained function to compile.

What the kernel fuses (and why it is order-preserving):

* **Process resume.** The overwhelmingly common callback is "resume the
  generator that yielded this event".  The reference loop pays a bound
  method call into :meth:`Process._resume` per event; the kernel
  recognises a :class:`Process` waiter by type and drives
  ``generator.send`` directly, including the yield-target attach.  The
  sequence of ``send`` calls is identical to the reference loop's —
  fusion removes call frames, never reorders dispatch.
* **Handle reuse.** When the environment was built with
  ``reuse_handles=True``, the kernel publishes the currently-resuming
  process in ``env._current`` so that ``Store.get`` /
  ``Resource.request`` / ``Environment.timeout`` called *from inside
  that process's own turn* can recycle the process's private handle
  event instead of allocating a fresh one (see
  :attr:`Process._handle` for the ownership contract).  Queue contents
  and append positions are unchanged — only the object identity of the
  hot events differs — so processing order is untouched.
* **Live-entry accounting.** ``env._live`` normally counts every
  scheduled entry so that the step-driven ``run(until=...)`` loops and
  the sanitizer's conservation check can see the queue depth.  Inside a
  kernel drain nothing reads that counter — the drain is agenda/bucket
  driven — so on entry the kernel *converts* the NORMAL domain to an
  uncounted regime (subtracting its live entries in one walk) and every
  NORMAL-domain scheduling path skips the per-event ``_live += 1``
  while ``env._in_kernel`` is set.  URGENT entries stay counted: they
  are dispatched through :meth:`Environment._dispatch`, which
  decrements per event.  The ``finally`` clause converts back (a walk
  over whatever survived an exception or an observer handoff), so the
  counter is exact again whenever user code can observe it.

The loop body is deliberately duplicated per mode (``reuse_handles`` on
vs off): the reuse copy carries the ``env._current`` publication and the
persistent-handle attach, the default copy stays a line-for-line fusion
of :meth:`Process._resume`.  Keeping the hot loop branch-free beats
sharing the sixty lines.

Observers always win: when a race tracker / sanitizer is installed the
kernel immediately delegates to :meth:`Environment._drain_reference`,
whose per-event hook points are the observable contract (an observer
installed *mid-batch* takes over at the next batch boundary).  Both
loops process events in exactly ``(time, priority-band, scheduling
order)`` order, so flipping between them can never change a simulation
result — ``REPRO_SIM_KERNEL=0`` forces the reference loop for
byte-identity cross-checks.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessKilled, SimulationError
from repro.race import hooks as _rh
from repro.sim.events import PENDING

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

__all__ = ["drain"]

#: resolved lazily on first drain: process.py imports environment.py which
#: imports this module, so a top-level import would be circular
_Process: type | None = None
_HANDLE_NAME: str | None = None


def _live_normal_count(env: "Environment") -> int:
    """Live entries in the NORMAL domain (agenda + future buckets)."""
    n = sum(1 for e in env._agenda_normal if not e._cancelled)
    for bucket in env._buckets.values():
        n += sum(1 for e in bucket if not e._cancelled)
    return n


def drain(env: "Environment") -> None:
    """Run every pending event until the queue dries (kernel loop).

    Semantically identical to :meth:`Environment._drain_reference`; any
    behavioural change here must be mirrored there (and in ``step()`` /
    ``_dispatch``, the one-event reference versions).
    """
    global _Process, _HANDLE_NAME
    if _Process is None:
        from repro.sim.process import HANDLE_NAME, Process as _P
        _Process = _P
        _HANDLE_NAME = HANDLE_NAME
    # entry conversion: the NORMAL domain runs uncounted until exit
    env._live -= _live_normal_count(env)
    env._in_kernel = True
    try:
        if env._reuse:
            _drain_reuse(env)
        else:
            _drain_plain(env)
    finally:
        env._current = None
        env._in_kernel = False
        env._live += _live_normal_count(env)
    if _rh.tracker is not None:
        # an observer was installed (possibly mid-run by a test): its
        # per-event hooks are the contract, so the reference loop — fed
        # the reconverted, exact counters — takes over the remainder
        env._drain_reference()


def _drain_plain(env: "Environment") -> None:
    """Fused drain, default mode: no handle reuse, no ``_current``."""
    process_t = _Process
    pending = PENDING
    advance = env._advance_clock
    dispatch = env._dispatch
    unregister = env.unregister_process
    spare_u: list = []
    spare_n: list = []
    while True:
        if _rh.tracker is not None:
            return  # observer handoff (drain() reconverts, then delegates)
        batch = env._agenda_urgent
        if batch:
            # URGENT batches are rare (process bootstrap only): reference
            # dispatch, with failure splicing matching _drain_reference
            env._agenda_urgent = spare_u
            try:
                for event in batch:
                    if event._cancelled:
                        env._dead -= 1
                    else:
                        dispatch(event)
            except BaseException:
                env._agenda_urgent[:0] = batch[batch.index(event) + 1:]
                raise
            batch.clear()
            spare_u = batch
            continue
        batch = env._agenda_normal
        if batch:
            env._agenda_normal = spare_n
        elif advance():
            continue
        else:
            if env._live:  # pragma: no cover - conservation net
                raise SimulationError(
                    f"{env._live} live entr(ies) unreachable by "
                    "the run loop (queue conservation broken)")
            return
        u_agenda = env._agenda_urgent
        for event in batch:
            if event._cancelled:
                env._dead -= 1
                continue
            event._processed = True
            callback = event._cb0
            if type(callback) is process_t and event._ok:
                # -- fused resume: the callback is a process waiting on a
                # successful event.  This inlines Process._resume minus
                # the call frame; the except arms mirror it exactly.
                if callback._value is pending:
                    try:
                        nxt = callback._send(event._value)
                    except StopIteration as stop:
                        callback._target = None
                        unregister(callback)
                        callback.succeed(stop.value)
                    except ProcessKilled as killed:
                        callback._target = None
                        unregister(callback)
                        callback._ok = False
                        callback._value = killed
                        callback._defused = True
                        env.schedule(callback)
                    except BaseException as exc:
                        callback._target = None
                        unregister(callback)
                        callback.fail(exc)
                    else:
                        try:
                            callback._target = nxt
                            # inlined add_callback single-waiter branch
                            # (see Process._resume for why _cbs needs no
                            # check here)
                            if nxt._cb0 is None and not nxt._processed:
                                nxt._cb0 = callback
                            else:
                                nxt.add_callback(callback)
                        except AttributeError:
                            callback._target = None
                            raise SimulationError(
                                f"process {callback.name!r} yielded "
                                f"{nxt!r}; processes may only yield "
                                "Event instances") from None
                callbacks = event._cbs
                if callbacks is not None:
                    event._cbs = None
                    for extra in callbacks:
                        extra(event)
            else:
                # generic callbacks: flow completions, conditions, hooks
                if callback is not None:
                    callback(event)
                callbacks = event._cbs
                if callbacks is not None:
                    event._cbs = None
                    for extra in callbacks:
                        extra(event)
                if not event._ok and not event._defused:
                    # surface the unhandled failure; the rest of the
                    # batch goes back to the head of its agenda so a
                    # follow-up run() resumes exactly where this stopped
                    env._agenda_normal[:0] = batch[batch.index(event) + 1:]
                    raise event._value
            # URGENT arrivals (process bootstrap) preempt the rest of
            # this NORMAL batch, matching (time, priority, seq) order.
            if u_agenda:
                while u_agenda:
                    uev = u_agenda.pop(0)
                    if uev._cancelled:
                        env._dead -= 1
                    else:
                        dispatch(uev)
        batch.clear()
        spare_n = batch


def _drain_reuse(env: "Environment") -> None:
    """Fused drain, ``reuse_handles`` mode.

    Differences from :func:`_drain_plain`, both confined to the fused
    branch:

    * The resuming process is published in ``env._current`` so the event
      factories can recycle its private handle.
    * The resume guard is ``callback._target is event`` (instead of
      "process still alive"): a recycled handle keeps its owner in
      ``_cb0`` *permanently*, so a handle parked inside a condition
      (``yield env.all_of([store.get(), ...])``) still names the owner —
      the target check routes its firing to the condition's ``_cbs``
      callback instead of mis-resuming the owner.  ``_target`` is
      cleared on every process-death path, so the guard subsumes the
      alive check.
    * The attach skips the ``_cb0`` store when the yielded event already
      names this process — the steady state for recycled handles.
    * Handles are recognised by name identity (``event.name is
      HANDLE_NAME``) and get their own copy of the fused branch: a fired
      handle always carries its owner process in ``_cb0`` and never
      fails (the factories only ever succeed them), so the general
      branch's ``type``/``_ok`` checks are skipped, the extras scan is
      dropped (a directly-yielded handle cannot carry overflow
      callbacks), and when the factory recycled the handle *in place*
      (``nxt is event``, the steady state) the whole attach collapses to
      that one identity check — ``_target`` still names the handle and
      the builder re-armed ``_cb0``.
    """
    process_t = _Process
    handle_name = _HANDLE_NAME
    advance = env._advance_clock
    dispatch = env._dispatch
    unregister = env.unregister_process
    spare_u: list = []
    spare_n: list = []
    while True:
        if _rh.tracker is not None:
            env._current = None
            return  # observer handoff (drain() reconverts, then delegates)
        batch = env._agenda_urgent
        if batch:
            env._agenda_urgent = spare_u
            try:
                for event in batch:
                    if event._cancelled:
                        env._dead -= 1
                    else:
                        dispatch(event)
            except BaseException:
                env._agenda_urgent[:0] = batch[batch.index(event) + 1:]
                raise
            batch.clear()
            spare_u = batch
            continue
        batch = env._agenda_normal
        if batch:
            env._agenda_normal = spare_n
        elif advance():
            continue
        else:
            env._current = None
            if env._live:  # pragma: no cover - conservation net
                raise SimulationError(
                    f"{env._live} live entr(ies) unreachable by "
                    "the run loop (queue conservation broken)")
            return
        u_agenda = env._agenda_urgent
        for event in batch:
            if event._cancelled:
                env._dead -= 1
                continue
            event._processed = True
            callback = event._cb0
            if event.name is handle_name:
                # -- recycled handle: _cb0 always names its owner process
                # and the factories only ever succeed it, so the general
                # branch's type/_ok checks are statically true here.
                if callback._target is event:
                    env._current = callback
                    try:
                        nxt = callback._send(event._value)
                    except StopIteration as stop:
                        callback._target = None
                        unregister(callback)
                        callback.succeed(stop.value)
                    except ProcessKilled as killed:
                        callback._target = None
                        unregister(callback)
                        callback._ok = False
                        callback._value = killed
                        callback._defused = True
                        env.schedule(callback)
                    except BaseException as exc:
                        callback._target = None
                        unregister(callback)
                        callback.fail(exc)
                    else:
                        if nxt is not event:
                            try:
                                callback._target = nxt
                                cb0 = nxt._cb0
                                if cb0 is callback:
                                    if nxt._processed:
                                        nxt.add_callback(callback)
                                elif not nxt._processed:
                                    if cb0 is None:
                                        nxt._cb0 = callback
                                    else:
                                        nxt.add_callback(callback)
                                else:
                                    nxt.add_callback(callback)
                            except AttributeError:
                                callback._target = None
                                env._current = None
                                raise SimulationError(
                                    f"process {callback.name!r} yielded "
                                    f"{nxt!r}; processes may only yield "
                                    "Event instances") from None
                        # else: the factory recycled the handle in place —
                        # _target still names it and the builder re-armed
                        # _cb0/_processed, so the attach is a no-op.
                    # no extras scan: a *directly yielded* handle cannot
                    # carry overflow callbacks — only its owner ever sees
                    # the handle (ownership contract), and an owner that
                    # parks it in a condition yields the condition, which
                    # routes through the branch below.
                else:
                    # owner is waiting elsewhere (handle parked inside a
                    # condition) or died: deliver to overflow callbacks
                    callbacks = event._cbs
                    if callbacks is not None:
                        event._cbs = None
                        env._current = None
                        for extra in callbacks:
                            extra(event)
            elif type(callback) is process_t and event._ok:
                if callback._target is event:
                    env._current = callback
                    try:
                        nxt = callback._send(event._value)
                    except StopIteration as stop:
                        callback._target = None
                        unregister(callback)
                        callback.succeed(stop.value)
                    except ProcessKilled as killed:
                        callback._target = None
                        unregister(callback)
                        callback._ok = False
                        callback._value = killed
                        callback._defused = True
                        env.schedule(callback)
                    except BaseException as exc:
                        callback._target = None
                        unregister(callback)
                        callback.fail(exc)
                    else:
                        try:
                            callback._target = nxt
                            cb0 = nxt._cb0
                            if cb0 is callback:
                                # recycled handle: already attached (the
                                # builders store the owner in _cb0) unless
                                # the process re-yielded a stale processed
                                # event, which must re-fire immediately
                                if nxt._processed:
                                    nxt.add_callback(callback)
                            elif not nxt._processed:
                                if cb0 is None:
                                    nxt._cb0 = callback
                                else:
                                    nxt.add_callback(callback)
                            else:
                                nxt.add_callback(callback)
                        except AttributeError:
                            callback._target = None
                            env._current = None
                            raise SimulationError(
                                f"process {callback.name!r} yielded "
                                f"{nxt!r}; processes may only yield "
                                "Event instances") from None
                callbacks = event._cbs
                if callbacks is not None:
                    event._cbs = None
                    env._current = None
                    for extra in callbacks:
                        extra(event)
            else:
                # generic callbacks may call the event factories: clear
                # _current so they can never recycle a bystander's handle
                env._current = None
                if callback is not None:
                    callback(event)
                callbacks = event._cbs
                if callbacks is not None:
                    event._cbs = None
                    for extra in callbacks:
                        extra(event)
                if not event._ok and not event._defused:
                    env._agenda_normal[:0] = batch[batch.index(event) + 1:]
                    raise event._value
            if u_agenda:
                env._current = None
                while u_agenda:
                    uev = u_agenda.pop(0)
                    if uev._cancelled:
                        env._dead -= 1
                    else:
                        dispatch(uev)
        env._current = None
        batch.clear()
        spare_n = batch
