"""Named deterministic random streams.

Every stochastic choice in the library draws from a named stream derived
from a single root seed, so (a) runs are bit-reproducible and (b) adding a
new consumer of randomness does not perturb existing streams — essential
when comparing scheduling strategies, which must see identical workloads.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, salt: str) -> "RandomStreams":
        """A new independent family of streams (e.g. per experiment trial)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
