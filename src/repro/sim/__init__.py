"""Deterministic discrete-event simulation (DES) kernel.

This package is the substrate everything else runs on: a small,
simpy-flavoured event loop with generator-based processes, synchronisation
primitives, stores, and a max-min fair-share *fluid* bandwidth model used to
simulate memory-device contention.

The kernel is single-threaded and fully deterministic: events scheduled for
the same timestamp fire in scheduling order, and all randomness used anywhere
in the library flows through :class:`repro.sim.rand.RandomStreams`.
"""

from repro.sim.events import Event, AllOf, AnyOf
from repro.sim.environment import Environment
from repro.sim.process import Process
from repro.sim.sync import Lock, Semaphore, CondVar, Gate
from repro.sim.resources import Store, PriorityStore, Resource
from repro.sim.fluid import FluidNetwork, Link, Flow
from repro.sim.rand import RandomStreams

__all__ = [
    "Event", "AllOf", "AnyOf",
    "Environment", "Process",
    "Lock", "Semaphore", "CondVar", "Gate",
    "Store", "PriorityStore", "Resource",
    "FluidNetwork", "Link", "Flow",
    "RandomStreams",
]
