"""Simulated synchronisation primitives.

The paper's IO threads synchronise with worker threads through mutexes and
condition variables ("The IO thread waits conditionally for a signal...",
§IV-B).  These classes reproduce that protocol inside the DES: they cost no
simulated time by themselves (lock hold times come from the work done while
holding them) but impose the same ordering constraints, so serialisation
effects — e.g. 64 workers funnelling through a single IO thread — emerge the
same way they do on the metal.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

__all__ = ["Lock", "Semaphore", "CondVar", "Gate"]


class Lock:
    """A FIFO mutex.  ``yield lock.acquire()``; ``lock.release()``."""

    def __init__(self, env: Environment, name: str = "lock"):
        self.env = env
        self.name = name
        self._locked = False
        self._waiters: deque[Event] = deque()
        #: number of acquisitions that had to wait (contention metric)
        self.contended_acquires = 0
        self.total_acquires = 0

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        """Return an event that fires once the caller holds the lock."""
        ev = self.env.event(name=f"{self.name}.acquire")
        self.total_acquires += 1
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self.contended_acquires += 1
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, env: Environment, value: int = 1, name: str = "sem"):
        if value < 0:
            raise SimulationError(f"semaphore initial value must be >= 0, got {value}")
        self.env = env
        self.name = name
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = self.env.event(name=f"{self.name}.acquire")
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class CondVar:
    """A condition variable (no spurious wakeups; FIFO notify order).

    Unlike pthreads there is no associated mutex: the DES is cooperative, so
    the check-then-wait sequence is already atomic between yields.
    """

    def __init__(self, env: Environment, name: str = "cond"):
        self.env = env
        self.name = name
        self._waiters: deque[Event] = deque()
        self.total_waits = 0
        self.total_notifies = 0

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event that fires on the next matching notify."""
        ev = self.env.event(name=f"{self.name}.wait")
        self._waiters.append(ev)
        self.total_waits += 1
        return ev

    def notify(self, n: int = 1) -> int:
        """Wake up to ``n`` waiters; returns how many were woken."""
        woken = 0
        while self._waiters and woken < n:
            self._waiters.popleft().succeed()
            woken += 1
        self.total_notifies += woken
        return woken

    def notify_all(self) -> int:
        return self.notify(len(self._waiters))


class Gate:
    """A level-triggered signal: ``wait()`` passes immediately while open.

    This is the wake-up primitive the IO threads need: a worker may signal
    *before* the IO thread goes to sleep; with a plain condvar that signal
    would be lost.  A Gate latches: ``open()`` lets every current and future
    waiter through until ``close()``.  ``pulse()`` wakes current waiters
    without latching.
    """

    def __init__(self, env: Environment, is_open: bool = False, name: str = "gate"):
        self.env = env
        self.name = name
        self._open = is_open
        self._waiters: deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = self.env.event(name=f"{self.name}.wait")
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False

    def pulse(self) -> int:
        """Wake current waiters without leaving the gate open."""
        woken = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed()
        return woken
