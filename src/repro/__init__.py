"""repro — a memory-heterogeneity-aware runtime system, reproduced.

Reproduction of *A Memory Heterogeneity-Aware Runtime System for
Bandwidth-Sensitive HPC Applications* (Chandrasekar, Ni, Kale — IPDPSW
2017) as a deterministic discrete-event-simulated stack:

* :mod:`repro.sim` — DES kernel + max-min fair fluid bandwidth model;
* :mod:`repro.mem` — heterogeneous memory substrate (blocks, devices,
  allocators, the ``numa_alloc_onnode``/``memcpy``/``numa_free`` mover);
* :mod:`repro.machine` — KNL-class node models and STREAM;
* :mod:`repro.runtime` — Charm++-flavoured chares/entry-methods/converse;
* :mod:`repro.core` — the paper's contribution: the out-of-core prefetch
  and eviction scheduling strategies;
* :mod:`repro.apps` — Stencil3D, MatMul, STREAM, Jacobi2D workloads;
* :mod:`repro.trace` — Projections-style timelines;
* :mod:`repro.bench` — per-figure experiment harness.

Quickstart::

    from repro import OOCRuntimeBuilder, Stencil3D, StencilConfig
    from repro.units import GiB, MiB

    built = OOCRuntimeBuilder("multi-io", mcdram_capacity=GiB,
                              ddr_capacity=6 * GiB).build()
    app = Stencil3D(built, StencilConfig(total_bytes=2 * GiB,
                                         block_bytes=16 * MiB,
                                         iterations=5))
    print(app.run().total_time)
"""

from repro.config import (
    ClusterMode,
    DeviceConfig,
    MachineConfig,
    MemoryMode,
    knl_config,
    nvm_dram_config,
)
from repro.core.api import BuiltRuntime, OOCRuntimeBuilder
from repro.core import (
    OOCManager,
    OOCTask,
    HBMTracker,
    EvictionPolicy,
    OwnBlocksEviction,
    LRUEviction,
    NoEviction,
    STRATEGIES,
    make_strategy,
)
from repro.machine import build_knl, build_machine, run_stream
from repro.mem import AccessIntent, BlockState, DataBlock
from repro.runtime import Chare, ChareArray, CharmRuntime, NodeGroup, entry
from repro.sim import Environment
from repro.apps import (
    Jacobi2D,
    JacobiConfig,
    MatMul,
    MatMulConfig,
    Stencil3D,
    StencilConfig,
    StreamApp,
    StreamAppConfig,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config / machine
    "ClusterMode", "DeviceConfig", "MachineConfig", "MemoryMode",
    "knl_config", "nvm_dram_config", "build_knl", "build_machine",
    "run_stream",
    # core API
    "BuiltRuntime", "OOCRuntimeBuilder", "OOCManager", "OOCTask",
    "HBMTracker", "EvictionPolicy", "OwnBlocksEviction", "LRUEviction",
    "NoEviction", "STRATEGIES", "make_strategy",
    # memory & runtime
    "AccessIntent", "BlockState", "DataBlock",
    "Chare", "ChareArray", "CharmRuntime", "NodeGroup", "entry",
    "Environment",
    # applications
    "Stencil3D", "StencilConfig", "MatMul", "MatMulConfig",
    "StreamApp", "StreamAppConfig", "Jacobi2D", "JacobiConfig",
]
