"""Block registry: the runtime's metadata store over all ``CkIOHandle``s.

The paper stores and queries "metadata about the data block" at runtime
level; this registry is that store, plus the invariant checks the test
suite leans on (capacity accounting, refcount sanity, state consistency).
"""

from __future__ import annotations

import typing as _t

from repro.errors import BlockStateError
from repro.mem.block import BlockState, DataBlock
from repro.mem.topology import MemoryTopology

__all__ = ["BlockRegistry"]


class BlockRegistry:
    """All data blocks known to the runtime, with aggregate queries."""

    def __init__(self, topology: MemoryTopology):
        self.topology = topology
        self._blocks: dict[int, DataBlock] = {}

    # -- membership -----------------------------------------------------------

    def register(self, block: DataBlock) -> DataBlock:
        if block.bid in self._blocks:
            raise BlockStateError(f"block {block.name!r} registered twice")
        self._blocks[block.bid] = block
        return block

    def unregister(self, block: DataBlock) -> None:
        self._blocks.pop(block.bid, None)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> _t.Iterator[DataBlock]:
        return iter(self._blocks.values())

    def __contains__(self, block: DataBlock) -> bool:
        return block.bid in self._blocks

    def get(self, bid: int) -> DataBlock | None:
        return self._blocks.get(bid)

    # -- aggregate queries -------------------------------------------------------

    def blocks_in_state(self, state: BlockState) -> list[DataBlock]:
        return [b for b in self._blocks.values() if b.state is state]

    def bytes_in_state(self, state: BlockState) -> int:
        return sum(b.nbytes for b in self._blocks.values() if b.state is state)

    def resident_bytes(self, device_name: str) -> int:
        return sum(b.nbytes for b in self._blocks.values()
                   if b.device is not None and b.device.name == device_name
                   and b.allocation is not None and b.allocation.live)

    def evictable_blocks(self, state: BlockState = BlockState.INHBM) -> list[DataBlock]:
        """Blocks the paper would allow to be evicted: refcount 0, not pinned."""
        return [b for b in self._blocks.values()
                if b.state is state and not b.in_use and not b.pinned]

    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if any cross-cutting invariant is violated.

        * a block's registry-visible residency never exceeds its device's
          allocator accounting;
        * resident blocks have live allocations matching their device;
        * no refcount is negative (enforced in DataBlock, re-checked here).
        """
        per_device: dict[str, int] = {}
        for block in self._blocks.values():
            if block.refcount < 0:  # pragma: no cover - DataBlock forbids it
                raise BlockStateError(f"negative refcount on {block!r}")
            if block.allocation is not None and block.allocation.live:
                if block.device is None:
                    raise BlockStateError(
                        f"block {block.name!r} has live allocation but no device")
                if block.allocation.nbytes < block.nbytes:
                    raise BlockStateError(
                        f"block {block.name!r} allocation smaller than block")
                per_device[block.device.name] = (
                    per_device.get(block.device.name, 0) + block.allocation.nbytes)
            elif block.state is not BlockState.MOVING and block.device is not None:
                # A settled block must have live backing store.
                raise BlockStateError(
                    f"block {block.name!r} is {block.state.value} on "
                    f"{block.device.name} without a live allocation")
        for dev in self.topology.devices:
            used = per_device.get(dev.name, 0)
            if used > dev.allocator.used:
                raise BlockStateError(
                    f"registry accounts {used}B on {dev.name} but allocator "
                    f"says only {dev.allocator.used}B are in use")
