"""Data movement between memory devices (paper §IV-C).

The paper moves a block with three userspace steps::

    dst = numa_alloc_onnode(size, dst_node)   # create space at destination
    memcpy(dst, src, size)                    # copy
    numa_free(src)                            # free source

:class:`DataMover` reproduces that pipeline in simulated time:

* the allocation and free steps cost what the destination/source allocators
  say they cost (so the :class:`~repro.mem.allocator.PoolAllocator`
  optimisation is visible end to end);
* the ``memcpy`` is a fluid flow crossing the **source read port and the
  destination write port**, so its rate is the max-min share of the slower
  of the two — with 64 concurrent movers this reproduces the Figure 7 cost
  curves, including HBM→DDR4 being slightly costlier than DDR4→HBM (the
  DDR4 write port is the weakest link on KNL);
* a single mover thread is additionally capped at ``per_thread_copy_bw``
  (one core cannot saturate MCDRAM by itself).

``migrate_pages``-style movement is also modelled for the ablation the paper
cites ([11]: memcpy projected more scalable on KNL than migrate_pages).
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.errors import BlockStateError, CapacityError
from repro.lint import hooks as _hooks
from repro.metrics import hooks as _mx
from repro.mem.block import DataBlock
from repro.mem.device import MemoryDevice
from repro.mem.topology import MemoryTopology
from repro.sim.environment import Environment

__all__ = ["MoveResult", "DataMover"]

#: Linux base page size; migrate_pages works at this granularity.
PAGE_SIZE = 4096


@dataclasses.dataclass
class MoveResult:
    """Timing breakdown of one block move."""

    block: DataBlock
    src: str
    dst: str
    nbytes: int
    started_at: float
    finished_at: float
    alloc_time: float
    copy_time: float
    free_time: float

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def effective_bandwidth(self) -> float:
        return self.nbytes / self.copy_time if self.copy_time > 0 else math.inf


class DataMover:
    """Executes block moves over the fluid network.

    One mover instance is shared; each concurrent ``move`` generator acts as
    one "mover thread" with its own per-thread bandwidth cap.
    """

    def __init__(self, env: Environment, topology: MemoryTopology, *,
                 per_thread_copy_bw: float = 12e9,
                 migrate_pages_per_page_cost: float = 1.2e-7):
        self.env = env
        self.topology = topology
        #: cap on a single mover thread's copy rate (B/s)
        self.per_thread_copy_bw = per_thread_copy_bw
        #: syscall+kernel bookkeeping per page for migrate_pages mode
        self.migrate_pages_per_page_cost = migrate_pages_per_page_cost
        self.moves_completed = 0
        self.bytes_moved = 0
        self.results: list[MoveResult] = []
        #: keep full per-move results only when tracing asks for them
        self.keep_results = False

    # -- memcpy-style move (the paper's mechanism) -----------------------------

    def move(self, block: DataBlock, dst: MemoryDevice,
             *, weight: float = 1.0) -> _t.Generator:
        """Move ``block`` to ``dst``; yields inside a simulated process.

        Raises :class:`CapacityError` immediately (before any simulated time
        passes) if ``dst`` cannot hold the block — callers are expected to
        check/track capacity, as the paper's IO thread does.
        """
        src = block.device
        if src is None or block.allocation is None or not block.allocation.live:
            raise BlockStateError(f"block {block.name!r} is not resident anywhere")
        if src is dst:
            raise BlockStateError(
                f"block {block.name!r} is already on {dst.name}")
        if block.moving:
            raise BlockStateError(f"block {block.name!r} is already moving")
        if not dst.can_allocate(block.nbytes):
            raise CapacityError(
                f"{dst.name} cannot hold block {block.name!r} "
                f"({block.nbytes}B > {dst.available}B free)",
                requested=block.nbytes, available=dst.available)

        started = self.env.now
        if _hooks.observer is not None:
            _hooks.observer.on_move_start(block, src, dst)
        if _mx.registry is not None:
            _mx.registry.gauge("repro_moves_inflight",
                               "block moves currently in flight").inc()
        block.begin_move()
        src_alloc = block.allocation

        # Step 1: create space in destination memory (numa_alloc_onnode).
        alloc_cost = dst.allocator.alloc_cost(block.nbytes)
        yield self.env.timeout(alloc_cost)
        try:
            dst_alloc = dst.allocate(block.nbytes)
        except CapacityError:
            # Fragmentation: total free space sufficed but no contiguous
            # range did.  Restore the block (it never left the source) and
            # let the scheduler treat this as "no space".
            block.settle(src, self.topology.state_for(src))
            if _mx.registry is not None:
                _mx.registry.gauge("repro_moves_inflight").dec()
                _mx.registry.counter(
                    "repro_move_rollbacks_total",
                    "moves rolled back on fragmented destination",
                    src=src.name, dst=dst.name).inc()
            raise
        after_alloc = self.env.now

        # Step 2: memcpy — one flow across src.read + dst.write.
        if block.nbytes > 0:
            latency = src.latency + dst.latency
            if latency > 0:
                yield self.env.timeout(latency)
            flow = dst.network.start_flow(
                block.nbytes, [src.read_link, dst.write_link],
                weight=weight, max_rate=self.per_thread_copy_bw)
            src.bytes_read += block.nbytes
            dst.bytes_written += block.nbytes
            yield flow.done
        after_copy = self.env.now

        # Step 3: free the source buffer (numa_free).
        free_cost = src.allocator.free_cost(block.nbytes)
        if free_cost > 0:
            yield self.env.timeout(free_cost)
        src.free(src_alloc)

        block.allocation = dst_alloc
        block.settle(dst, self.topology.state_for(dst))
        block.bytes_moved += block.nbytes
        if _hooks.observer is not None:
            _hooks.observer.on_move_end(block, src, dst)

        self.moves_completed += 1
        self.bytes_moved += block.nbytes
        if _mx.registry is not None:
            self._note_move(src.name, dst.name, block.nbytes,
                            self.env.now - started)
        result = MoveResult(
            block=block, src=src.name, dst=dst.name, nbytes=block.nbytes,
            started_at=started, finished_at=self.env.now,
            alloc_time=after_alloc - started,
            copy_time=after_copy - after_alloc,
            free_time=self.env.now - after_copy)
        if self.keep_results:
            self.results.append(result)
        return result

    def _note_move(self, src: str, dst: str, nbytes: int,
                   latency: float) -> None:
        """Record one completed move with the active metrics registry."""
        reg = _mx.registry
        reg.gauge("repro_moves_inflight").dec()
        reg.counter("repro_moves_total", "completed block moves",
                    src=src, dst=dst).inc()
        reg.counter("repro_moved_bytes_total",
                    "bytes moved per direction", src=src, dst=dst
                    ).inc(nbytes)
        reg.histogram("repro_move_latency_seconds",
                      "end-to-end alloc+copy+free move latency",
                      src=src, dst=dst).observe(latency)

    # -- migrate_pages-style move (modelled alternative) -------------------------

    def move_migrate_pages(self, block: DataBlock, dst: MemoryDevice,
                           *, weight: float = 1.0) -> _t.Generator:
        """Kernel page-migration variant, for the §IV-C comparison.

        Pages move at the same fluid rate as memcpy but pay a per-page
        kernel bookkeeping cost, and sizes round up to whole pages — the
        padding/conversion the paper calls out as a reason to prefer memcpy.
        """
        src = block.device
        if src is None or block.allocation is None or not block.allocation.live:
            raise BlockStateError(f"block {block.name!r} is not resident anywhere")
        if src is dst:
            raise BlockStateError(f"block {block.name!r} is already on {dst.name}")
        if block.moving:
            raise BlockStateError(f"block {block.name!r} is already moving")
        pages = max(1, math.ceil(block.nbytes / PAGE_SIZE))
        padded = pages * PAGE_SIZE
        if not dst.can_allocate(padded):
            raise CapacityError(
                f"{dst.name} cannot hold {padded}B (page-padded)",
                requested=padded, available=dst.available)

        started = self.env.now
        if _hooks.observer is not None:
            _hooks.observer.on_move_start(block, src, dst)
        if _mx.registry is not None:
            _mx.registry.gauge("repro_moves_inflight",
                               "block moves currently in flight").inc()
        block.begin_move()
        src_alloc = block.allocation
        try:
            dst_alloc = dst.allocate(padded)
        except CapacityError:
            # Fragmentation: total free space sufficed but no contiguous
            # range did.  Restore the block (it never left the source) so
            # it is not stuck MOVING, matching `move`'s rollback.
            block.settle(src, self.topology.state_for(src))
            if _mx.registry is not None:
                _mx.registry.gauge("repro_moves_inflight").dec()
                _mx.registry.counter(
                    "repro_move_rollbacks_total",
                    "moves rolled back on fragmented destination",
                    src=src.name, dst=dst.name).inc()
            raise

        # Kernel bookkeeping scales with page count, serial per mover.
        yield self.env.timeout(pages * self.migrate_pages_per_page_cost)
        flow = dst.network.start_flow(padded, [src.read_link, dst.write_link],
                                      weight=weight,
                                      max_rate=self.per_thread_copy_bw)
        src.bytes_read += padded
        dst.bytes_written += padded
        yield flow.done
        src.free(src_alloc)
        block.allocation = dst_alloc
        block.settle(dst, self.topology.state_for(dst))
        block.bytes_moved += padded
        if _hooks.observer is not None:
            _hooks.observer.on_move_end(block, src, dst)

        self.moves_completed += 1
        self.bytes_moved += padded
        if _mx.registry is not None:
            self._note_move(src.name, dst.name, padded,
                            self.env.now - started)
        result = MoveResult(
            block=block, src=src.name, dst=dst.name, nbytes=padded,
            started_at=started, finished_at=self.env.now,
            alloc_time=0.0, copy_time=self.env.now - started, free_time=0.0)
        if self.keep_results:
            self.results.append(result)
        return result
