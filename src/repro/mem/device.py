"""Memory devices: capacity + bandwidth ports into the fluid network.

A device owns

* an :class:`~repro.mem.allocator.Allocator` for its capacity, and
* two fluid links, ``<name>.read`` and ``<name>.write``, whose capacities
  are the device's peak read/write bandwidths.

Traffic against the device is expressed as flows on those links, so any mix
of kernels, prefetches and evictions contends for bandwidth under max-min
fairness automatically.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import ConfigError
from repro.sim.fluid import Flow, FluidNetwork, Link
from repro.units import format_bandwidth, format_size

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mem.allocator import Allocation, Allocator

__all__ = ["MemoryDevice"]


class MemoryDevice:
    """One NUMA memory node (e.g. MCDRAM or DDR4)."""

    def __init__(self, name: str, numa_node: int, capacity: int,
                 read_bandwidth: float, write_bandwidth: float,
                 latency: float, allocator: "Allocator",
                 network: FluidNetwork):
        if capacity <= 0:
            raise ConfigError(f"device {name!r}: capacity must be > 0")
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ConfigError(f"device {name!r}: bandwidths must be > 0")
        if latency < 0:
            raise ConfigError(f"device {name!r}: latency must be >= 0")
        self.name = name
        self.numa_node = numa_node
        self.capacity = int(capacity)
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        #: access latency charged once per transfer, seconds
        self.latency = float(latency)
        self.allocator = allocator
        self.network = network
        self.read_link: Link = network.add_link(f"{name}.read", read_bandwidth)
        self.write_link: Link = network.add_link(f"{name}.write", write_bandwidth)
        #: cumulative traffic counters (bytes)
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- capacity ---------------------------------------------------------------

    @property
    def used(self) -> int:
        return self.allocator.used

    @property
    def available(self) -> int:
        return self.allocator.available

    def can_allocate(self, nbytes: int) -> bool:
        return self.allocator.can_allocate(nbytes)

    def allocate(self, nbytes: int) -> "Allocation":
        return self.allocator.allocate(nbytes)

    def free(self, allocation: "Allocation") -> None:
        self.allocator.free(allocation)

    # -- traffic ------------------------------------------------------------------

    def read_flow(self, nbytes: float, *, weight: float = 1.0,
                  max_rate: float = math.inf) -> Flow:
        """Start a read stream against this device."""
        self.bytes_read += nbytes
        return self.network.start_flow(nbytes, [self.read_link],
                                       weight=weight, max_rate=max_rate)

    def write_flow(self, nbytes: float, *, weight: float = 1.0,
                   max_rate: float = math.inf) -> Flow:
        """Start a write stream against this device."""
        self.bytes_written += nbytes
        return self.network.start_flow(nbytes, [self.write_link],
                                       weight=weight, max_rate=max_rate)

    def mixed_flow(self, read_bytes: float, write_bytes: float, *,
                   weight: float = 1.0, max_rate: float = math.inf) -> Flow:
        """A combined read+write stream (e.g. a kernel's traffic).

        Modelled as a single flow crossing both ports, sized by the total
        bytes; this keeps one completion event per kernel while loading both
        directions.  For asymmetric mixes the dominant direction dictates the
        link set.
        """
        total = read_bytes + write_bytes
        links: list[Link] = []
        if read_bytes > 0:
            links.append(self.read_link)
        if write_bytes > 0:
            links.append(self.write_link)
        self.bytes_read += read_bytes
        self.bytes_written += write_bytes
        return self.network.start_flow(total, links, weight=weight,
                                       max_rate=max_rate)

    def __repr__(self) -> str:
        return (f"<MemoryDevice {self.name} node={self.numa_node} "
                f"{format_size(self.used)}/{format_size(self.capacity)} "
                f"r={format_bandwidth(self.read_bandwidth)} "
                f"w={format_bandwidth(self.write_bandwidth)}>")
