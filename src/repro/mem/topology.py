"""The NUMA view of a node: ``numa_alloc_onnode`` and friends.

The paper's data movement (§IV-C) is written against libnuma: "HBM is
exposed to the userspace as Memory node 1 and DDR4 is exposed as Memory
node 0."  :class:`MemoryTopology` reproduces that interface over simulated
devices, including the ``--preferred``-style spill placement used by the
Naive baseline.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CapacityError, ConfigError
from repro.mem.allocator import Allocation
from repro.mem.block import BlockState, DataBlock
from repro.mem.device import MemoryDevice

__all__ = ["MemoryTopology"]

#: Conventional KNL numa node numbering (paper §IV-C).
DDR_NODE = 0
HBM_NODE = 1


class MemoryTopology:
    """All memory devices of a node, addressable by NUMA node id."""

    def __init__(self, devices: _t.Iterable[MemoryDevice]):
        self._by_node: dict[int, MemoryDevice] = {}
        self._by_name: dict[str, MemoryDevice] = {}
        for dev in devices:
            if dev.numa_node in self._by_node:
                raise ConfigError(f"duplicate numa node {dev.numa_node}")
            if dev.name in self._by_name:
                raise ConfigError(f"duplicate device name {dev.name!r}")
            self._by_node[dev.numa_node] = dev
            self._by_name[dev.name] = dev
        if not self._by_node:
            raise ConfigError("a topology needs at least one device")

    # -- lookup ------------------------------------------------------------------

    def node(self, numa_node: int) -> MemoryDevice:
        try:
            return self._by_node[numa_node]
        except KeyError:
            raise ConfigError(f"unknown numa node {numa_node}") from None

    def device(self, name: str) -> MemoryDevice:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"unknown device {name!r}") from None

    @property
    def devices(self) -> tuple[MemoryDevice, ...]:
        return tuple(self._by_node[k] for k in sorted(self._by_node))

    @property
    def hbm(self) -> MemoryDevice:
        """The high-bandwidth device (node 1 by KNL convention)."""
        return self.node(HBM_NODE)

    @property
    def ddr(self) -> MemoryDevice:
        """The high-capacity device (node 0 by KNL convention)."""
        return self.node(DDR_NODE)

    def state_for(self, device: MemoryDevice) -> BlockState:
        """Paper block state corresponding to residency on ``device``."""
        return BlockState.INHBM if device.numa_node == HBM_NODE else BlockState.INDDR

    # -- libnuma analogs ------------------------------------------------------------

    def numa_alloc_onnode(self, nbytes: int, numa_node: int) -> Allocation:
        """``void* numa_alloc_onnode(size_t size, int node)`` analog."""
        return self.node(numa_node).allocate(nbytes)

    def numa_free(self, allocation: Allocation, numa_node: int) -> None:
        """``numa_free`` analog."""
        self.node(numa_node).free(allocation)

    # -- block placement -----------------------------------------------------------

    def place_block(self, block: DataBlock, device: MemoryDevice) -> None:
        """Bind a block's initial residency (no data movement, just space)."""
        if block.allocation is not None and block.allocation.live:
            raise ConfigError(f"block {block.name!r} is already placed")
        block.allocation = device.allocate(block.nbytes)
        block.settle(device, self.state_for(device))

    def place_preferred(self, block: DataBlock,
                        preferred: MemoryDevice,
                        fallback: MemoryDevice) -> MemoryDevice:
        """``numactl --preferred``-style placement: spill on exhaustion.

        This is the Naive baseline's allocation rule (§IV-B): fill HBM to
        capacity, put the overflow on DDR4.
        """
        if preferred.can_allocate(block.nbytes):
            self.place_block(block, preferred)
            return preferred
        self.place_block(block, fallback)
        return fallback

    def release_block(self, block: DataBlock) -> None:
        """Free a block's space (it keeps its last state for inspection)."""
        if block.allocation is None or not block.allocation.live:
            raise CapacityError(f"block {block.name!r} has no live allocation")
        assert block.device is not None
        block.device.free(block.allocation)
        block.allocation = None

    # -- accounting -------------------------------------------------------------

    def usage(self) -> dict[str, int]:
        """Bytes in use per device name."""
        return {dev.name: dev.used for dev in self.devices}

    def __repr__(self) -> str:
        devs = ", ".join(f"{n}:{d.name}" for n, d in sorted(self._by_node.items()))
        return f"<MemoryTopology {devs}>"
