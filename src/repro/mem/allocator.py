"""Allocators for simulated memory devices.

The paper moves data with ``numa_alloc_onnode`` + ``memcpy`` + ``numa_free``
and notes (§IV-C) that "the creating of space in destination memory could be
avoided if we maintain a memory pool in each memory type. We plan to perform
this optimization in the future".  We implement both ends of that trade-off:

* :class:`FreeListAllocator` — first-fit with coalescing; every allocation
  pays ``alloc_cost`` seconds (mmap/page-table work of ``numa_alloc_onnode``);
* :class:`PoolAllocator` — size-class pooling; reuse is (nearly) free, which
  is exactly the paper's proposed optimisation and an ablation bench target;
* :class:`BumpAllocator` — trivial arena for tests and static placements.

Allocators only track *space*; the time cost is charged by the
:class:`~repro.mem.mover.DataMover`, which asks ``alloc_cost(nbytes)``.
"""

from __future__ import annotations

import typing as _t
from bisect import insort
from itertools import count

from repro.errors import AllocationError, CapacityError
from repro.lint import hooks as _hooks
from repro.metrics import hooks as _mx

__all__ = ["Allocation", "Allocator", "BumpAllocator", "FreeListAllocator",
           "PagedAllocator", "PoolAllocator"]

#: Default per-call allocation overhead, seconds. Calibrated to the scale of
#: Linux mmap+first-touch costs for multi-GB buffers on KNL-class hardware.
DEFAULT_ALLOC_BASE = 5e-6
#: Additional allocation overhead per byte (page-table population).
DEFAULT_ALLOC_PER_BYTE = 2.5e-12  # ~2.5 us per GB... dominated by base for small
#: Default per-call free overhead, seconds.
DEFAULT_FREE_BASE = 2e-6

_alloc_ids = count()


class Allocation:
    """A live reservation of ``nbytes`` at ``offset`` on a device."""

    __slots__ = ("aid", "offset", "nbytes", "allocator", "live")

    def __init__(self, offset: int, nbytes: int, allocator: "Allocator"):
        self.aid = next(_alloc_ids)
        self.offset = offset
        self.nbytes = nbytes
        self.allocator = allocator
        self.live = True

    def __repr__(self) -> str:
        status = "live" if self.live else "freed"
        return f"<Allocation #{self.aid} off={self.offset} {self.nbytes}B {status}>"


class Allocator:
    """Interface + shared accounting for device allocators."""

    def __init__(self, capacity: int, *,
                 alloc_base: float = DEFAULT_ALLOC_BASE,
                 alloc_per_byte: float = DEFAULT_ALLOC_PER_BYTE,
                 free_base: float = DEFAULT_FREE_BASE,
                 name: str = "allocator"):
        if capacity <= 0:
            raise AllocationError(f"capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self.alloc_base = alloc_base
        self.alloc_per_byte = alloc_per_byte
        self.free_base = free_base
        self.used = 0
        self.peak_used = 0
        self.alloc_calls = 0
        self.free_calls = 0
        self.failed_allocs = 0

    # -- interface ------------------------------------------------------------

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def can_allocate(self, nbytes: int) -> bool:
        return nbytes <= self.available

    def allocate(self, nbytes: int) -> Allocation:
        raise NotImplementedError

    def free(self, allocation: Allocation) -> None:
        raise NotImplementedError

    # -- time cost model ----------------------------------------------------

    def alloc_cost(self, nbytes: int) -> float:
        """Simulated seconds an allocation of ``nbytes`` costs."""
        return self.alloc_base + self.alloc_per_byte * nbytes

    def free_cost(self, nbytes: int) -> float:
        """Simulated seconds a free costs."""
        return self.free_base

    # -- shared bookkeeping ------------------------------------------------

    def _take(self, nbytes: int) -> None:
        if nbytes > self.available:
            self.failed_allocs += 1
            if _mx.registry is not None:
                _mx.registry.counter(
                    "repro_alloc_failures_total",
                    "allocations rejected for lack of capacity",
                    device=self.name).inc()
            raise CapacityError(
                f"{self.name}: cannot allocate {nbytes}B "
                f"({self.available}B of {self.capacity}B available)",
                requested=nbytes, available=self.available)
        self.used += nbytes
        self.peak_used = max(self.peak_used, self.used)
        self.alloc_calls += 1
        if _hooks.observer is not None:
            _hooks.observer.on_alloc(self, nbytes)

    def _give_back(self, allocation: Allocation) -> None:
        if _hooks.observer is not None:
            _hooks.observer.on_free(self, allocation)
        if not allocation.live:
            raise AllocationError(f"double free of {allocation!r}")
        allocation.live = False
        self.used -= allocation.nbytes
        self.free_calls += 1


class BumpAllocator(Allocator):
    """Monotonic arena: frees return capacity but never reuse offsets.

    Suitable for static placements (the Naive/DDR4-only/HBM-only baselines)
    where nothing is ever moved.
    """

    def __init__(self, capacity: int, **kwargs: _t.Any):
        super().__init__(capacity, **kwargs)
        self._cursor = 0

    def allocate(self, nbytes: int) -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be > 0")
        self._take(nbytes)
        alloc = Allocation(self._cursor, nbytes, self)
        self._cursor += nbytes
        return alloc

    def free(self, allocation: Allocation) -> None:
        self._give_back(allocation)


class PagedAllocator(Allocator):
    """Page-backed allocation: capacity is the only constraint.

    ``numa_alloc_onnode`` hands out *virtual* ranges backed by any free
    physical pages, so a multi-GB allocation never fails for lack of
    contiguity — only for lack of capacity.  This is the default device
    allocator; :class:`FreeListAllocator` models a contiguous arena for
    the fragmentation ablation.
    """

    def __init__(self, capacity: int, **kwargs: _t.Any):
        super().__init__(capacity, **kwargs)
        self._cursor = 0  # virtual addresses are abundant; never reused

    def allocate(self, nbytes: int) -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be > 0")
        self._take(nbytes)
        alloc = Allocation(self._cursor, nbytes, self)
        self._cursor += nbytes
        return alloc

    def free(self, allocation: Allocation) -> None:
        self._give_back(allocation)


class FreeListAllocator(Allocator):
    """First-fit free-list with coalescing of adjacent free ranges.

    This is the ``numa_alloc_onnode``/``numa_free`` analog: every call pays
    the full allocation cost.
    """

    def __init__(self, capacity: int, **kwargs: _t.Any):
        super().__init__(capacity, **kwargs)
        # Sorted list of (offset, length) free ranges.
        self._free: list[tuple[int, int]] = [(0, self.capacity)]

    def allocate(self, nbytes: int) -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be > 0")
        for i, (off, length) in enumerate(self._free):
            if length >= nbytes:
                self._take(nbytes)
                if length == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, length - nbytes)
                return Allocation(off, nbytes, self)
        self.failed_allocs += 1
        if _mx.registry is not None:
            _mx.registry.counter(
                "repro_alloc_failures_total",
                "allocations rejected for lack of capacity",
                device=self.name).inc()
        raise CapacityError(
            f"{self.name}: no free range of {nbytes}B "
            f"(free total {self.available}B, fragmented)",
            requested=nbytes, available=self.available)

    def free(self, allocation: Allocation) -> None:
        self._give_back(allocation)
        insort(self._free, (allocation.offset, allocation.nbytes))
        self._coalesce()

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for off, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                prev_off, prev_len = merged[-1]
                merged[-1] = (prev_off, prev_len + length)
            else:
                merged.append((off, length))
        self._free = merged

    @property
    def fragment_count(self) -> int:
        """Number of disjoint free ranges (fragmentation metric)."""
        return len(self._free)

    @property
    def largest_free_range(self) -> int:
        return max((length for _, length in self._free), default=0)


class PoolAllocator(Allocator):
    """Size-class pooling: frees keep the space; same-size allocs are cheap.

    Models the paper's proposed optimisation.  A freed chunk goes back to its
    size-class pool; a later allocation of the same class reuses it paying
    only ``pool_hit_cost``.  Misses fall through to an inner free-list.
    """

    def __init__(self, capacity: int, *, pool_hit_cost: float = 5e-8,
                 **kwargs: _t.Any):
        super().__init__(capacity, **kwargs)
        self.pool_hit_cost = pool_hit_cost
        self._inner = FreeListAllocator(capacity, name=f"{self.name}.inner")
        self._pools: dict[int, list[Allocation]] = {}
        self.pool_hits = 0
        self.pool_misses = 0
        self._last_was_hit = False

    @staticmethod
    def size_class(nbytes: int) -> int:
        """Round up to the next power-of-two size class (min 4 KiB)."""
        cls = 4096
        while cls < nbytes:
            cls <<= 1
        return cls

    def allocate(self, nbytes: int) -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be > 0")
        cls = self.size_class(nbytes)
        pool = self._pools.get(cls)
        if pool:
            inner = pool.pop()
            self.pool_hits += 1
            self._last_was_hit = True
            self._take(cls)
            alloc = Allocation(inner.offset, cls, self)
            # Stash the inner allocation so free() can return it to the pool.
            alloc_inner_map[alloc.aid] = inner
            return alloc
        self.pool_misses += 1
        self._last_was_hit = False
        try:
            inner = self._inner.allocate(cls)
        except CapacityError:
            self.failed_allocs += 1
            raise
        self._take(cls)
        alloc = Allocation(inner.offset, cls, self)
        alloc_inner_map[alloc.aid] = inner
        return alloc

    def free(self, allocation: Allocation) -> None:
        self._give_back(allocation)
        inner = alloc_inner_map.pop(allocation.aid)
        self._pools.setdefault(inner.nbytes, []).append(inner)

    def alloc_cost(self, nbytes: int) -> float:
        # Optimistic: ask whether the *next* allocation would hit the pool.
        cls = self.size_class(nbytes)
        if self._pools.get(cls):
            return self.pool_hit_cost
        return super().alloc_cost(cls)

    def free_cost(self, nbytes: int) -> float:
        return self.pool_hit_cost  # just a list push

    def drain_pools(self) -> int:
        """Release pooled chunks back to the inner allocator; returns bytes."""
        drained = 0
        for pool in self._pools.values():
            for inner in pool:
                self._inner.free(inner)
                drained += inner.nbytes
        self._pools.clear()
        return drained


#: PoolAllocator bookkeeping: maps outer allocation ids to inner free-list
#: allocations.  Module-level so Allocation stays slot-only and cheap.
alloc_inner_map: dict[int, Allocation] = {}
