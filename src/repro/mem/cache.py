"""KNL *cache mode* model: MCDRAM as a direct-mapped cache of DDR4.

The paper's motivation (§I, §III-B): "caching could result in increased
latency from conflict misses or capacity misses", which is why it targets
flat mode.  The paper defers a quantitative flat-vs-cache comparison to
future work; we implement the model so the ablation bench can perform it.

In cache mode the 16 GB MCDRAM is a direct-mapped, memory-side cache of
DDR4 with placement by physical address.  Two analytic components drive the
miss rate for an iteratively-swept working set of ``W`` bytes against a
cache of ``C`` bytes:

* **capacity misses** — a cyclic sweep of ``W > C`` thrashes a fraction
  ``(W - C) / W`` of its accesses at minimum;
* **conflict misses** — with OS pages scattered pseudo-randomly over page
  frames, distinct hot pages collide in the same cache set even when
  ``W <= C``.  For ``n`` resident lines over ``s`` sets the expected
  fraction of lines sharing a set is ``1 - (s/n)(1 - (1 - 1/s)^n)``, the
  classic occupancy result; colliding lines ping-pong every iteration.

Both a closed-form estimate and a small Monte-Carlo set-mapping simulation
(for validating the closed form in tests) are provided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["DirectMappedCache"]


class DirectMappedCache:
    """Analytic direct-mapped memory-side cache."""

    def __init__(self, capacity: int, line_size: int = 64, *,
                 hit_bandwidth: float = 380e9,
                 miss_bandwidth: float = 85e9,
                 miss_latency_penalty: float = 1.0e-9,
                 page_coloring_quality: float = 0.7):
        if capacity <= 0 or line_size <= 0:
            raise ConfigError("cache capacity and line size must be > 0")
        if capacity % line_size:
            raise ConfigError("cache capacity must be a multiple of line size")
        self.capacity = int(capacity)
        self.line_size = int(line_size)
        self.sets = self.capacity // self.line_size
        #: bandwidth served on hit (MCDRAM) and miss (DDR4 fill), B/s
        self.hit_bandwidth = float(hit_bandwidth)
        self.miss_bandwidth = float(miss_bandwidth)
        #: extra *effective* occupancy per missing line, seconds.  Misses
        #: overlap heavily in a memory-side cache, so this is the pipelined
        #: per-line cost (~1 ns), not the raw fill round-trip latency.
        self.miss_latency_penalty = float(miss_latency_penalty)
        if not 0.0 <= page_coloring_quality <= 1.0:
            raise ConfigError("page_coloring_quality must be in [0, 1]")
        #: fraction of random-placement conflicts the OS avoids by sorting
        #: free pages by cache colour (KNL's kernel "zonesort").  0 models
        #: fully fragmented physical memory; 1 models perfect colouring
        #: (contiguous regions never self-conflict in an address-indexed
        #: direct-mapped cache).
        self.page_coloring_quality = float(page_coloring_quality)

    # -- miss-rate model -----------------------------------------------------

    def conflict_fraction(self, working_set: int) -> float:
        """Expected fraction of hot lines that share a set with another.

        Occupancy model: throwing ``n`` balls into ``s`` bins, the expected
        number of balls alone in their bin is ``n * (1 - 1/s)^(n-1)``.
        """
        n = min(working_set, self.capacity) // self.line_size
        if n <= 1:
            return 0.0
        s = self.sets
        alone = (1.0 - 1.0 / s) ** (n - 1)
        return (1.0 - alone) * (1.0 - self.page_coloring_quality)

    def miss_rate(self, working_set: int, *, reuse_sweeps: int = 20) -> float:
        """Steady-state miss rate of a cyclic sweep over ``working_set``.

        ``reuse_sweeps`` amortises the cold-start sweep; the paper's
        workloads run 20 iterations.
        """
        if working_set <= 0:
            return 0.0
        w = float(working_set)
        c = float(self.capacity)
        if w <= c:
            # Pure conflicts: a colliding pair alternately evicts itself
            # each sweep, so every colliding line misses once per sweep.
            steady = self.conflict_fraction(working_set)
        else:
            # Cyclic sweep larger than the cache: LRU-like thrash. For a
            # direct-mapped cache with uniform mapping the hit probability
            # of a line is the chance its set was not touched by any of the
            # other (w-c)/line "overflow" lines since last visit; a standard
            # first-order model is hit ≈ c/w (fraction of sweep resident).
            steady = 1.0 - c / w
            steady = steady + (1.0 - steady) * self.conflict_fraction(working_set)
        cold = 1.0 / max(reuse_sweeps, 1)
        return min(1.0, steady * (1.0 - cold) + cold)

    def simulate_miss_rate(self, working_set: int, *, sweeps: int = 3,
                           page_size: int = 4096, seed: int = 0) -> float:
        """Monte-Carlo check of :meth:`miss_rate` via explicit set mapping.

        Pages are assigned random frame colours (the OS view); a cyclic
        sweep is replayed against a direct-mapped tag array at page
        granularity.  Coarser than line granularity but exhibits the same
        collision statistics, scaled.
        """
        pages = max(1, working_set // page_size)
        page_sets = max(1, self.capacity // page_size)
        rng = np.random.default_rng(seed)
        colour = rng.integers(0, page_sets, size=pages)
        tags = np.full(page_sets, -1, dtype=np.int64)
        misses = 0
        for _ in range(max(1, sweeps)):
            for page in range(pages):
                s = colour[page]
                if tags[s] != page:
                    misses += 1
                    tags[s] = page
        return misses / (pages * max(1, sweeps))

    # -- effective service rates ----------------------------------------------

    def effective_bandwidth(self, working_set: int, *,
                            reuse_sweeps: int = 20) -> float:
        """Average service bandwidth of a sweep, hits+misses combined."""
        m = self.miss_rate(working_set, reuse_sweeps=reuse_sweeps)
        # Per-byte service time is a miss-rate-weighted harmonic blend; the
        # miss path also pays the transaction latency amortised per line.
        hit_t = 1.0 / self.hit_bandwidth
        miss_t = 1.0 / self.miss_bandwidth + self.miss_latency_penalty / self.line_size
        per_byte = (1.0 - m) * hit_t + m * miss_t
        return 1.0 / per_byte

    def sweep_time(self, working_set: int, total_bytes: float, *,
                   reuse_sweeps: int = 20) -> float:
        """Seconds to stream ``total_bytes`` with this working set."""
        if total_bytes <= 0:
            return 0.0
        return total_bytes / self.effective_bandwidth(
            working_set, reuse_sweeps=reuse_sweeps)

    def __repr__(self) -> str:
        return (f"<DirectMappedCache {self.capacity}B lines={self.line_size} "
                f"sets={self.sets}>")
