"""Data blocks — the ``CkIOHandle`` analog.

The paper (§IV-A) has applications declare their bandwidth-sensitive data as
``CkIOHandle<T>`` members, "which allows the runtime system to store and
query metadata about the data block".  Each handle carries:

* an **access intent** from the entry-method annotation
  (``readonly`` / ``readwrite`` / ``writeonly``),
* a **placement state** — the paper's two states ``INHBM`` and ``INDDR``
  (we add transient ``MOVING`` so in-flight transfers are observable),
* a **reference count**, "incremented every time a task depending on the
  block is scheduled", which gates eviction in the post-processing step.
"""

from __future__ import annotations

import enum
import typing as _t
from itertools import count

from repro.errors import BlockStateError
from repro.lint import hooks as _hooks

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mem.allocator import Allocation
    from repro.mem.device import MemoryDevice

__all__ = ["AccessIntent", "BlockState", "DataBlock"]

_block_ids = count()


class AccessIntent(enum.Enum):
    """How a task uses a dependence block (from the ``.ci`` annotation).

    ``reads``/``writes`` are plain attributes rather than properties:
    the race detector consults them per block per task, and a property
    call there is measurable against the rest of the fast path.
    """

    READONLY = ("readonly", True, False)
    READWRITE = ("readwrite", True, True)
    WRITEONLY = ("writeonly", False, True)

    reads: bool
    writes: bool

    def __new__(cls, label: str, reads: bool, writes: bool) -> "AccessIntent":
        obj = object.__new__(cls)
        obj._value_ = label
        obj.reads = reads
        obj.writes = writes
        return obj


class BlockState(enum.Enum):
    """Placement state of a block (paper: ``INHBM`` / ``INDDR``)."""

    INHBM = "INHBM"
    INDDR = "INDDR"
    #: transfer in flight (transient; the paper treats this inside its locks)
    MOVING = "MOVING"


class DataBlock:
    """A contiguous application data block managed by the runtime.

    Blocks are *metadata only* — the simulation never materialises their
    bytes.  ``payload`` may hold a small numpy array for functional
    verification in the example apps (sized-down mirrors of the simulated
    blocks).
    """

    __slots__ = (
        "bid", "name", "nbytes", "state", "device", "allocation",
        "_refcount", "_pending", "_next_use", "pinned",
        "last_scheduled_at", "last_evicted_at", "fetch_count",
        "evict_count", "bytes_moved", "payload", "owner",
    )

    def __init__(self, name: str, nbytes: int, *,
                 state: BlockState = BlockState.INDDR,
                 device: "MemoryDevice | None" = None,
                 payload: _t.Any = None,
                 owner: _t.Any = None):
        if nbytes < 0:
            raise BlockStateError(f"block {name!r} size must be >= 0")
        self.bid = next(_block_ids)
        self.name = name
        self.nbytes = int(nbytes)
        self.state = state
        #: the device currently hosting the bytes
        self.device: "MemoryDevice | None" = device
        #: live allocation handle on ``device``
        self.allocation: "Allocation | None" = None
        self._refcount = 0
        # Pending demand: serial numbers of queued-but-unfinished tasks
        # referencing this block.  The wait queues are FIFO, so the
        # smallest pending serial approximates the block's next use —
        # which lets eviction be Belady-like instead of guessing.
        self._pending: set[int] = set()
        self._next_use: int | None = None  # cached min(self._pending)
        #: pinned blocks are never evicted (used by node-group caching)
        self.pinned = False
        self.last_scheduled_at: float | None = None
        self.last_evicted_at: float | None = None
        self.fetch_count = 0
        self.evict_count = 0
        self.bytes_moved = 0
        self.payload = payload
        #: chare (or other object) that declared this handle, for tracing
        self.owner = owner

    # -- reference counting -------------------------------------------------

    @property
    def refcount(self) -> int:
        return self._refcount

    @property
    def in_use(self) -> bool:
        """Paper: a block may only be evicted when its refcount is zero."""
        return self._refcount > 0

    def retain(self, now: float | None = None) -> int:
        """Increment the refcount (a dependent task was scheduled)."""
        if _hooks.observer is not None:
            _hooks.observer.on_retain(self)
        self._refcount += 1
        if now is not None:
            self.last_scheduled_at = now
        return self._refcount

    def release(self) -> int:
        """Decrement the refcount (a dependent task finished)."""
        if _hooks.observer is not None:
            _hooks.observer.on_release(self)
        if self._refcount <= 0:
            raise BlockStateError(
                f"refcount underflow on block {self.name!r}")
        self._refcount -= 1
        return self._refcount

    @property
    def demand(self) -> int:
        """Queued tasks (waiting, fetching, ready or running) needing this block."""
        return len(self._pending)

    @property
    def next_use(self) -> int:
        """Serial of the earliest pending task needing this block.

        Smaller = needed sooner.  Blocks with no pending tasks report a
        sentinel larger than any serial (farthest possible next use).
        """
        if not self._pending:
            return 1 << 62
        if self._next_use is None:
            self._next_use = min(self._pending)
        return self._next_use

    def add_demand(self, task_serial: int) -> None:
        self._pending.add(task_serial)
        if self._next_use is not None and task_serial < self._next_use:
            self._next_use = task_serial

    def drop_demand(self, task_serial: int) -> None:
        try:
            self._pending.remove(task_serial)
        except KeyError:
            raise BlockStateError(
                f"demand underflow on block {self.name!r}") from None
        if self._next_use == task_serial:
            self._next_use = None  # recompute lazily

    # -- placement ------------------------------------------------------------

    @property
    def in_hbm(self) -> bool:
        return self.state is BlockState.INHBM

    @property
    def in_ddr(self) -> bool:
        return self.state is BlockState.INDDR

    @property
    def moving(self) -> bool:
        return self.state is BlockState.MOVING

    def begin_move(self) -> None:
        if _hooks.observer is not None:
            _hooks.observer.on_begin_move(self)
        if self.state is BlockState.MOVING:
            raise BlockStateError(f"block {self.name!r} is already moving")
        self.state = BlockState.MOVING

    def settle(self, device: "MemoryDevice", state: BlockState) -> None:
        """Finish a move: bind to ``device`` with a concrete state."""
        if state is BlockState.MOVING:
            raise BlockStateError("settle() needs a concrete state")
        self.device = device
        self.state = state
        if _hooks.observer is not None:
            _hooks.observer.on_settle(self)

    def __repr__(self) -> str:
        dev = self.device.name if self.device else "-"
        return (f"<DataBlock #{self.bid} {self.name!r} {self.nbytes}B "
                f"{self.state.value}@{dev} rc={self._refcount}>")
