"""Heterogeneous-memory substrate.

Models the two memory pools of a KNL-class node (high-bandwidth MCDRAM and
high-capacity DDR4) plus everything the paper's runtime needs around them:

* :class:`~repro.mem.block.DataBlock` — the ``CkIOHandle`` analog, a data
  block with an access intent, placement state (``INHBM``/``INDDR``), and a
  reference count used to gate eviction;
* :class:`~repro.mem.device.MemoryDevice` — capacity + bandwidth ports;
* :class:`~repro.mem.topology.MemoryTopology` — the NUMA view
  (``numa_alloc_onnode`` analog);
* :class:`~repro.mem.mover.DataMover` — the paper's §IV-C three-step move
  (allocate at destination, ``memcpy``, free source);
* :class:`~repro.mem.cache.DirectMappedCache` — the KNL *cache mode* model.
"""

from repro.mem.block import AccessIntent, BlockState, DataBlock
from repro.mem.device import MemoryDevice
from repro.mem.allocator import (
    Allocation,
    Allocator,
    BumpAllocator,
    FreeListAllocator,
    PagedAllocator,
    PoolAllocator,
)
from repro.mem.topology import MemoryTopology
from repro.mem.mover import DataMover, MoveResult
from repro.mem.registry import BlockRegistry
from repro.mem.cache import DirectMappedCache

__all__ = [
    "AccessIntent", "BlockState", "DataBlock",
    "MemoryDevice",
    "Allocation", "Allocator", "BumpAllocator", "FreeListAllocator",
    "PagedAllocator", "PoolAllocator",
    "MemoryTopology",
    "DataMover", "MoveResult",
    "BlockRegistry",
    "DirectMappedCache",
]
