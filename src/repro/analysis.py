"""Closed-form performance models for cross-validating the simulator.

The DES should not be a black box: for simple, steady-state workloads its
results are predictable in closed form, and the test suite holds the two
accountable to each other (``tests/test_analysis_validation.py``).

The models mirror the simulator's assumptions:

* a device port's bandwidth is shared max-min fairly among its streams,
  each additionally capped by the per-core rate;
* a kernel's duration is ``max(compute floor, memory time)`` (time-domain
  roofline);
* a block move runs at ``min(per-thread copy rate, source read share,
  destination write share)``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.config import MachineConfig, knl_config

__all__ = [
    "bandwidth_share",
    "kernel_time",
    "move_time",
    "stencil_iteration_time",
    "stencil_speedup_bound",
    "AnalyticStencil",
]


def bandwidth_share(port_bandwidth: float, streams: int,
                    per_stream_cap: float = float("inf")) -> float:
    """Fair-share rate of one of ``streams`` equal streams on a port."""
    if streams <= 0:
        raise ValueError("streams must be >= 1")
    return min(port_bandwidth / streams, per_stream_cap)


def kernel_time(flops: float, traffic_bytes: float, *,
                core_flops: float, effective_bandwidth: float) -> float:
    """Time-domain roofline: max of compute floor and memory drain time."""
    compute = flops / core_flops if core_flops > 0 else 0.0
    memory = (traffic_bytes / effective_bandwidth
              if traffic_bytes > 0 else 0.0)
    return max(compute, memory)


def move_time(nbytes: float, *, src_read_share: float,
              dst_write_share: float, copy_cap: float,
              alloc_cost: float = 0.0, free_cost: float = 0.0,
              latency: float = 0.0) -> float:
    """Expected duration of one ``numa_alloc + memcpy + numa_free`` move."""
    rate = min(src_read_share, dst_write_share, copy_cap)
    return alloc_cost + latency + nbytes / rate + free_cost


@dataclasses.dataclass
class AnalyticStencil:
    """Steady-state model of one out-of-core Stencil3D iteration.

    Assumes ``n_chares >= pes`` (full waves), uniform blocks, and the
    placement split of the strategy under analysis.
    """

    machine: MachineConfig
    block_bytes: int
    n_chares: int
    flops_per_task: float
    sweep_traffic_factor: float = 8.0
    pes: int | None = None

    def __post_init__(self) -> None:
        if self.pes is None:
            self.pes = self.machine.cores

    @property
    def task_traffic(self) -> float:
        """Bytes one task streams (read + write sweeps)."""
        return 2.0 * self.block_bytes * self.sweep_traffic_factor

    def _device_share(self, device_name: str,
                      concurrent: int | None = None) -> float:
        dev = self.machine.device(device_name)
        streams = concurrent if concurrent is not None else self.pes
        # a mixed flow is bound by the weaker port
        port = min(dev.read_bandwidth, dev.write_bandwidth)
        return bandwidth_share(port, streams,
                               self.machine.core_mem_bandwidth)

    def task_time(self, device_name: str,
                  concurrent: int | None = None) -> float:
        """Kernel duration with the block resident on ``device_name``."""
        return kernel_time(
            self.flops_per_task, self.task_traffic,
            core_flops=self.machine.core_flops,
            effective_bandwidth=self._device_share(device_name, concurrent))

    def iteration_time(self, hbm_fraction: float) -> float:
        """One iteration with ``hbm_fraction`` of blocks resident in HBM.

        Static-placement model (Naive/DDR-only/HBM-only): each PE executes
        ``n_chares / pes`` tasks back to back, a blend of fast and slow.
        The *instantaneous concurrency* on each device is time-weighted —
        slow (DDR4) tasks occupy their PE for longer, so at any instant a
        disproportionate share of PEs sits in slow tasks, deepening the
        contention.  Solved as a fixed point.
        """
        if not 0.0 <= hbm_fraction <= 1.0:
            raise ValueError("hbm_fraction must be in [0, 1]")
        f = hbm_fraction
        tasks_per_pe = self.n_chares / self.pes
        if f == 0.0 or f == 1.0:
            device = "mcdram" if f == 1.0 else "ddr4"
            return tasks_per_pe * self.task_time(device, self.pes)
        slow_conc = (1.0 - f) * self.pes
        fast_conc = f * self.pes
        t_slow = t_fast = 0.0
        for _ in range(50):
            t_slow = self.task_time("ddr4", max(1, round(slow_conc)))
            t_fast = self.task_time("mcdram", max(1, round(fast_conc)))
            weight_slow = (1.0 - f) * t_slow
            weight_fast = f * t_fast
            total = weight_slow + weight_fast
            new_slow = self.pes * weight_slow / total
            if abs(new_slow - slow_conc) < 0.5:
                break
            slow_conc = new_slow
            fast_conc = self.pes - new_slow
        return tasks_per_pe * ((1.0 - f) * t_slow + f * t_fast)

    def movement_floor(self) -> float:
        """Per-iteration wire time to cycle every block through HBM.

        Fetches drain through the DDR4 read port, evictions through its
        write port; they overlap, so the floor is the slower of the two.
        """
        total = self.block_bytes * self.n_chares
        ddr = self.machine.device("ddr4")
        return max(total / ddr.read_bandwidth, total / ddr.write_bandwidth)

    def prefetch_iteration_floor(self) -> float:
        """Best-case out-of-core iteration: kernels from HBM, movement
        fully overlapped."""
        tasks_per_pe = self.n_chares / self.pes
        compute = tasks_per_pe * self.task_time("mcdram")
        return max(compute, self.movement_floor())


def stencil_iteration_time(machine: MachineConfig, block_bytes: int,
                           n_chares: int, flops_per_task: float,
                           hbm_fraction: float, *,
                           sweep_traffic_factor: float = 8.0) -> float:
    """Convenience wrapper over :class:`AnalyticStencil`."""
    model = AnalyticStencil(machine, block_bytes, n_chares, flops_per_task,
                            sweep_traffic_factor)
    return model.iteration_time(hbm_fraction)


def stencil_speedup_bound(machine: MachineConfig | None = None, *,
                          hbm_capacity_fraction: float = 0.5,
                          sweep_traffic_factor: float = 8.0,
                          flops_per_byte: float = 20.0 / 16.0) -> float:
    """Upper bound on Figure 8's multi-IO speedup over Naive.

    With Naive holding ``hbm_capacity_fraction`` of the grid in HBM and
    the prefetch runtime serving everything from HBM with perfect
    overlap, the bound is the ratio of the two blended iteration times.
    This is what the paper's "upto 2X" is an instance of.
    """
    cfg = machine if machine is not None else knl_config()
    block = 1 << 20  # arbitrary; ratio is block-size invariant
    flops = flops_per_byte * 2 * block * sweep_traffic_factor
    model = AnalyticStencil(cfg, block, cfg.cores * 8, flops,
                            sweep_traffic_factor)
    naive = model.iteration_time(hbm_capacity_fraction)
    best = model.prefetch_iteration_floor()
    return naive / best if best > 0 else float("inf")
