"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Regenerate the paper's figures (all or a subset) and print the tables.
    ``-j/--jobs N`` fans the underlying simulation runs out over N worker
    processes; results are cached content-addressed in ``.repro-cache/``
    (key: canonical run spec + a fingerprint of ``src/repro``), so a
    re-run after an unrelated edit is answered from disk.  ``--no-cache``
    bypasses the cache, ``--cache-stats`` prints hit/miss counts to
    stderr.  Tables are byte-identical whatever ``--jobs`` is.
``cache``
    Inspect (``stats``) or delete (``clear``) the on-disk result cache.
``stencil`` / ``matmul`` / ``spmv``
    Run one application configuration under one strategy and report
    timings plus the OOC manager summary.  ``--sanitize`` runs under the
    :mod:`repro.lint` runtime sanitizer and fails on invariant violations.
    ``--spans`` records the :mod:`repro.obs` causal span DAG and prints
    the critical-path makespan decomposition after the run; with
    ``--trace-out`` the spans (and their causal flow arrows) are merged
    into the exported Chrome trace.
``stream``
    Print the Figure-1 STREAM table (``--sanitize`` supported).
``lint``
    Statically check dependence declarations (``@entry`` vs kernel usage)
    and inferred memory traffic (bwlint, rules ``REP3xx``) in files,
    directories or importable modules.  Exit codes: 0 clean, 1 findings,
    2 the analyzer itself failed (the offending file and function are
    named on stderr).  ``--select REP3`` filters by rule-id prefix;
    ``--guidance PATH`` also writes a placement-guidance file;
    ``--format sarif`` emits a canonical SARIF 2.1.0 document on stdout
    (summary on stderr).  Warm re-runs are answered from the
    fingerprint-keyed ``.repro-cache/lint/`` analysis cache;
    ``--no-cache`` bypasses it.
``guide``
    Emit the bwlint placement-guidance file (canonical JSON, SHA-256
    identity) that ``--strategy static-guided`` and ``--strategy
    phase-guided`` consume.  ``--phases`` prints the deterministic
    human-readable phase-timeline render instead of the JSON;
    ``--no-cache`` bypasses the analysis cache.
``metrics``
    Run one application under the :mod:`repro.metrics` telemetry
    subsystem and export the flight-recorder output (``--format
    prom|json|report``); ``--watch`` narrates snapshot deltas live.
    ``stencil``/``matmul`` also accept ``--metrics`` to append the same
    output to a normal run.
``race``
    The :mod:`repro.race` concurrency checkers: ``--static`` model-checks
    the placement-state protocol (rules ``REP2xx``) over the strategies
    and mover (or explicit targets); the dynamic mode runs one app under
    the happens-before race detector, exploring ``--explore-schedules N``
    seeded event orderings (``-j/--jobs`` explores seeds in parallel) and
    minimizing the first failure to a ``(--seed, --limit)`` replay token.
    ``stencil``/``matmul``/``spmv`` accept the same ``--race`` /
    ``--explore-schedules`` / ``--seed`` / ``--limit`` flags on a normal
    run.
``report``
    The self-reporting experiment suite: run figure sweeps across N
    seeded schedule replicates on the parallel engine, print mean ± 95%
    CI tables with Welch significance tests against ``--baseline``, and
    write one self-contained HTML report (inline SVG, no external
    assets).  Warm-cache re-runs reproduce the file byte for byte.
``leaderboard``
    Rank every placement strategy across the four chare applications:
    N seeded schedule replicates per (app, strategy) cell on the
    parallel engine, makespan mean ± 95% CI per cell, Welch t-tests
    against ``--baseline``, and a ranking by geometric-mean slowdown
    versus the per-app best — plus one self-contained HTML report.
    Working sets fit the scaled HBM tier so ``hbm-only`` (which
    refuses overflow) participates.
``trend``
    The BENCH trend dashboard: ``append`` folds the repo's current
    ``BENCH_*.json`` snapshots into ``bench_history.jsonl`` (keyed by
    commit, idempotent), ``render`` turns the history into a standalone
    sparkline HTML page.

Examples::

    python -m repro experiments --figures fig1 fig8 --scale small
    python -m repro experiments --all -j 8 --cache-stats
    python -m repro cache stats
    python -m repro stencil --strategy multi-io --total 2GiB --block 4MiB
    python -m repro matmul --strategy single-io --working-set 1.5GiB
    python -m repro lint src/repro/apps examples
    python -m repro stencil --sanitize --total 512MiB --block 8MiB
    python -m repro stencil --metrics --format report
    python -m repro metrics --app stencil --watch --format prom
    python -m repro race --static
    python -m repro race --app stencil --explore-schedules 8 -j 4
    python -m repro stencil --race --total 256MiB --block 16MiB
    python -m repro spmv --strategy multi-io --block-rows 32
    python -m repro stencil --spans --trace-out trace.json
    python -m repro report --figures fig2 fig8 --replicates 5 \
        --baseline "Single IO thread" -j 8 -o report.html
    python -m repro leaderboard --replicates 3 --baseline multi-io \
        -o leaderboard.html
    python -m repro trend append --commit $GITHUB_SHA
    python -m repro trend render -o trend.html
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.spmv import SpMV, SpMVConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench import experiments as exps
from repro.bench.harness import Scale
from repro.bench.report import render_experiment
from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import STRATEGIES
from repro.units import format_size, format_time, parse_size

__all__ = ["main"]

_SCALES = {"tiny": Scale.TINY, "small": Scale.SMALL,
           "medium": Scale.MEDIUM, "full": Scale.FULL}


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--strategy", default="multi-io",
                        choices=sorted(STRATEGIES))
    parser.add_argument("--cores", type=int, default=64)
    parser.add_argument("--mcdram", default="1GiB",
                        help="HBM capacity (default 1GiB = 1/16 scale)")
    parser.add_argument("--ddr", default="6GiB",
                        help="DDR4 capacity (default 6GiB = 1/16 scale)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the repro.lint runtime sanitizer "
                             "(simsan); non-zero exit on violations")
    parser.add_argument("--metrics", action="store_true",
                        help="record repro.metrics telemetry and print it "
                             "after the run")
    parser.add_argument("--format", default="report",
                        choices=["prom", "json", "report"],
                        help="metrics output format (with --metrics)")
    parser.add_argument("--metrics-interval", type=float, default=0.02,
                        metavar="SIMSECONDS",
                        help="flight-recorder snapshot cadence in "
                             "simulated seconds (default 0.02)")
    parser.add_argument("--spans", action="store_true",
                        help="record the repro.obs causal span DAG and "
                             "print the critical-path decomposition")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace (open in Perfetto); "
                             "merges metrics counter tracks with "
                             "--metrics and causal flow arrows with "
                             "--spans")
    parser.add_argument("--race", action="store_true",
                        help="run under the repro.race happens-before "
                             "detector (racesan); non-zero exit on races")
    parser.add_argument("--explore-schedules", type=int, default=0,
                        metavar="N",
                        help="re-run across N seeded event-order "
                             "permutations under racesan+simsan and "
                             "minimize the first failure")
    parser.add_argument("--seed", type=int, default=None,
                        help="schedule seed: base seed with "
                             "--explore-schedules, else replay one "
                             "permuted schedule")
    parser.add_argument("--limit", type=int, default=None,
                        help="decision limit of a minimized replay token "
                             "(with --seed)")


def _build(args: argparse.Namespace) -> _t.Any:
    return OOCRuntimeBuilder(
        args.strategy, cores=args.cores,
        mcdram_capacity=parse_size(args.mcdram),
        ddr_capacity=parse_size(args.ddr),
        trace=True).build()


def _start_sanitizer(args: argparse.Namespace) -> _t.Any:
    """Install the runtime sanitizer when ``--sanitize`` was given."""
    if not getattr(args, "sanitize", False):
        return None
    from repro.lint import SimSanitizer
    return SimSanitizer(mode="record").install()


def _finish_sanitizer(sanitizer: _t.Any, manager: _t.Any = None) -> int:
    """Quiescence-check, report and uninstall; returns the exit code."""
    if sanitizer is None:
        return 0
    try:
        if manager is not None:
            sanitizer.check_quiescent(manager)
        print(sanitizer.render())
    finally:
        sanitizer.uninstall()
    return 1 if sanitizer.violations else 0


def _start_racesan(args: argparse.Namespace, built: _t.Any) -> _t.Any:
    """Install the happens-before detector when ``--race`` was given."""
    if not getattr(args, "race", False):
        return None
    from repro.race import RaceSanitizer
    return RaceSanitizer().install(built.env)


def _finish_racesan(racesan: _t.Any) -> int:
    """Report and uninstall racesan; returns the exit code."""
    if racesan is None:
        return 0
    try:
        print(racesan.render_report())
    finally:
        racesan.uninstall()
    return 1 if racesan.findings else 0


def _app_runner(args: argparse.Namespace, app: str) -> _t.Any:
    """Build an explorer runner from the CLI's app/machine arguments."""
    from repro.race import matmul_runner, spmv_runner, stencil_runner

    machine = dict(strategy=args.strategy, cores=args.cores,
                   mcdram=parse_size(args.mcdram), ddr=parse_size(args.ddr))
    if app == "stencil":
        return stencil_runner(total=parse_size(args.total),
                              block=parse_size(args.block),
                              iterations=args.iterations, **machine)
    if app == "spmv":
        return spmv_runner(block_rows=args.block_rows,
                           block_bytes=parse_size(args.block_bytes),
                           vector_bytes=parse_size(args.vector_bytes),
                           couplings=args.couplings,
                           iterations=args.iterations,
                           seed=args.matrix_seed, **machine)
    return matmul_runner(working_set=parse_size(args.working_set),
                         block_dim=args.block_dim, **machine)


def _app_spec_params(args: argparse.Namespace, app: str) -> dict[str, _t.Any]:
    """The ``schedule`` RunSpec params matching :func:`_app_runner`."""
    params: dict[str, _t.Any] = dict(
        strategy=args.strategy, cores=args.cores,
        mcdram=parse_size(args.mcdram), ddr=parse_size(args.ddr))
    if app == "stencil":
        params.update(total=parse_size(args.total),
                      block=parse_size(args.block),
                      iterations=args.iterations)
    elif app == "spmv":
        params.update(block_rows=args.block_rows,
                      block_bytes=parse_size(args.block_bytes),
                      vector_bytes=parse_size(args.vector_bytes),
                      couplings=args.couplings,
                      iterations=args.iterations,
                      matrix_seed=args.matrix_seed)
    else:
        params.update(working_set=parse_size(args.working_set),
                      block_dim=args.block_dim)
    return params


def _explore_or_replay(args: argparse.Namespace, app: str) -> int | None:
    """Handle ``--explore-schedules`` / ``--seed`` schedule modes.

    Returns an exit code when one of the modes ran, None for a normal run.
    """
    schedules = getattr(args, "explore_schedules", 0)
    seed = getattr(args, "seed", None)
    if not schedules and seed is None:
        return None
    from repro.race import explore, run_schedule

    runner = _app_runner(args, app)
    if schedules:
        jobs = getattr(args, "jobs", 1)
        if jobs > 1:
            from repro.exec.explore import parallel_explore

            report = parallel_explore(
                app, _app_spec_params(args, app), schedules=schedules,
                base_seed=seed if seed is not None else 0, jobs=jobs,
                runner=runner)
        else:
            report = explore(runner, schedules=schedules,
                             base_seed=seed if seed is not None else 0)
        print(report.render())
        return 1 if report.failing else 0
    outcome = run_schedule(runner, seed, limit=getattr(args, "limit", None))
    print(outcome.render())
    for item in outcome.race_findings + outcome.san_violations:
        print(item.render())
    return 1 if outcome.failed else 0


def _start_spans(args: argparse.Namespace, built: _t.Any) -> _t.Any:
    """Install the causal span tracer when ``--spans`` was given."""
    if not getattr(args, "spans", False):
        return None
    from repro.obs import SpanTracer
    return SpanTracer(built.env).install()


def _finish_spans(tracer: _t.Any, built: _t.Any, window_start: float,
                  title: str) -> "list | None":
    """Uninstall, print the critical-path report; returns the spans."""
    if tracer is None:
        return None
    tracer.uninstall()
    from repro.obs import critical_path
    report = critical_path(tracer.spans, start=window_start,
                           end=built.env.now)
    print(report.render(title=title))
    return tracer.spans


def _write_trace(args: argparse.Namespace, built: _t.Any, *,
                 counters: _t.Any = None, spans: _t.Any = None) -> None:
    """Write the merged Chrome trace when ``--trace-out`` was given."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return
    from repro.trace import export as trace_export

    payload = trace_export.to_json(built.runtime.tracer,
                                   counters=counters, spans=spans)
    with open(trace_out, "w") as fh:
        fh.write(payload)
    # stderr: keep stdout machine-parseable under ``--format json/prom``
    print(f"merged Chrome trace written to {trace_out}", file=sys.stderr)


def _start_metrics(args: argparse.Namespace, built: _t.Any,
                   app: str) -> _t.Any:
    """Open a :class:`repro.metrics.MetricsSession` when asked to."""
    if not getattr(args, "metrics", False):
        return None
    from repro.metrics import MetricsSession, narration_line

    on_snapshot = None
    if getattr(args, "watch", False):
        capacity = built.machine.hbm.capacity
        tier = built.machine.hbm.name

        def on_snapshot(snap, previous):  # noqa: ANN001 - callback
            print(narration_line(snap, previous, hbm_capacity=capacity,
                                 hbm_tier=tier))

    return MetricsSession(built, app=app,
                          cadence=getattr(args, "metrics_interval", 0.02),
                          on_snapshot=on_snapshot)


def _finish_metrics(session: _t.Any, args: argparse.Namespace,
                    app: str, *, spans: _t.Any = None,
                    built: _t.Any = None) -> None:
    """Stop the recorder and print the chosen export format.

    Also writes the ``--trace-out`` Chrome trace; ``built`` lets the
    trace be exported (with ``spans`` merged) when no metrics session
    was open.
    """
    if session is None:
        if built is not None:
            _write_trace(args, built, spans=spans)
        return
    from repro.metrics import (counter_series, render_report, to_json,
                               to_prometheus)

    recorder = session.finish()
    fmt = getattr(args, "format", "report")
    if fmt == "prom":
        print(to_prometheus(session.registry), end="")
    elif fmt == "json":
        print(to_json(session.registry, recorder, indent=2))
    else:
        print(render_report(session.registry, recorder, title=app))
    _write_trace(args, session.built, counters=counter_series(recorder),
                 spans=spans)


def _progress_line(event: dict) -> None:
    """One stderr line per completed run (stdout stays table-only)."""
    print(f"[{event['done']}/{event['total']}] {event['status']:6s} "
          f"{event['spec'].display()} ({event['elapsed_s']:.2f}s)",
          file=sys.stderr)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache, run_specs

    scale = _SCALES[args.scale]
    names = list(args.figures or [])
    if args.all or not names:
        names = sorted(exps.PLANS)
    unknown = sorted(set(names) - set(exps.PLANS))
    if unknown:
        print(f"unknown figure(s) {unknown}; "
              f"choose from {sorted(exps.PLANS)}", file=sys.stderr)
        return 2
    plans = [exps.PLANS[name](scale) for name in names]
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    # one batch across all requested figures: shared runs (e.g. the
    # fig5/fig6 traced multi-io stencil) dedup to a single execution
    specs = [spec for plan in plans for spec in plan.specs]
    results = run_specs(specs, jobs=args.jobs, cache=cache,
                        progress=_progress_line)
    exit_code, idx = 0, 0
    for plan in plans:
        chunk = results[idx:idx + len(plan.specs)]
        idx += len(plan.specs)
        failed = [r for r in chunk if not r.ok]
        if failed:
            exit_code = 1
            for r in failed:
                print(f"{plan.figure}: {r.spec.display()}: {r.error}",
                      file=sys.stderr)
            continue
        print(render_experiment(plan.assemble([r.result for r in chunk])))
        print()
    if cache is not None and args.cache_stats:
        stats = cache.session_stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} store(s) in {cache.generation}",
              file=sys.stderr)
    return exit_code


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import cache_stats, clear_cache, default_cache_root

    root = args.cache_dir or default_cache_root()
    if args.action == "clear":
        removed = clear_cache(root)
        print(f"removed {removed} cached result(s) from {root}")
        return 0
    stats = cache_stats(root)
    print(f"cache root : {stats['root']}")
    print(f"current gen: {stats['current']}")
    for name, gen in sorted(stats["generations"].items()):
        marker = " (current)" if name == stats["current"] else ""
        print(f"  {name}: {gen['entries']} entries, "
              f"{gen['bytes']} bytes{marker}")
    print(f"total      : {stats['total_entries']} entries, "
          f"{stats['total_bytes']} bytes")
    return 0


def _cmd_stencil(args: argparse.Namespace) -> int:
    code = _explore_or_replay(args, "stencil")
    if code is not None:
        return code
    sanitizer = _start_sanitizer(args)
    built = _build(args)
    if sanitizer is not None:
        sanitizer.bind(built.manager)
    racesan = _start_racesan(args, built)
    metrics = _start_metrics(args, built, "stencil")
    spans = _start_spans(args, built)
    window_start = built.env.now
    cfg = StencilConfig(total_bytes=parse_size(args.total),
                        block_bytes=parse_size(args.block),
                        iterations=args.iterations)
    app = Stencil3D(built, cfg)
    result = app.run()
    print(f"strategy        : {args.strategy}")
    print(f"chares          : {cfg.n_chares} "
          f"({format_size(cfg.block_bytes)} blocks)")
    print(f"total time      : {format_time(result.total_time)}")
    print(f"mean iteration  : {format_time(result.mean_iteration_time)}")
    print(f"mean kernel/task: {format_time(result.mean_kernel_time)}")
    for key, value in built.manager.summary().items():
        print(f"{key:16s}: {value}")
    from repro.trace.occupancy import render_occupancy
    print("hbm occupancy   :")
    print(render_occupancy(built.manager.occupancy_log,
                           built.machine.hbm.capacity, width=60))
    span_list = _finish_spans(spans, built, window_start,
                              f"stencil/{args.strategy}")
    _finish_metrics(metrics, args, "stencil", spans=span_list, built=built)
    race_code = _finish_racesan(racesan)
    return max(race_code, _finish_sanitizer(sanitizer, built.manager))


def _cmd_matmul(args: argparse.Namespace) -> int:
    code = _explore_or_replay(args, "matmul")
    if code is not None:
        return code
    sanitizer = _start_sanitizer(args)
    built = _build(args)
    if sanitizer is not None:
        sanitizer.bind(built.manager)
    racesan = _start_racesan(args, built)
    metrics = _start_metrics(args, built, "matmul")
    spans = _start_spans(args, built)
    window_start = built.env.now
    cfg = MatMulConfig.for_working_set(parse_size(args.working_set),
                                       block_dim=args.block_dim)
    app = MatMul(built, cfg)
    result = app.run()
    print(f"strategy        : {args.strategy}")
    print(f"matrix          : {cfg.n} x {cfg.n} "
          f"({cfg.grid}x{cfg.grid} chares)")
    print(f"total time      : {format_time(result.total_time)}")
    print(f"mean kernel/task: {format_time(result.mean_kernel_time)}")
    for key, value in built.manager.summary().items():
        print(f"{key:16s}: {value}")
    span_list = _finish_spans(spans, built, window_start,
                              f"matmul/{args.strategy}")
    _finish_metrics(metrics, args, "matmul", spans=span_list, built=built)
    race_code = _finish_racesan(racesan)
    return max(race_code, _finish_sanitizer(sanitizer, built.manager))


def _cmd_spmv(args: argparse.Namespace) -> int:
    code = _explore_or_replay(args, "spmv")
    if code is not None:
        return code
    sanitizer = _start_sanitizer(args)
    built = _build(args)
    if sanitizer is not None:
        sanitizer.bind(built.manager)
    racesan = _start_racesan(args, built)
    metrics = _start_metrics(args, built, "spmv")
    spans = _start_spans(args, built)
    window_start = built.env.now
    cfg = SpMVConfig(block_rows=args.block_rows,
                     block_bytes=parse_size(args.block_bytes),
                     vector_bytes=parse_size(args.vector_bytes),
                     couplings=args.couplings,
                     iterations=args.iterations,
                     seed=args.matrix_seed)
    app = SpMV(built, cfg)
    result = app.run()
    print(f"strategy        : {args.strategy}")
    print(f"block rows      : {cfg.block_rows} "
          f"({format_size(cfg.block_bytes)} matrix blocks, "
          f"{cfg.couplings} coupling(s))")
    print(f"total time      : {format_time(result.total_time)}")
    print(f"mean iteration  : {format_time(result.mean_iteration_time)}")
    print(f"tasks completed : {result.tasks_completed}")
    for key, value in built.manager.summary().items():
        print(f"{key:16s}: {value}")
    span_list = _finish_spans(spans, built, window_start,
                              f"spmv/{args.strategy}")
    _finish_metrics(metrics, args, "spmv", spans=span_list, built=built)
    race_code = _finish_racesan(racesan)
    return max(race_code, _finish_sanitizer(sanitizer, built.manager))


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one app under the telemetry subsystem and export the metrics."""
    args.metrics = True
    built = _build(args)
    metrics = _start_metrics(args, built, args.app)
    spans = _start_spans(args, built)
    window_start = built.env.now
    if args.app == "stencil":
        cfg = StencilConfig(total_bytes=parse_size(args.total),
                            block_bytes=parse_size(args.block),
                            iterations=args.iterations)
        Stencil3D(built, cfg).run()
    elif args.app == "matmul":
        cfg = MatMulConfig.for_working_set(parse_size(args.working_set),
                                           block_dim=args.block_dim)
        MatMul(built, cfg).run()
    elif args.app == "spmv":
        cfg = SpMVConfig(block_rows=args.block_rows,
                         block_bytes=parse_size(args.block_bytes),
                         vector_bytes=parse_size(args.vector_bytes),
                         couplings=args.couplings,
                         iterations=args.iterations,
                         seed=args.matrix_seed)
        SpMV(built, cfg).run()
    else:
        from repro.apps.stream_app import StreamApp, StreamAppConfig

        cfg = StreamAppConfig(array_bytes=parse_size(args.array),
                              chares=args.chares, repeats=args.repeats)
        StreamApp(built, cfg).run()
    span_list = _finish_spans(spans, built, window_start,
                              f"{args.app}/{args.strategy}")
    _finish_metrics(metrics, args, args.app, spans=span_list, built=built)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    sanitizer = _start_sanitizer(args)
    print(render_experiment(exps.fig1_stream_bandwidth(
        threads=args.threads)))
    return _finish_sanitizer(sanitizer)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import RULES, AnalyzerCrash

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.id} {rule.severity.value:7s} {rule.title}")
            print(f"    {rule.description}")
        return 0
    if not args.targets:
        print("lint: no targets given (files, directories or module names)",
              file=sys.stderr)
        return 2
    try:
        from repro.lint.cache import AnalysisCache, cached_check_paths
        cache = AnalysisCache(enabled=not args.no_cache)
        report = cached_check_paths(args.targets, cache=cache)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except AnalyzerCrash as exc:
        # the analyzer itself broke: exit 2 naming the offending spot so
        # a bug in the checker is never mistaken for a clean tree
        print(f"lint: internal error in {exc.file}, "
              f"function {exc.function}: "
              f"{type(exc.cause).__name__}: {exc.cause}", file=sys.stderr)
        return 2
    except (OSError, UnicodeDecodeError, ImportError) as exc:
        # internal/environment failure, not a lint verdict: exit 2 so
        # callers can tell "findings" (1) from "the run itself broke"
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return 2
    findings = list(report)
    if args.select:
        prefixes = tuple(args.select)
        findings = [f for f in findings if f.rule.startswith(prefixes)]
    from repro.lint.findings import Severity
    errors = [f for f in findings if f.severity is Severity.ERROR]
    warnings = [f for f in findings if f.severity is Severity.WARNING]
    if args.format == "sarif":
        # stdout carries only the artifact; the human summary goes to
        # stderr so `repro lint --format sarif > findings.sarif` is clean
        from repro.lint.sarif import to_sarif
        print(to_sarif(findings), end="")
        print(f"{len(errors)} error(s), {len(warnings)} warning(s)",
              file=sys.stderr)
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(errors)} error(s), {len(warnings)} warning(s)")
    if args.guidance:
        from repro.lint.cache import cached_build_guidance
        guide = cached_build_guidance(args.targets, cache=cache)
        guide.write(args.guidance)
        print(f"guidance for {len(guide.sites)} site(s) written to "
              f"{args.guidance} (sha256 {guide.identity()[:16]})",
              file=sys.stderr)
    ok = not errors and not (args.strict and warnings)
    return 0 if ok else 1


def _cmd_guide(args: argparse.Namespace) -> int:
    """Emit a bwlint placement-guidance file for the given sources."""
    from repro.lint import AnalyzerCrash
    from repro.lint.cache import AnalysisCache, cached_build_guidance

    targets = args.targets or ["repro.apps"]
    try:
        guide = cached_build_guidance(
            targets, cache=AnalysisCache(enabled=not args.no_cache))
    except FileNotFoundError as exc:
        print(f"guide: {exc}", file=sys.stderr)
        return 2
    except AnalyzerCrash as exc:
        print(f"guide: internal error in {exc.file}, "
              f"function {exc.function}: "
              f"{type(exc.cause).__name__}: {exc.cause}", file=sys.stderr)
        return 2
    if args.phases:
        from repro.lint.guidance import render_timeline
        print(render_timeline(guide), end="")
        return 0
    if args.output:
        guide.write(args.output)
        print(f"guidance for {len(guide.sites)} site(s) written to "
              f"{args.output} (sha256 {guide.identity()[:16]})",
              file=sys.stderr)
    else:
        print(guide.dumps(), end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Replicated figure sweep with stats, tables and an HTML report."""
    from repro.exec import ResultCache, run_specs
    from repro.obs.report import (assemble_sweep, render_report_html,
                                  replicate_specs)

    scale = _SCALES[args.scale]
    names = list(args.figures or [])
    if args.all or not names:
        names = sorted(exps.PLANS)
    unknown = sorted(set(names) - set(exps.PLANS))
    if unknown:
        print(f"unknown figure(s) {unknown}; "
              f"choose from {sorted(exps.PLANS)}", file=sys.stderr)
        return 2
    plans = [exps.PLANS[name](scale) for name in names]
    specs = replicate_specs(plans, args.replicates)
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    results = run_specs(specs, jobs=args.jobs, cache=cache,
                        progress=_progress_line)
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"report: {r.spec.display()}: {r.error}", file=sys.stderr)
        return 1
    figures = assemble_sweep(plans, args.replicates,
                             [r.result for r in results],
                             baseline=args.baseline)
    for fig in figures:
        print(fig.render())
        print()
    html = render_report_html(
        figures, title=f"repro experiment report — {', '.join(names)} "
                       f"({args.scale} scale)")
    with open(args.out, "w") as fh:
        fh.write(html)
    print(f"report ({len(figures)} figure(s), {args.replicates} "
          f"replicate(s)) written to {args.out}", file=sys.stderr)
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    """Every strategy × every app, replicated, ranked, one HTML report."""
    from repro.bench.leaderboard import (LEADERBOARD_APPS, leaderboard_plans,
                                         rank_figures, render_leaderboard)
    from repro.exec import ResultCache, run_specs
    from repro.obs.report import (assemble_sweep, render_report_html,
                                  replicate_specs)

    scale = _SCALES[args.scale]
    apps = list(args.apps or LEADERBOARD_APPS)
    unknown = sorted(set(apps) - set(LEADERBOARD_APPS))
    if unknown:
        print(f"unknown app(s) {unknown}; "
              f"choose from {sorted(LEADERBOARD_APPS)}", file=sys.stderr)
        return 2
    strategies = sorted(args.strategies or STRATEGIES)
    if args.baseline is not None and args.baseline not in strategies:
        print(f"baseline {args.baseline!r} is not among the swept "
              f"strategies {strategies}", file=sys.stderr)
        return 2
    plans = leaderboard_plans(scale, apps=apps, strategies=strategies,
                              iterations=args.iterations)
    specs = replicate_specs(plans, args.replicates)
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    results = run_specs(specs, jobs=args.jobs, cache=cache,
                        progress=_progress_line)
    failed = [r for r in results if not r.ok]
    if failed:
        for r in failed:
            print(f"leaderboard: {r.spec.display()}: {r.error}",
                  file=sys.stderr)
        return 1
    figures = assemble_sweep(plans, args.replicates,
                             [r.result for r in results],
                             baseline=args.baseline)
    summary = rank_figures(figures)
    print(render_leaderboard(summary, figures))
    if args.out:
        html = render_report_html(
            [summary, *figures],
            title=f"repro strategy leaderboard — {', '.join(apps)} "
                  f"({args.scale} scale)")
        with open(args.out, "w") as fh:
            fh.write(html)
        print(f"leaderboard ({len(strategies)} strategies, {len(apps)} "
              f"app(s), {args.replicates} replicate(s)) written to "
              f"{args.out}", file=sys.stderr)
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    """Append to / render the BENCH trend history."""
    import os
    from pathlib import Path

    from repro.obs import trend as obs_trend

    history = Path(args.history) if args.history else None
    if args.action == "append":
        commit = args.commit or os.environ.get("GITHUB_SHA") or "local"
        record = obs_trend.append_history(commit, path=history)
        if record is None:
            print(f"trend: nothing appended for {commit} (already "
                  "recorded, or no BENCH_*.json found)", file=sys.stderr)
        else:
            print(f"trend: recorded {len(record['benches'])} bench "
                  f"snapshot(s) for {commit}")
        return 0
    records = obs_trend.load_history(history)
    with open(args.out, "w") as fh:
        fh.write(obs_trend.render_trend_html(records))
    print(f"trend dashboard ({len(records)} commit(s)) written to "
          f"{args.out}", file=sys.stderr)
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    if args.static or args.targets:
        from repro.race import check_paths, default_targets

        targets = args.targets or default_targets()
        try:
            report = check_paths(targets)
        except FileNotFoundError as exc:
            print(f"race: {exc}", file=sys.stderr)
            return 2
        except (OSError, UnicodeDecodeError) as exc:
            print(f"race: internal error: {exc}", file=sys.stderr)
            return 2
        for finding in report:
            print(finding.render())
        print(f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        return 0 if report.ok(strict=True) else 1
    code = _explore_or_replay(args, args.app)
    if code is not None:
        return code
    # no schedules asked for: one FIFO run under racesan+simsan
    from repro.race import run_schedule

    outcome = run_schedule(_app_runner(args, args.app))
    print(outcome.render())
    for item in outcome.race_findings + outcome.san_violations:
        print(item.render())
    return 1 if outcome.failed else 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory heterogeneity-aware runtime system "
                    "(IPDPSW 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper figures")
    p_exp.add_argument("--figures", nargs="*", metavar="FIG",
                       help="subset, e.g. fig1 fig8 (default: all)")
    p_exp.add_argument("--all", action="store_true",
                       help="run every figure (the default when --figures "
                            "is omitted)")
    p_exp.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_exp.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the simulation runs "
                            "(default 1 = in-process serial)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="run everything fresh, bypassing .repro-cache/")
    p_exp.add_argument("--cache-stats", action="store_true",
                       help="print cache hit/miss counts to stderr")
    p_exp.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default: .repro-cache/ at the "
                            "repo root)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default: .repro-cache/ at "
                              "the repo root)")
    p_cache.set_defaults(func=_cmd_cache)

    p_st = sub.add_parser("stencil", help="run Stencil3D once")
    _add_machine_args(p_st)
    p_st.add_argument("--total", default="2GiB")
    p_st.add_argument("--block", default="4MiB")
    p_st.add_argument("--iterations", type=int, default=5)
    p_st.set_defaults(func=_cmd_stencil)

    p_mm = sub.add_parser("matmul", help="run blocked MatMul once")
    _add_machine_args(p_mm)
    p_mm.add_argument("--working-set", default="1.5GiB")
    p_mm.add_argument("--block-dim", type=int, default=96)
    p_mm.set_defaults(func=_cmd_matmul)

    p_sp = sub.add_parser("spmv", help="run iterated SpMV once")
    _add_machine_args(p_sp)
    p_sp.add_argument("--block-rows", type=int, default=64)
    p_sp.add_argument("--block-bytes", default="8MiB")
    p_sp.add_argument("--vector-bytes", default="256KiB")
    p_sp.add_argument("--couplings", type=int, default=3)
    p_sp.add_argument("--iterations", type=int, default=5)
    p_sp.add_argument("--matrix-seed", type=int, default=0,
                      help="sparsity-pattern seed (column couplings)")
    p_sp.set_defaults(func=_cmd_spmv)

    p_sm = sub.add_parser("stream", help="STREAM bandwidth table (Fig 1)")
    p_sm.add_argument("--threads", type=int, default=64)
    p_sm.add_argument("--sanitize", action="store_true",
                      help="run under the repro.lint runtime sanitizer")
    p_sm.set_defaults(func=_cmd_stream)

    p_mx = sub.add_parser(
        "metrics", help="run one app under the telemetry subsystem")
    _add_machine_args(p_mx)
    p_mx.add_argument("--app", default="stencil",
                      choices=["stencil", "matmul", "spmv", "stream"])
    p_mx.add_argument("--watch", action="store_true",
                      help="narrate flight-recorder snapshot deltas live")
    # stencil shape
    p_mx.add_argument("--total", default="512MiB")
    p_mx.add_argument("--block", default="8MiB")
    p_mx.add_argument("--iterations", type=int, default=3)
    # matmul shape
    p_mx.add_argument("--working-set", default="256MiB")
    p_mx.add_argument("--block-dim", type=int, default=96)
    # spmv shape
    p_mx.add_argument("--block-rows", type=int, default=32)
    p_mx.add_argument("--block-bytes", default="8MiB")
    p_mx.add_argument("--vector-bytes", default="256KiB")
    p_mx.add_argument("--couplings", type=int, default=3)
    p_mx.add_argument("--matrix-seed", type=int, default=0)
    # stream shape
    p_mx.add_argument("--array", default="4MiB")
    p_mx.add_argument("--chares", type=int, default=64)
    p_mx.add_argument("--repeats", type=int, default=2)
    p_mx.set_defaults(func=_cmd_metrics)

    p_lint = sub.add_parser(
        "lint", help="check dependence declarations statically")
    p_lint.add_argument("targets", nargs="*", metavar="TARGET",
                        help="files, directories or importable module names")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--select", nargs="*", metavar="PREFIX",
                        help="only report rules matching these id prefixes "
                             "(e.g. --select REP3)")
    p_lint.add_argument("--guidance", metavar="PATH",
                        help="also write a bwlint placement-guidance file "
                             "for the lint targets")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "sarif"],
                        help="findings output: human text (default) or a "
                             "canonical SARIF 2.1.0 document on stdout")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="re-analyze even when a warm .repro-cache/ "
                             "entry exists for these targets")
    p_lint.set_defaults(func=_cmd_lint)

    p_guide = sub.add_parser(
        "guide", help="emit a bwlint placement-guidance file")
    p_guide.add_argument("targets", nargs="*", metavar="TARGET",
                         help="files, directories or importable module "
                              "names (default: repro.apps)")
    p_guide.add_argument("-o", "--output", metavar="PATH",
                         help="write here instead of stdout")
    p_guide.add_argument("--phases", action="store_true",
                         help="print the v2 phase timeline (deterministic "
                              "human-readable render) instead of the JSON")
    p_guide.add_argument("--no-cache", action="store_true",
                         help="re-analyze even when a warm .repro-cache/ "
                              "entry exists for these targets")
    p_guide.set_defaults(func=_cmd_guide)

    p_race = sub.add_parser(
        "race", help="race detector / placement model checker / "
                     "schedule explorer")
    p_race.add_argument("targets", nargs="*", metavar="TARGET",
                        help="files or directories to model-check "
                             "statically (default: the shipped strategies "
                             "and mover; implies --static)")
    p_race.add_argument("--static", action="store_true",
                        help="model-check the placement-state protocol "
                             "(REP2xx) instead of running an app")
    p_race.add_argument("--app", default="stencil",
                        choices=["stencil", "matmul", "spmv"])
    p_race.add_argument("--strategy", default="multi-io",
                        choices=sorted(STRATEGIES))
    p_race.add_argument("--cores", type=int, default=8)
    p_race.add_argument("--mcdram", default="128MiB")
    p_race.add_argument("--ddr", default="1GiB")
    p_race.add_argument("--explore-schedules", type=int, default=0,
                        metavar="N",
                        help="number of seeded schedule permutations "
                             "(0 = one FIFO run under racesan)")
    p_race.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes for seed exploration "
                             "(with --explore-schedules)")
    p_race.add_argument("--seed", type=int, default=None,
                        help="base seed (with --explore-schedules) or "
                             "single-schedule replay seed")
    p_race.add_argument("--limit", type=int, default=None,
                        help="decision limit of a minimized replay token")
    # stencil shape
    p_race.add_argument("--total", default="256MiB")
    p_race.add_argument("--block", default="16MiB")
    p_race.add_argument("--iterations", type=int, default=1)
    # matmul shape
    p_race.add_argument("--working-set", default="128MiB")
    p_race.add_argument("--block-dim", type=int, default=64)
    # spmv shape
    p_race.add_argument("--block-rows", type=int, default=16)
    p_race.add_argument("--block-bytes", default="8MiB")
    p_race.add_argument("--vector-bytes", default="256KiB")
    p_race.add_argument("--couplings", type=int, default=2)
    p_race.add_argument("--matrix-seed", type=int, default=0)
    p_race.set_defaults(func=_cmd_race)

    p_rep = sub.add_parser(
        "report", help="replicated figure sweep with stats + HTML report")
    p_rep.add_argument("--figures", nargs="*", metavar="FIG",
                       help="subset, e.g. fig2 fig8 (default: all)")
    p_rep.add_argument("--all", action="store_true",
                       help="run every figure (the default when --figures "
                            "is omitted)")
    p_rep.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_rep.add_argument("--replicates", type=int, default=3, metavar="N",
                       help="seeded schedule replicates per configuration "
                            "(default 3)")
    p_rep.add_argument("--baseline", default=None, metavar="SERIES",
                       help="series label to t-test the others against "
                            "(e.g. 'Single IO thread')")
    p_rep.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the simulation runs")
    p_rep.add_argument("-o", "--out", default="report.html", metavar="PATH",
                       help="HTML report path (default report.html)")
    p_rep.add_argument("--no-cache", action="store_true",
                       help="run everything fresh, bypassing .repro-cache/")
    p_rep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default: .repro-cache/ at the "
                            "repo root)")
    p_rep.set_defaults(func=_cmd_report)

    p_lb = sub.add_parser(
        "leaderboard", help="rank every strategy across every app "
                            "(replicated sweep + HTML report)")
    p_lb.add_argument("--apps", nargs="*", metavar="APP",
                      help="subset of apps (default: stencil matmul "
                           "spmv stream)")
    p_lb.add_argument("--strategies", nargs="*", metavar="NAME",
                      choices=sorted(STRATEGIES),
                      help="subset of strategies (default: all)")
    p_lb.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_lb.add_argument("--iterations", type=int, default=3,
                      help="app iterations per run (stencil/spmv)")
    p_lb.add_argument("--replicates", type=int, default=3, metavar="N",
                      help="seeded schedule replicates per cell "
                           "(default 3)")
    p_lb.add_argument("--baseline", default=None, metavar="STRATEGY",
                      help="strategy to Welch-t-test the others against "
                           "(e.g. multi-io)")
    p_lb.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                      help="worker processes for the simulation runs")
    p_lb.add_argument("-o", "--out", default="leaderboard.html",
                      metavar="PATH",
                      help="HTML report path (default leaderboard.html; "
                           "'' disables)")
    p_lb.add_argument("--no-cache", action="store_true",
                      help="run everything fresh, bypassing .repro-cache/")
    p_lb.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="cache location (default: .repro-cache/ at the "
                           "repo root)")
    p_lb.set_defaults(func=_cmd_leaderboard)

    p_tr = sub.add_parser(
        "trend", help="BENCH_*.json trend history + sparkline dashboard")
    p_tr.add_argument("action", choices=["append", "render"])
    p_tr.add_argument("--commit", default=None, metavar="SHA",
                      help="commit id for 'append' (default: $GITHUB_SHA, "
                           "then 'local')")
    p_tr.add_argument("--history", default=None, metavar="PATH",
                      help="history file (default: bench_history.jsonl at "
                           "the repo root)")
    p_tr.add_argument("-o", "--out", default="trend.html", metavar="PATH",
                      help="HTML dashboard path for 'render' "
                           "(default trend.html)")
    p_tr.set_defaults(func=_cmd_trend)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
