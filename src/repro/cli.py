"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Regenerate the paper's figures (all or a subset) and print the tables.
    ``-j/--jobs N`` fans the underlying simulation runs out over N worker
    processes; results are cached content-addressed in ``.repro-cache/``
    (key: canonical run spec + a fingerprint of ``src/repro``), so a
    re-run after an unrelated edit is answered from disk.  ``--no-cache``
    bypasses the cache, ``--cache-stats`` prints hit/miss counts to
    stderr.  Tables are byte-identical whatever ``--jobs`` is.
``cache``
    Inspect (``stats``) or delete (``clear``) the on-disk result cache.
``stencil`` / ``matmul``
    Run one application configuration under one strategy and report
    timings plus the OOC manager summary.  ``--sanitize`` runs under the
    :mod:`repro.lint` runtime sanitizer and fails on invariant violations.
``stream``
    Print the Figure-1 STREAM table (``--sanitize`` supported).
``lint``
    Statically check dependence declarations (``@entry`` vs kernel usage)
    and inferred memory traffic (bwlint, rules ``REP3xx``) in files,
    directories or importable modules.  Exit codes: 0 clean, 1 findings,
    2 the analyzer itself failed (the offending file and function are
    named on stderr).  ``--select REP3`` filters by rule-id prefix;
    ``--guidance PATH`` also writes a placement-guidance file.
``guide``
    Emit the bwlint placement-guidance file (canonical JSON, SHA-256
    identity) that ``--strategy static-guided`` consumes.
``metrics``
    Run one application under the :mod:`repro.metrics` telemetry
    subsystem and export the flight-recorder output (``--format
    prom|json|report``); ``--watch`` narrates snapshot deltas live.
    ``stencil``/``matmul`` also accept ``--metrics`` to append the same
    output to a normal run.
``race``
    The :mod:`repro.race` concurrency checkers: ``--static`` model-checks
    the placement-state protocol (rules ``REP2xx``) over the strategies
    and mover (or explicit targets); the dynamic mode runs one app under
    the happens-before race detector, exploring ``--explore-schedules N``
    seeded event orderings (``-j/--jobs`` explores seeds in parallel) and
    minimizing the first failure to a ``(--seed, --limit)`` replay token.
    ``stencil``/``matmul`` accept the same ``--race`` /
    ``--explore-schedules`` / ``--seed`` / ``--limit`` flags on a normal
    run.

Examples::

    python -m repro experiments --figures fig1 fig8 --scale small
    python -m repro experiments --all -j 8 --cache-stats
    python -m repro cache stats
    python -m repro stencil --strategy multi-io --total 2GiB --block 4MiB
    python -m repro matmul --strategy single-io --working-set 1.5GiB
    python -m repro lint src/repro/apps examples
    python -m repro stencil --sanitize --total 512MiB --block 8MiB
    python -m repro stencil --metrics --format report
    python -m repro metrics --app stencil --watch --format prom
    python -m repro race --static
    python -m repro race --app stencil --explore-schedules 8 -j 4
    python -m repro stencil --race --total 256MiB --block 16MiB
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench import experiments as exps
from repro.bench.harness import Scale
from repro.bench.report import render_experiment
from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import STRATEGIES
from repro.units import format_size, format_time, parse_size

__all__ = ["main"]

_SCALES = {"small": Scale.SMALL, "medium": Scale.MEDIUM, "full": Scale.FULL}


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--strategy", default="multi-io",
                        choices=sorted(STRATEGIES))
    parser.add_argument("--cores", type=int, default=64)
    parser.add_argument("--mcdram", default="1GiB",
                        help="HBM capacity (default 1GiB = 1/16 scale)")
    parser.add_argument("--ddr", default="6GiB",
                        help="DDR4 capacity (default 6GiB = 1/16 scale)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the repro.lint runtime sanitizer "
                             "(simsan); non-zero exit on violations")
    parser.add_argument("--metrics", action="store_true",
                        help="record repro.metrics telemetry and print it "
                             "after the run")
    parser.add_argument("--format", default="report",
                        choices=["prom", "json", "report"],
                        help="metrics output format (with --metrics)")
    parser.add_argument("--metrics-interval", type=float, default=0.02,
                        metavar="SIMSECONDS",
                        help="flight-recorder snapshot cadence in "
                             "simulated seconds (default 0.02)")
    parser.add_argument("--race", action="store_true",
                        help="run under the repro.race happens-before "
                             "detector (racesan); non-zero exit on races")
    parser.add_argument("--explore-schedules", type=int, default=0,
                        metavar="N",
                        help="re-run across N seeded event-order "
                             "permutations under racesan+simsan and "
                             "minimize the first failure")
    parser.add_argument("--seed", type=int, default=None,
                        help="schedule seed: base seed with "
                             "--explore-schedules, else replay one "
                             "permuted schedule")
    parser.add_argument("--limit", type=int, default=None,
                        help="decision limit of a minimized replay token "
                             "(with --seed)")


def _build(args: argparse.Namespace) -> _t.Any:
    return OOCRuntimeBuilder(
        args.strategy, cores=args.cores,
        mcdram_capacity=parse_size(args.mcdram),
        ddr_capacity=parse_size(args.ddr),
        trace=True).build()


def _start_sanitizer(args: argparse.Namespace) -> _t.Any:
    """Install the runtime sanitizer when ``--sanitize`` was given."""
    if not getattr(args, "sanitize", False):
        return None
    from repro.lint import SimSanitizer
    return SimSanitizer(mode="record").install()


def _finish_sanitizer(sanitizer: _t.Any, manager: _t.Any = None) -> int:
    """Quiescence-check, report and uninstall; returns the exit code."""
    if sanitizer is None:
        return 0
    try:
        if manager is not None:
            sanitizer.check_quiescent(manager)
        print(sanitizer.render())
    finally:
        sanitizer.uninstall()
    return 1 if sanitizer.violations else 0


def _start_racesan(args: argparse.Namespace, built: _t.Any) -> _t.Any:
    """Install the happens-before detector when ``--race`` was given."""
    if not getattr(args, "race", False):
        return None
    from repro.race import RaceSanitizer
    return RaceSanitizer().install(built.env)


def _finish_racesan(racesan: _t.Any) -> int:
    """Report and uninstall racesan; returns the exit code."""
    if racesan is None:
        return 0
    try:
        print(racesan.render_report())
    finally:
        racesan.uninstall()
    return 1 if racesan.findings else 0


def _app_runner(args: argparse.Namespace, app: str) -> _t.Any:
    """Build an explorer runner from the CLI's app/machine arguments."""
    from repro.race import matmul_runner, stencil_runner

    machine = dict(strategy=args.strategy, cores=args.cores,
                   mcdram=parse_size(args.mcdram), ddr=parse_size(args.ddr))
    if app == "stencil":
        return stencil_runner(total=parse_size(args.total),
                              block=parse_size(args.block),
                              iterations=args.iterations, **machine)
    return matmul_runner(working_set=parse_size(args.working_set),
                         block_dim=args.block_dim, **machine)


def _app_spec_params(args: argparse.Namespace, app: str) -> dict[str, _t.Any]:
    """The ``schedule`` RunSpec params matching :func:`_app_runner`."""
    params: dict[str, _t.Any] = dict(
        strategy=args.strategy, cores=args.cores,
        mcdram=parse_size(args.mcdram), ddr=parse_size(args.ddr))
    if app == "stencil":
        params.update(total=parse_size(args.total),
                      block=parse_size(args.block),
                      iterations=args.iterations)
    else:
        params.update(working_set=parse_size(args.working_set),
                      block_dim=args.block_dim)
    return params


def _explore_or_replay(args: argparse.Namespace, app: str) -> int | None:
    """Handle ``--explore-schedules`` / ``--seed`` schedule modes.

    Returns an exit code when one of the modes ran, None for a normal run.
    """
    schedules = getattr(args, "explore_schedules", 0)
    seed = getattr(args, "seed", None)
    if not schedules and seed is None:
        return None
    from repro.race import explore, run_schedule

    runner = _app_runner(args, app)
    if schedules:
        jobs = getattr(args, "jobs", 1)
        if jobs > 1:
            from repro.exec.explore import parallel_explore

            report = parallel_explore(
                app, _app_spec_params(args, app), schedules=schedules,
                base_seed=seed if seed is not None else 0, jobs=jobs,
                runner=runner)
        else:
            report = explore(runner, schedules=schedules,
                             base_seed=seed if seed is not None else 0)
        print(report.render())
        return 1 if report.failing else 0
    outcome = run_schedule(runner, seed, limit=getattr(args, "limit", None))
    print(outcome.render())
    for item in outcome.race_findings + outcome.san_violations:
        print(item.render())
    return 1 if outcome.failed else 0


def _start_metrics(args: argparse.Namespace, built: _t.Any,
                   app: str) -> _t.Any:
    """Open a :class:`repro.metrics.MetricsSession` when asked to."""
    if not getattr(args, "metrics", False):
        return None
    from repro.metrics import MetricsSession, narration_line

    on_snapshot = None
    if getattr(args, "watch", False):
        capacity = built.machine.hbm.capacity
        tier = built.machine.hbm.name

        def on_snapshot(snap, previous):  # noqa: ANN001 - callback
            print(narration_line(snap, previous, hbm_capacity=capacity,
                                 hbm_tier=tier))

    return MetricsSession(built, app=app,
                          cadence=getattr(args, "metrics_interval", 0.02),
                          on_snapshot=on_snapshot)


def _finish_metrics(session: _t.Any, args: argparse.Namespace,
                    app: str) -> None:
    """Stop the recorder and print the chosen export format."""
    if session is None:
        return
    from repro.metrics import (counter_series, render_report, to_json,
                               to_prometheus)

    recorder = session.finish()
    fmt = getattr(args, "format", "report")
    if fmt == "prom":
        print(to_prometheus(session.registry), end="")
    elif fmt == "json":
        print(to_json(session.registry, recorder, indent=2))
    else:
        print(render_report(session.registry, recorder, title=app))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.trace import export as trace_export

        payload = trace_export.to_json(
            session.built.runtime.tracer,
            counters=counter_series(recorder))
        with open(trace_out, "w") as fh:
            fh.write(payload)
        # stderr: keep stdout machine-parseable under ``--format json/prom``
        print(f"merged Chrome trace written to {trace_out}", file=sys.stderr)


def _progress_line(event: dict) -> None:
    """One stderr line per completed run (stdout stays table-only)."""
    print(f"[{event['done']}/{event['total']}] {event['status']:6s} "
          f"{event['spec'].display()} ({event['elapsed_s']:.2f}s)",
          file=sys.stderr)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache, run_specs

    scale = _SCALES[args.scale]
    names = list(args.figures or [])
    if args.all or not names:
        names = sorted(exps.PLANS)
    unknown = sorted(set(names) - set(exps.PLANS))
    if unknown:
        print(f"unknown figure(s) {unknown}; "
              f"choose from {sorted(exps.PLANS)}", file=sys.stderr)
        return 2
    plans = [exps.PLANS[name](scale) for name in names]
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    # one batch across all requested figures: shared runs (e.g. the
    # fig5/fig6 traced multi-io stencil) dedup to a single execution
    specs = [spec for plan in plans for spec in plan.specs]
    results = run_specs(specs, jobs=args.jobs, cache=cache,
                        progress=_progress_line)
    exit_code, idx = 0, 0
    for plan in plans:
        chunk = results[idx:idx + len(plan.specs)]
        idx += len(plan.specs)
        failed = [r for r in chunk if not r.ok]
        if failed:
            exit_code = 1
            for r in failed:
                print(f"{plan.figure}: {r.spec.display()}: {r.error}",
                      file=sys.stderr)
            continue
        print(render_experiment(plan.assemble([r.result for r in chunk])))
        print()
    if cache is not None and args.cache_stats:
        stats = cache.session_stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} store(s) in {cache.generation}",
              file=sys.stderr)
    return exit_code


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import cache_stats, clear_cache, default_cache_root

    root = args.cache_dir or default_cache_root()
    if args.action == "clear":
        removed = clear_cache(root)
        print(f"removed {removed} cached result(s) from {root}")
        return 0
    stats = cache_stats(root)
    print(f"cache root : {stats['root']}")
    print(f"current gen: {stats['current']}")
    for name, gen in sorted(stats["generations"].items()):
        marker = " (current)" if name == stats["current"] else ""
        print(f"  {name}: {gen['entries']} entries, "
              f"{gen['bytes']} bytes{marker}")
    print(f"total      : {stats['total_entries']} entries, "
          f"{stats['total_bytes']} bytes")
    return 0


def _cmd_stencil(args: argparse.Namespace) -> int:
    code = _explore_or_replay(args, "stencil")
    if code is not None:
        return code
    sanitizer = _start_sanitizer(args)
    built = _build(args)
    if sanitizer is not None:
        sanitizer.bind(built.manager)
    racesan = _start_racesan(args, built)
    metrics = _start_metrics(args, built, "stencil")
    cfg = StencilConfig(total_bytes=parse_size(args.total),
                        block_bytes=parse_size(args.block),
                        iterations=args.iterations)
    app = Stencil3D(built, cfg)
    result = app.run()
    print(f"strategy        : {args.strategy}")
    print(f"chares          : {cfg.n_chares} "
          f"({format_size(cfg.block_bytes)} blocks)")
    print(f"total time      : {format_time(result.total_time)}")
    print(f"mean iteration  : {format_time(result.mean_iteration_time)}")
    print(f"mean kernel/task: {format_time(result.mean_kernel_time)}")
    for key, value in built.manager.summary().items():
        print(f"{key:16s}: {value}")
    from repro.trace.occupancy import render_occupancy
    print("hbm occupancy   :")
    print(render_occupancy(built.manager.occupancy_log,
                           built.machine.hbm.capacity, width=60))
    _finish_metrics(metrics, args, "stencil")
    race_code = _finish_racesan(racesan)
    return max(race_code, _finish_sanitizer(sanitizer, built.manager))


def _cmd_matmul(args: argparse.Namespace) -> int:
    code = _explore_or_replay(args, "matmul")
    if code is not None:
        return code
    sanitizer = _start_sanitizer(args)
    built = _build(args)
    if sanitizer is not None:
        sanitizer.bind(built.manager)
    racesan = _start_racesan(args, built)
    metrics = _start_metrics(args, built, "matmul")
    cfg = MatMulConfig.for_working_set(parse_size(args.working_set),
                                       block_dim=args.block_dim)
    app = MatMul(built, cfg)
    result = app.run()
    print(f"strategy        : {args.strategy}")
    print(f"matrix          : {cfg.n} x {cfg.n} "
          f"({cfg.grid}x{cfg.grid} chares)")
    print(f"total time      : {format_time(result.total_time)}")
    print(f"mean kernel/task: {format_time(result.mean_kernel_time)}")
    for key, value in built.manager.summary().items():
        print(f"{key:16s}: {value}")
    _finish_metrics(metrics, args, "matmul")
    race_code = _finish_racesan(racesan)
    return max(race_code, _finish_sanitizer(sanitizer, built.manager))


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one app under the telemetry subsystem and export the metrics."""
    args.metrics = True
    built = _build(args)
    metrics = _start_metrics(args, built, args.app)
    if args.app == "stencil":
        cfg = StencilConfig(total_bytes=parse_size(args.total),
                            block_bytes=parse_size(args.block),
                            iterations=args.iterations)
        Stencil3D(built, cfg).run()
    elif args.app == "matmul":
        cfg = MatMulConfig.for_working_set(parse_size(args.working_set),
                                           block_dim=args.block_dim)
        MatMul(built, cfg).run()
    else:
        from repro.apps.stream_app import StreamApp, StreamAppConfig

        cfg = StreamAppConfig(array_bytes=parse_size(args.array),
                              chares=args.chares, repeats=args.repeats)
        StreamApp(built, cfg).run()
    _finish_metrics(metrics, args, args.app)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    sanitizer = _start_sanitizer(args)
    print(render_experiment(exps.fig1_stream_bandwidth(
        threads=args.threads)))
    return _finish_sanitizer(sanitizer)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import RULES, AnalyzerCrash, check_paths

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.id} {rule.severity.value:7s} {rule.title}")
            print(f"    {rule.description}")
        return 0
    if not args.targets:
        print("lint: no targets given (files, directories or module names)",
              file=sys.stderr)
        return 2
    try:
        report = check_paths(args.targets)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except AnalyzerCrash as exc:
        # the analyzer itself broke: exit 2 naming the offending spot so
        # a bug in the checker is never mistaken for a clean tree
        print(f"lint: internal error in {exc.file}, "
              f"function {exc.function}: "
              f"{type(exc.cause).__name__}: {exc.cause}", file=sys.stderr)
        return 2
    except (OSError, UnicodeDecodeError, ImportError) as exc:
        # internal/environment failure, not a lint verdict: exit 2 so
        # callers can tell "findings" (1) from "the run itself broke"
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return 2
    findings = list(report)
    if args.select:
        prefixes = tuple(args.select)
        findings = [f for f in findings if f.rule.startswith(prefixes)]
    for finding in findings:
        print(finding.render())
    from repro.lint.findings import Severity
    errors = [f for f in findings if f.severity is Severity.ERROR]
    warnings = [f for f in findings if f.severity is Severity.WARNING]
    print(f"{len(errors)} error(s), {len(warnings)} warning(s)")
    if args.guidance:
        from repro.lint import build_guidance
        guide = build_guidance(args.targets)
        guide.write(args.guidance)
        print(f"guidance for {len(guide.sites)} site(s) written to "
              f"{args.guidance} (sha256 {guide.identity()[:16]})",
              file=sys.stderr)
    ok = not errors and not (args.strict and warnings)
    return 0 if ok else 1


def _cmd_guide(args: argparse.Namespace) -> int:
    """Emit a bwlint placement-guidance file for the given sources."""
    from repro.lint import AnalyzerCrash, build_guidance

    targets = args.targets or ["repro.apps"]
    try:
        guide = build_guidance(targets)
    except FileNotFoundError as exc:
        print(f"guide: {exc}", file=sys.stderr)
        return 2
    except AnalyzerCrash as exc:
        print(f"guide: internal error in {exc.file}, "
              f"function {exc.function}: "
              f"{type(exc.cause).__name__}: {exc.cause}", file=sys.stderr)
        return 2
    if args.output:
        guide.write(args.output)
        print(f"guidance for {len(guide.sites)} site(s) written to "
              f"{args.output} (sha256 {guide.identity()[:16]})",
              file=sys.stderr)
    else:
        print(guide.dumps(), end="")
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    if args.static or args.targets:
        from repro.race import check_paths, default_targets

        targets = args.targets or default_targets()
        try:
            report = check_paths(targets)
        except FileNotFoundError as exc:
            print(f"race: {exc}", file=sys.stderr)
            return 2
        except (OSError, UnicodeDecodeError) as exc:
            print(f"race: internal error: {exc}", file=sys.stderr)
            return 2
        for finding in report:
            print(finding.render())
        print(f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        return 0 if report.ok(strict=True) else 1
    code = _explore_or_replay(args, args.app)
    if code is not None:
        return code
    # no schedules asked for: one FIFO run under racesan+simsan
    from repro.race import run_schedule

    outcome = run_schedule(_app_runner(args, args.app))
    print(outcome.render())
    for item in outcome.race_findings + outcome.san_violations:
        print(item.render())
    return 1 if outcome.failed else 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory heterogeneity-aware runtime system "
                    "(IPDPSW 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper figures")
    p_exp.add_argument("--figures", nargs="*", metavar="FIG",
                       help="subset, e.g. fig1 fig8 (default: all)")
    p_exp.add_argument("--all", action="store_true",
                       help="run every figure (the default when --figures "
                            "is omitted)")
    p_exp.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_exp.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the simulation runs "
                            "(default 1 = in-process serial)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="run everything fresh, bypassing .repro-cache/")
    p_exp.add_argument("--cache-stats", action="store_true",
                       help="print cache hit/miss counts to stderr")
    p_exp.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default: .repro-cache/ at the "
                            "repo root)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default: .repro-cache/ at "
                              "the repo root)")
    p_cache.set_defaults(func=_cmd_cache)

    p_st = sub.add_parser("stencil", help="run Stencil3D once")
    _add_machine_args(p_st)
    p_st.add_argument("--total", default="2GiB")
    p_st.add_argument("--block", default="4MiB")
    p_st.add_argument("--iterations", type=int, default=5)
    p_st.set_defaults(func=_cmd_stencil)

    p_mm = sub.add_parser("matmul", help="run blocked MatMul once")
    _add_machine_args(p_mm)
    p_mm.add_argument("--working-set", default="1.5GiB")
    p_mm.add_argument("--block-dim", type=int, default=96)
    p_mm.set_defaults(func=_cmd_matmul)

    p_sm = sub.add_parser("stream", help="STREAM bandwidth table (Fig 1)")
    p_sm.add_argument("--threads", type=int, default=64)
    p_sm.add_argument("--sanitize", action="store_true",
                      help="run under the repro.lint runtime sanitizer")
    p_sm.set_defaults(func=_cmd_stream)

    p_mx = sub.add_parser(
        "metrics", help="run one app under the telemetry subsystem")
    _add_machine_args(p_mx)
    p_mx.add_argument("--app", default="stencil",
                      choices=["stencil", "matmul", "stream"])
    p_mx.add_argument("--watch", action="store_true",
                      help="narrate flight-recorder snapshot deltas live")
    p_mx.add_argument("--trace-out", metavar="PATH",
                      help="also write a Chrome trace with metrics counter "
                           "tracks merged in (open in Perfetto)")
    # stencil shape
    p_mx.add_argument("--total", default="512MiB")
    p_mx.add_argument("--block", default="8MiB")
    p_mx.add_argument("--iterations", type=int, default=3)
    # matmul shape
    p_mx.add_argument("--working-set", default="256MiB")
    p_mx.add_argument("--block-dim", type=int, default=96)
    # stream shape
    p_mx.add_argument("--array", default="4MiB")
    p_mx.add_argument("--chares", type=int, default=64)
    p_mx.add_argument("--repeats", type=int, default=2)
    p_mx.set_defaults(func=_cmd_metrics)

    p_lint = sub.add_parser(
        "lint", help="check dependence declarations statically")
    p_lint.add_argument("targets", nargs="*", metavar="TARGET",
                        help="files, directories or importable module names")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--select", nargs="*", metavar="PREFIX",
                        help="only report rules matching these id prefixes "
                             "(e.g. --select REP3)")
    p_lint.add_argument("--guidance", metavar="PATH",
                        help="also write a bwlint placement-guidance file "
                             "for the lint targets")
    p_lint.set_defaults(func=_cmd_lint)

    p_guide = sub.add_parser(
        "guide", help="emit a bwlint placement-guidance file")
    p_guide.add_argument("targets", nargs="*", metavar="TARGET",
                         help="files, directories or importable module "
                              "names (default: repro.apps)")
    p_guide.add_argument("-o", "--output", metavar="PATH",
                         help="write here instead of stdout")
    p_guide.set_defaults(func=_cmd_guide)

    p_race = sub.add_parser(
        "race", help="race detector / placement model checker / "
                     "schedule explorer")
    p_race.add_argument("targets", nargs="*", metavar="TARGET",
                        help="files or directories to model-check "
                             "statically (default: the shipped strategies "
                             "and mover; implies --static)")
    p_race.add_argument("--static", action="store_true",
                        help="model-check the placement-state protocol "
                             "(REP2xx) instead of running an app")
    p_race.add_argument("--app", default="stencil",
                        choices=["stencil", "matmul"])
    p_race.add_argument("--strategy", default="multi-io",
                        choices=sorted(STRATEGIES))
    p_race.add_argument("--cores", type=int, default=8)
    p_race.add_argument("--mcdram", default="128MiB")
    p_race.add_argument("--ddr", default="1GiB")
    p_race.add_argument("--explore-schedules", type=int, default=0,
                        metavar="N",
                        help="number of seeded schedule permutations "
                             "(0 = one FIFO run under racesan)")
    p_race.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes for seed exploration "
                             "(with --explore-schedules)")
    p_race.add_argument("--seed", type=int, default=None,
                        help="base seed (with --explore-schedules) or "
                             "single-schedule replay seed")
    p_race.add_argument("--limit", type=int, default=None,
                        help="decision limit of a minimized replay token")
    # stencil shape
    p_race.add_argument("--total", default="256MiB")
    p_race.add_argument("--block", default="16MiB")
    p_race.add_argument("--iterations", type=int, default=1)
    # matmul shape
    p_race.add_argument("--working-set", default="128MiB")
    p_race.add_argument("--block-dim", type=int, default=64)
    p_race.set_defaults(func=_cmd_race)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
