#!/usr/bin/env python
"""Flat mode + runtime prefetch vs KNL cache mode (paper future work).

The paper's §I motivates software management over hardware caching:
"caching could result in increased latency from conflict misses or
capacity misses", and §V promises a cache-mode comparison "in the future".
This ablation performs it on the model:

* **flat + multi-io** — the paper's system;
* **cache mode** — MCDRAM as a direct-mapped cache of DDR4: kernels see
  the miss-rate-dependent effective bandwidth of the cache model.

The crossover the model predicts: cache mode is competitive while the
per-iteration working set stays well under 16 GB (few conflict misses),
but degrades sharply once the sweep exceeds MCDRAM, while the runtime's
explicit prefetch keeps kernels at HBM speed.
"""

from repro import MemoryMode, OOCRuntimeBuilder, Stencil3D, StencilConfig
from repro.machine.knl import build_knl
from repro.sim.environment import Environment
from repro.units import GiB, MiB, format_time

SCALE = 16
MCDRAM = 16 * GiB // SCALE
DDR = 96 * GiB // SCALE


def flat_prefetch_time(total, block):
    built = OOCRuntimeBuilder("multi-io", cores=64, mcdram_capacity=MCDRAM,
                              ddr_capacity=DDR, trace=False).build()
    cfg = StencilConfig(total_bytes=total, block_bytes=block, iterations=5)
    return Stencil3D(built, cfg).run().total_time


def cache_mode_time(total, block):
    """Analytic cache-mode estimate for the same sweep workload."""
    node = build_knl(Environment(), memory_mode=MemoryMode.CACHE,
                     mcdram_capacity=MCDRAM, ddr_capacity=DDR)
    cfg = StencilConfig(total_bytes=total, block_bytes=block, iterations=5)
    bytes_per_iter = 2 * total * cfg.sweep_traffic_factor
    kernel_time = node.mcdram_cache.sweep_time(total, bytes_per_iter * 5)
    compute_floor = (cfg.flops_per_task * cfg.n_chares * 5
                     / (node.config.core_flops * len(node.cores)))
    return max(kernel_time, compute_floor)


def main():
    print(f"Stencil3D, 5 iterations, capacities scaled 1/{SCALE}\n")
    print(f"{'working set':>12s} {'flat+multi-io':>14s} {'cache mode':>12s} "
          f"{'flat wins by':>12s}")
    for ws_factor in (0.5, 0.9, 1.5, 2.0, 3.0):
        total = int(MCDRAM * ws_factor)
        block = 2 * MiB
        flat = flat_prefetch_time(total, block)
        cache = cache_mode_time(total, block)
        print(f"{ws_factor:>10.1f}x  {format_time(flat):>14s} "
              f"{format_time(cache):>12s} {cache / flat:>11.2f}x")


if __name__ == "__main__":
    main()
