#!/usr/bin/env python
"""Quickstart: annotate a bandwidth-sensitive task and run it out-of-core.

Mirrors the paper's §IV-A example: a chare declares two data blocks
(``CkIOHandle<double> A, B``) and a ``[prefetch]`` entry method

    entry [prefetch] void compute_kernel() [readwrite: A, writeonly: B]

then runs on a KNL-class node whose HBM is too small for the whole working
set, under the "Multiple queues, Multiple IO threads" strategy.
"""

from repro import OOCRuntimeBuilder, Chare, entry
from repro.units import GiB, MiB, format_size, format_time


class Compute(Chare):
    """One over-decomposed work unit."""

    @entry
    def setup(self, nbytes, barrier):
        # CkIOHandle declarations: the runtime tracks these blocks.
        self.A = self.declare_block("A", nbytes)
        self.B = self.declare_block("B", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["A"], writeonly=["B"])
    def compute_kernel(self, reducer):
        # The runtime guarantees A and B are in HBM when this body runs.
        result = yield from self.kernel(
            flops=2e9, reads=[self.A], writes=[self.A, self.B])
        reducer.contribute(result.duration)


def main():
    # A scaled-down KNL: 1 GiB of HBM, 8 GiB of DDR4, 16 cores.
    built = OOCRuntimeBuilder(
        "multi-io", cores=16,
        mcdram_capacity=1 * GiB, ddr_capacity=8 * GiB).build()
    rt = built.runtime

    # 64 chares x 2 x 32 MiB = 4 GiB total working set >> 1 GiB HBM.
    n_chares, block = 64, 32 * MiB
    workers = rt.create_array(Compute, n_chares)

    barrier = rt.reducer(n_chares)
    workers.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()   # everything starts on DDR4

    for iteration in range(3):
        reducer = rt.reducer(n_chares, combiner=sum)
        workers.broadcast("compute_kernel", reducer)
        kernel_time = rt.run_until(reducer.done)
        print(f"iteration {iteration}: simulated wall clock "
              f"{format_time(built.env.now)}, total kernel time "
              f"{format_time(kernel_time)}")

    summary = built.manager.summary()
    print(f"\nstrategy            : {summary['strategy']}")
    print(f"tasks completed     : {summary['tasks_completed']}")
    print(f"blocks fetched      : {summary['fetches']} "
          f"({format_size(summary['bytes_fetched'])})")
    print(f"blocks evicted      : {summary['evictions']} "
          f"({format_size(summary['bytes_evicted'])})")
    print(f"peak HBM in use     : {format_size(summary['hbm_peak_used'])}")


if __name__ == "__main__":
    main()
