#!/usr/bin/env python
"""STREAM bandwidth on the simulated KNL (paper Figure 1).

Measures copy/scale/add/triad on both memory nodes two ways:

1. bare-machine (:func:`repro.machine.stream.run_stream`) — the paper's
   standalone STREAM run;
2. through the full annotated runtime (:class:`repro.apps.StreamApp`) —
   showing the ``[prefetch]`` API on the simplest workload.
"""

from repro import OOCRuntimeBuilder, StreamApp, StreamAppConfig, build_knl
from repro.machine.stream import STREAM_KERNELS, run_stream
from repro.sim.environment import Environment
from repro.units import GB, GiB, MiB, format_bandwidth


def bare_machine():
    print("bare machine (64 threads):")
    node = build_knl(Environment())
    ratios = []
    for kernel in STREAM_KERNELS:
        row = {}
        for device in ("ddr4", "mcdram"):
            result = run_stream(node, device, kernel=kernel, threads=64)
            row[device] = result.bandwidth
        ratios.append(row["mcdram"] / row["ddr4"])
        print(f"  {kernel:6s} ddr4={format_bandwidth(row['ddr4']):>10s} "
              f"mcdram={format_bandwidth(row['mcdram']):>10s} "
              f"ratio={row['mcdram'] / row['ddr4']:.2f}x")
    print(f"  -> MCDRAM over DDR4: {min(ratios):.2f}-{max(ratios):.2f}x "
          "(paper: 'over 4X')")


def through_runtime():
    print("\nthrough the annotated runtime (StreamApp, 64 chares):")
    for placement in ("ddr-only", "hbm-only"):
        built = OOCRuntimeBuilder(placement, cores=64,
                                  mcdram_capacity=16 * GiB,
                                  ddr_capacity=96 * GiB, trace=False).build()
        cfg = StreamAppConfig(kernel="triad", array_bytes=64 * MiB,
                              chares=64, repeats=3)
        result = StreamApp(built, cfg).run()
        print(f"  triad on {placement:9s}: "
              f"{format_bandwidth(result.bandwidth)}")


if __name__ == "__main__":
    bare_machine()
    through_runtime()
