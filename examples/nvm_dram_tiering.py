#!/usr/bin/env python
"""NVM+DRAM tiering: the paper's conclusion, demonstrated.

"Architectures with heterogeneity in both latency and bandwidth would
benefit even more" — the scheduling strategies are tier-agnostic, so the
same annotated Stencil3D runs unchanged on an Optane-class NVM + DRAM
node, and the prefetch win grows with the fast/slow gap.
"""

from repro import OOCRuntimeBuilder, Stencil3D, StencilConfig
from repro.config import nvm_dram_config
from repro.units import GiB, MiB, format_time

FAST = 1 * GiB
SLOW = 6 * GiB
TOTAL = 2 * GiB
BLOCK = 4 * MiB


def run(strategy, machine_config=None):
    if machine_config is not None:
        built = OOCRuntimeBuilder(strategy, trace=False,
                                  machine_config=machine_config).build()
    else:
        built = OOCRuntimeBuilder(strategy, cores=64, mcdram_capacity=FAST,
                                  ddr_capacity=SLOW, trace=False).build()
    cfg = StencilConfig(total_bytes=TOTAL, block_bytes=BLOCK, iterations=5)
    return Stencil3D(built, cfg).run()


def main():
    nvm = nvm_dram_config(cores=64, dram_capacity=FAST, nvm_capacity=SLOW)
    print("Stencil3D, 2 GiB grid over a 1 GiB fast tier, 5 iterations\n")
    print(f"{'machine':>10s} {'strategy':>10s} {'total':>12s} {'speedup':>8s}")
    for label, machine in (("KNL", None), ("NVM+DRAM", nvm)):
        naive = run("naive", machine)
        multi = run("multi-io", machine)
        for name, result in (("naive", naive), ("multi-io", multi)):
            speedup = naive.total_time / result.total_time
            print(f"{label:>10s} {name:>10s} "
                  f"{format_time(result.total_time):>12s} {speedup:>7.2f}x")
    print("\nThe multi-IO advantage grows when the slow tier is worse in "
          "both bandwidth and latency — the paper's conclusion, verified.")


if __name__ == "__main__":
    main()
