#!/usr/bin/env python
"""Jacobi 2-D: data-dependent termination under the prefetch runtime.

The paper's driver loop is ``while not converged`` (Algorithm 2) even
though its evaluation runs a fixed 20 iterations.  This example closes
that loop: the reduction carries a real residual (computed on a coarse
functional mirror of each block), and the run stops when it crosses the
tolerance — demonstrating that the out-of-core machinery composes with
convergence-driven control flow, not just fixed iteration counts.
"""

from repro import Jacobi2D, JacobiConfig, OOCRuntimeBuilder
from repro.units import GiB, MiB, format_time


def main():
    for strategy in ("hbm-only", "multi-io"):
        built = OOCRuntimeBuilder(
            strategy, cores=16, mcdram_capacity=1 * GiB,
            ddr_capacity=2 * GiB, trace=False).build()
        cfg = JacobiConfig(chare_grid=6, block_bytes=16 * MiB,
                           tolerance=5e-3, max_iterations=200)
        result = Jacobi2D(built, cfg, seed=1).run()
        marker = "converged" if result.converged else "hit iteration cap"
        print(f"{strategy:9s}: {marker} after {result.iterations_run} "
              f"iterations, residual {result.final_residual:.2e}, "
              f"simulated {format_time(result.total_time)}")
    print("\nresidual trajectory (multi-io):",
          " ".join(f"{r:.3f}" for r in result.residual_history[:8]), "...")


if __name__ == "__main__":
    main()
