#!/usr/bin/env python
"""Multi-node out-of-core Stencil3D (paper future work).

Weak-scales the Figure-8 scenario across 1-4 KNL-class nodes connected by
an Omni-Path-class fabric: each node keeps its own slab out-of-core with
per-PE IO threads, and slab faces cross the network between iterations.
The scheduling layer is reused unchanged — the composition the paper's
conclusion anticipates.
"""

from repro.apps.stencil3d import StencilConfig
from repro.cluster import Cluster, ClusterStencil
from repro.units import GiB, MiB, format_size, format_time

NODE = dict(strategy="multi-io", cores=64, mcdram_capacity=1 * GiB,
            ddr_capacity=6 * GiB, trace=False)


def main():
    cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=4 * MiB,
                        iterations=5)
    print("per-node grid 2 GiB (1 GiB HBM), multi-io, 5 iterations\n")
    print(f"{'nodes':>6s} {'global grid':>12s} {'mean iter':>12s} "
          f"{'halo traffic':>13s}")
    baseline = None
    for n in (1, 2, 4):
        cluster = Cluster(n, **NODE)
        result = ClusterStencil(cluster, cfg).run()
        if baseline is None:
            baseline = result.mean_iteration_time
        efficiency = baseline / result.mean_iteration_time
        print(f"{n:>6d} {format_size(n * cfg.total_bytes):>12s} "
              f"{format_time(result.mean_iteration_time):>12s} "
              f"{format_size(result.remote_bytes):>13s}  "
              f"(weak-scaling efficiency {efficiency:.0%})")


if __name__ == "__main__":
    main()
