#!/usr/bin/env python
"""Iterated SpMV: when does memory tiering pay?

Sweeps the matrix size across the HBM boundary and shows the two regimes
the paper's design implies:

* working set fits in HBM  -> after a one-time fetch, every iteration runs
  at HBM speed: large wins over DDR4-only;
* working set >> HBM, one sweep per iteration, no intra-iteration reuse ->
  moving bytes costs as much as computing on them in place: tiering is
  honest about its limits (Naive/DDR4-only are competitive).

This is the boundary HPC practitioners actually need to know about before
adopting a tiering runtime.
"""

from repro import LRUEviction, OOCRuntimeBuilder
from repro.apps.spmv import SpMV, SpMVConfig
from repro.units import GiB, MiB, format_size, format_time

HBM = 256 * MiB
DDR = 4 * GiB


def run(strategy, block_rows, eviction=None):
    built = OOCRuntimeBuilder(strategy, cores=32, mcdram_capacity=HBM,
                              ddr_capacity=DDR, eviction=eviction,
                              trace=False).build()
    cfg = SpMVConfig(block_rows=block_rows, block_bytes=4 * MiB,
                     iterations=8)
    return SpMV(built, cfg).run()


def main():
    print(f"HBM {format_size(HBM)}, 8 iterations, 4 MiB matrix blocks\n")
    print(f"{'matrix':>10s} {'vs HBM':>7s} {'ddr-only':>12s} "
          f"{'own-blocks':>11s} {'lru':>6s}")
    for block_rows in (16, 48, 64, 128, 256):
        matrix = block_rows * 4 * MiB
        ddr = run("ddr-only", block_rows)
        own = run("multi-io", block_rows)
        lru = run("multi-io", block_rows, eviction=LRUEviction())
        print(f"{format_size(matrix):>10s} {matrix / HBM:>6.1f}x "
              f"{format_time(ddr.total_time):>12s} "
              f"{ddr.total_time / own.total_time:>10.2f}x "
              f"{ddr.total_time / lru.total_time:>5.2f}x")
    print("\nFor iterative workloads that FIT in HBM, the paper's eager "
          "own-blocks\neviction discards blocks between iterations; "
          "demand-only LRU keeps them\nresident and recovers the full "
          "reuse win.  Out of core (>1x), both face\nthe same streaming "
          "floor.")


if __name__ == "__main__":
    main()
