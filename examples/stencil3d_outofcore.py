#!/usr/bin/env python
"""Out-of-core Stencil3D across all scheduling strategies (paper §V-A).

Runs the Figure-8 scenario at 1/16 of the paper's sizes (the shape is
scale-invariant): a 2 GiB grid against a 1 GiB HBM, 20 iterations,
comparing the Naive baseline against DDR4-only and the three prefetch
strategies, then prints a Projections-style timeline for the winner and
the laggard (the paper's Figure 5 comparison).
"""

from repro import OOCRuntimeBuilder, Stencil3D, StencilConfig
from repro.trace.projections import build_report
from repro.trace.render import render_usage_bars
from repro.units import GiB, MiB, format_time

MCDRAM = 1 * GiB          # 16 GiB / 16
DDR = 6 * GiB             # 96 GiB / 16
TOTAL = 2 * GiB           # 32 GiB / 16
BLOCK = 4 * MiB           # 64 MiB / 16  (reduced WS = 4 GiB / 16)
ITERATIONS = 20

STRATEGIES = ["naive", "ddr-only", "single-io", "no-io", "multi-io"]


def run(strategy, trace=False):
    built = OOCRuntimeBuilder(
        strategy, cores=64, mcdram_capacity=MCDRAM, ddr_capacity=DDR,
        trace=trace).build()
    cfg = StencilConfig(total_bytes=TOTAL, block_bytes=BLOCK,
                        iterations=ITERATIONS)
    app = Stencil3D(built, cfg)
    return built, app.run()


def main():
    print(f"Stencil3D: {TOTAL // GiB} GiB grid, "
          f"{BLOCK // MiB} MiB blocks, {ITERATIONS} iterations\n")
    times = {}
    for strategy in STRATEGIES:
        built, result = run(strategy)
        times[strategy] = result.total_time
        print(f"{strategy:10s} total={format_time(result.total_time):>10s} "
              f"kernel/task={format_time(result.mean_kernel_time):>10s} "
              f"fetches={built.strategy.fetches:5d} "
              f"evictions={built.strategy.evictions:5d}")

    base = times["naive"]
    print("\nspeedup vs Naive (paper Figure 8):")
    for strategy in STRATEGIES:
        bar = "#" * int(20 * base / times[strategy])
        print(f"  {strategy:10s} {base / times[strategy]:5.2f}  {bar}")

    print("\nProjections comparison (paper Figure 5): single vs multi IO")
    for strategy in ("single-io", "multi-io"):
        built, _ = run(strategy, trace=True)
        report = build_report(built.runtime.tracer)
        print(f"\n[{strategy}] mean worker utilization "
              f"{report.mean_utilization():.1%}, wait fraction "
              f"{report.mean_wait_fraction():.1%}")
        bars = render_usage_bars(report, width=40).splitlines()
        # show the window line and the first four worker lanes
        wanted = ("window", "pe0 ", "pe1 ", "pe2 ", "pe3 ")
        print("\n".join(line for line in bars if line.startswith(wanted)))


if __name__ == "__main__":
    main()
