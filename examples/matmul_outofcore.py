#!/usr/bin/env python
"""Out-of-core blocked MatMul across strategies (paper §V-B, Figure 9).

Sweeps the total working set (A+B+C) the way the paper does — the Naive
baseline degrades as more of the read-only panels spill to DDR4, while the
prefetch strategies keep serving kernels from HBM.  Also demonstrates the
reference-counting reuse effect: shared panels are fetched far fewer times
than they are used.
"""

from repro import MatMul, MatMulConfig, OOCRuntimeBuilder
from repro.units import GiB, format_size, format_time

SCALE = 32  # 1/32 of the paper's capacities; ratios preserved
MCDRAM = 16 * GiB // SCALE
DDR = 96 * GiB // SCALE

STRATEGIES = ["naive", "ddr-only", "single-io", "no-io", "multi-io"]


def run(strategy, total_ws):
    built = OOCRuntimeBuilder(
        strategy, cores=64, mcdram_capacity=MCDRAM, ddr_capacity=DDR,
        trace=False).build()
    cfg = MatMulConfig.for_working_set(total_ws, block_dim=96)
    app = MatMul(built, cfg)
    result = app.run()
    return built, app, cfg, result


def main():
    for ws_gb in (24, 36, 54):
        total_ws = ws_gb * GiB // SCALE
        print(f"\n=== total working set {ws_gb} GB (scaled to "
              f"{format_size(total_ws)}) ===")
        times = {}
        for strategy in STRATEGIES:
            built, app, cfg, result = run(strategy, total_ws)
            times[strategy] = result.total_time
            print(f"{strategy:10s} total={format_time(result.total_time):>10s} "
                  f"kernel/task={format_time(result.mean_kernel_time):>9s} "
                  f"moved={format_size(built.strategy.bytes_fetched):>10s}")
        base = times["naive"]
        print("speedup vs Naive (paper Figure 9):")
        for strategy in STRATEGIES:
            print(f"  {strategy:10s} {base / times[strategy]:5.2f}")

    # The reuse effect behind Figure 9's "single IO thread performs as
    # well": read-only panels are used by `grid` tasks but fetched rarely.
    built, app, cfg, _ = run("single-io", 24 * GiB // SCALE)
    panel = app.panels.panel("A", 0)
    uses = cfg.grid
    moves = panel.bytes_moved / panel.nbytes
    print(f"\npanel A_0: used by {uses} tasks, moved {moves:.0f} times "
          "(fetch+evict) — refcount-gated reuse in action")


if __name__ == "__main__":
    main()
