"""CLI tests for `repro lint` and the `--sanitize` run flag."""

import os

from repro.cli import main
from repro.lint import hooks

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "lint_bad_chare.py")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


class TestLintCommand:
    def test_clean_targets_exit_zero(self, capsys):
        assert main(["lint", os.path.join(SRC, "apps")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_module_name_target(self, capsys):
        assert main(["lint", "repro.apps.stencil3d"]) == 0

    def test_seeded_fixture_exits_nonzero_with_anchor(self, capsys):
        assert main(["lint", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "REP102" in out
        assert f"{FIXTURE}:25" in out  # file:line anchor

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        target = tmp_path / "warn_only.py"
        target.write_text(
            "class C(Chare):\n"
            "    @entry\n"
            "    def go(self):\n"
            "        yield from self.kernel(flops=1, reads=[self.a],\n"
            "                               writes=[])\n")
        assert main(["lint", str(target)]) == 0
        assert main(["lint", "--strict", str(target)]) == 1
        assert "REP108" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "no.such.module.anywhere"]) == 2
        assert "lint:" in capsys.readouterr().err

    def test_no_targets_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_findings_exit_one_not_two(self, capsys):
        # exit codes are a contract: 1 = verdict with findings, 2 = the
        # run itself failed (bad args / internal error)
        assert main(["lint", FIXTURE]) == 1
        assert capsys.readouterr().err == ""

    def test_internal_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "not_utf8.py"
        target.write_bytes(b"x = 1\n\xff\xfe\x00bad\n")
        assert main(["lint", str(target)]) == 2
        err = capsys.readouterr().err
        assert "lint: internal error" in err

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out and "SAN205" in out


class TestSelectAndCrash:
    def test_select_filters_to_prefix(self, capsys):
        # the fixture has REP1xx findings but no REP3xx ones: selecting
        # the bwlint family flips the verdict back to clean
        assert main(["lint", FIXTURE, "--select", "REP3"]) == 0
        out = capsys.readouterr().out
        assert "REP102" not in out
        assert main(["lint", FIXTURE, "--select", "REP1"]) == 1
        assert "REP102" in capsys.readouterr().out

    def test_analyzer_crash_exits_two_naming_site(self, tmp_path,
                                                  monkeypatch, capsys):
        import repro.lint.traffic as traffic_mod

        target = tmp_path / "crashy.py"
        target.write_text(
            "class CrashMe(Chare):\n"
            "    @entry\n"
            "    def setup(self, barrier):\n"
            "        self.a = self.declare_block('a', 1024)\n")
        monkeypatch.setattr(traffic_mod, "_FORCE_CRASH", "CrashMe")
        assert main(["lint", str(target)]) == 2
        err = capsys.readouterr().err
        assert "lint: internal error" in err
        assert "crashy.py" in err and "CrashMe" in err


class TestGuidanceEmission:
    def test_lint_guidance_writes_canonical_file(self, tmp_path, capsys):
        out_path = tmp_path / "guidance.json"
        assert main(["lint", os.path.join(SRC, "apps"),
                     "--guidance", str(out_path)]) == 0
        err = capsys.readouterr().err
        assert "guidance for" in err and "sha256" in err
        from repro.lint.guidance import load_guidance

        guide = load_guidance(out_path)
        assert "StencilChare.grid" in guide.sites

    def test_guide_command_stdout(self, capsys):
        assert main(["guide"]) == 0
        out = capsys.readouterr().out
        assert '"schema"' in out and "StencilChare.grid" in out

    def test_guide_command_output_file_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "g.json"
        assert main(["guide", "repro.apps", "-o", str(out_path)]) == 0
        from repro.lint.guidance import build_guidance, load_guidance

        import repro.apps
        direct = build_guidance([os.path.dirname(repro.apps.__file__)])
        assert load_guidance(out_path).dumps() == direct.dumps()

    def test_guide_bad_target_exits_two(self, capsys):
        assert main(["guide", "no.such.module.anywhere"]) == 2
        assert "guide:" in capsys.readouterr().err


class TestSanitizeFlag:
    COMMON = ["--cores", "8", "--mcdram", "128MiB", "--ddr", "1GiB"]

    def test_stencil_sanitized_run_is_clean(self, capsys):
        code = main(["stencil", "--sanitize", "--strategy", "multi-io",
                     *self.COMMON, "--total", "256MiB", "--block", "8MiB",
                     "--iterations", "1"])
        assert code == 0
        assert "simsan: 0 violations" in capsys.readouterr().out
        assert hooks.observer is None  # uninstalled even on success

    def test_matmul_sanitized_run_is_clean(self, capsys):
        code = main(["matmul", "--sanitize", "--strategy", "single-io",
                     *self.COMMON, "--working-set", "64MiB",
                     "--block-dim", "64"])
        assert code == 0
        assert "simsan: 0 violations" in capsys.readouterr().out

    def test_stream_sanitized(self, capsys):
        assert main(["stream", "--sanitize", "--threads", "8"]) == 0
        assert "simsan: 0 violations" in capsys.readouterr().out

    def test_without_flag_no_observer_is_installed(self, capsys):
        assert main(["stream", "--threads", "8"]) == 0
        assert "simsan" not in capsys.readouterr().out
        assert hooks.observer is None
