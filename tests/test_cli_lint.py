"""CLI tests for `repro lint` and the `--sanitize` run flag."""

import os

import pytest

from repro.cli import main
from repro.lint import hooks

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "lint_bad_chare.py")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


class TestLintCommand:
    def test_clean_targets_exit_zero(self, capsys):
        assert main(["lint", os.path.join(SRC, "apps")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_module_name_target(self, capsys):
        assert main(["lint", "repro.apps.stencil3d"]) == 0

    def test_seeded_fixture_exits_nonzero_with_anchor(self, capsys):
        assert main(["lint", FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "REP102" in out
        assert f"{FIXTURE}:25" in out  # file:line anchor

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        target = tmp_path / "warn_only.py"
        target.write_text(
            "class C(Chare):\n"
            "    @entry\n"
            "    def go(self):\n"
            "        yield from self.kernel(flops=1, reads=[self.a],\n"
            "                               writes=[])\n")
        assert main(["lint", str(target)]) == 0
        assert main(["lint", "--strict", str(target)]) == 1
        assert "REP108" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "no.such.module.anywhere"]) == 2
        assert "lint:" in capsys.readouterr().err

    def test_no_targets_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_findings_exit_one_not_two(self, capsys):
        # exit codes are a contract: 1 = verdict with findings, 2 = the
        # run itself failed (bad args / internal error)
        assert main(["lint", FIXTURE]) == 1
        assert capsys.readouterr().err == ""

    def test_internal_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "not_utf8.py"
        target.write_bytes(b"x = 1\n\xff\xfe\x00bad\n")
        assert main(["lint", str(target)]) == 2
        err = capsys.readouterr().err
        assert "lint: internal error" in err

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out and "SAN205" in out


class TestSanitizeFlag:
    COMMON = ["--cores", "8", "--mcdram", "128MiB", "--ddr", "1GiB"]

    def test_stencil_sanitized_run_is_clean(self, capsys):
        code = main(["stencil", "--sanitize", "--strategy", "multi-io",
                     *self.COMMON, "--total", "256MiB", "--block", "8MiB",
                     "--iterations", "1"])
        assert code == 0
        assert "simsan: 0 violations" in capsys.readouterr().out
        assert hooks.observer is None  # uninstalled even on success

    def test_matmul_sanitized_run_is_clean(self, capsys):
        code = main(["matmul", "--sanitize", "--strategy", "single-io",
                     *self.COMMON, "--working-set", "64MiB",
                     "--block-dim", "64"])
        assert code == 0
        assert "simsan: 0 violations" in capsys.readouterr().out

    def test_stream_sanitized(self, capsys):
        assert main(["stream", "--sanitize", "--threads", "8"]) == 0
        assert "simsan: 0 violations" in capsys.readouterr().out

    def test_without_flag_no_observer_is_installed(self, capsys):
        assert main(["stream", "--threads", "8"]) == 0
        assert "simsan" not in capsys.readouterr().out
        assert hooks.observer is None
